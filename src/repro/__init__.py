"""GTS reproduction: streaming graph topology to (simulated) GPUs.

A full reimplementation of *GTS: A Fast and Scalable Graph Processing
Method based on Streaming Topology to GPUs* (Kim et al., SIGMOD 2016) in
Python: the slotted-page storage format, a discrete-event simulated
GPU/PCI-E/SSD machine, the streaming engine with its two multi-GPU
strategies, seven algorithm kernels, and every baseline system the paper
compares against.

Quickstart::

    from repro import (GTSEngine, BFSKernel, PageFormatConfig,
                       build_database, generate_rmat, scaled_workstation)
    from repro.units import KB

    graph = generate_rmat(14, edge_factor=16, seed=7)
    db = build_database(graph, PageFormatConfig(2, 2, 2 * KB))
    engine = GTSEngine(db, scaled_workstation(), strategy="performance")
    result = engine.run(BFSKernel(start_vertex=0))
    print(result.summary())

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core import (
    BCKernel,
    BFSKernel,
    CrossEdgesKernel,
    DegreeKernel,
    EgonetKernel,
    InducedSubgraphKernel,
    KCoreKernel,
    NeighborhoodKernel,
    RadiusKernel,
    GTSEngine,
    MicroTechnique,
    PageRankKernel,
    PerformanceStrategy,
    RWRKernel,
    RunResult,
    SSSPKernel,
    ScalabilityStrategy,
    WCCKernel,
    make_strategy,
)
from repro.errors import (
    CapacityError,
    ConfigurationError,
    DeviceLostError,
    FaultError,
    FormatError,
    GTSError,
    IntegrityError,
    OutOfMemoryError,
    RetryExhaustedError,
    SimulationError,
)
from repro.faults import (
    DEFAULT_RETRY_POLICY,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.format import (
    GraphDatabase,
    PageFormatConfig,
    SIX_BYTE_CONFIGS,
    build_database,
)
from repro.graphgen import (
    Graph,
    generate_erdos_renyi,
    generate_rmat,
    generate_twitter_like,
    generate_uk2007_like,
    generate_yahooweb_like,
)
from repro.hardware import (
    GPUSpec,
    MachineSpec,
    PCIeSpec,
    StorageSpec,
    paper_workstation,
    scaled_workstation,
)

__version__ = "1.0.0"

__all__ = [
    "GTSEngine",
    "RunResult",
    "MicroTechnique",
    "PerformanceStrategy",
    "ScalabilityStrategy",
    "make_strategy",
    "BFSKernel",
    "PageRankKernel",
    "SSSPKernel",
    "WCCKernel",
    "BCKernel",
    "RWRKernel",
    "DegreeKernel",
    "KCoreKernel",
    "NeighborhoodKernel",
    "CrossEdgesKernel",
    "RadiusKernel",
    "InducedSubgraphKernel",
    "EgonetKernel",
    "GraphDatabase",
    "PageFormatConfig",
    "SIX_BYTE_CONFIGS",
    "build_database",
    "Graph",
    "generate_rmat",
    "generate_erdos_renyi",
    "generate_twitter_like",
    "generate_uk2007_like",
    "generate_yahooweb_like",
    "GPUSpec",
    "MachineSpec",
    "PCIeSpec",
    "StorageSpec",
    "paper_workstation",
    "scaled_workstation",
    "GTSError",
    "FormatError",
    "CapacityError",
    "OutOfMemoryError",
    "ConfigurationError",
    "SimulationError",
    "FaultError",
    "IntegrityError",
    "RetryExhaustedError",
    "DeviceLostError",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "__version__",
]
