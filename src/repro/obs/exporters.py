"""Exporters: Chrome trace-event JSON (Perfetto) and the ASCII view.

``chrome_trace`` turns a :class:`~repro.obs.events.TraceRecorder` into
the Chrome trace-event JSON object format — load the written file at
https://ui.perfetto.dev or ``chrome://tracing`` to get the real Figure 4:
per-GPU swimlanes for the copy engine and every stream, SSD channels,
the main-memory buffer and the engine's round markers.

``ascii_timeline`` renders the *same* event stream with the Figure
4-style character Gantt chart (sharing
:func:`repro.hardware.trace.render_lane`), so the two views agree by
construction — a property the test suite asserts on busy fractions.

Exporter output is **deterministic**: lanes are natural-sorted (``gpu2``
before ``gpu10``), metadata records are emitted in lane order, and JSON
keys are sorted — two identical runs produce byte-identical artifacts,
which is what lets :mod:`repro.obs.compare` trust diffs between them.
``recorder_from_chrome_trace`` is the exact inverse of ``chrome_trace``,
so a written trace file round-trips back into a recorder for
:func:`repro.obs.analyze.analyze_trace`.
"""

import json
import os
import re

from repro.errors import ConfigurationError
from repro.obs.events import (
    H2D_COPY,
    KERNEL,
    PHASE_COMPLETE,
    PHASE_INSTANT,
    SSD_FETCH,
    WA_BROADCAST,
    WA_SYNC,
)

#: Simulated seconds -> Chrome trace microseconds.
MICROSECONDS = 1e6


def _natural_key(text):
    """Digit-aware sort key: ``gpu2`` sorts before ``gpu10``."""
    return tuple(int(part) if part.isdigit() else part
                 for part in re.split(r"(\d+)", text))


def sorted_lanes(recorder):
    """The recorder's lanes in deterministic (natural-sorted) order."""
    return sorted(recorder.lanes(),
                  key=lambda lane: (_natural_key(lane[0]),
                                    _natural_key(lane[1])))


def _lane_ids(recorder):
    """Deterministic (process -> pid, (process, thread) -> tid) maps.

    Lanes are natural-sorted rather than taken in first-appearance
    order, so two runs of the same configuration assign identical
    pid/tid numbering regardless of which lane happened to emit first.
    """
    pids, tids = {}, {}
    for process, thread in sorted_lanes(recorder):
        pids.setdefault(process, len(pids))
        tids.setdefault((process, thread),
                        len([k for k in tids if k[0] == process]))
    return pids, tids


def chrome_trace(recorder, time_scale=MICROSECONDS):
    """Build the Chrome trace-event JSON object for a recorded run.

    Returns a dict with ``traceEvents`` (metadata + complete/instant
    events) and ``displayTimeUnit``.  Timestamps are simulated seconds
    multiplied by ``time_scale`` (microseconds by default, the unit the
    trace viewers assume).
    """
    if recorder is None:
        raise ConfigurationError(
            "no trace was recorded (run the engine with tracing=True)")
    pids, tids = _lane_ids(recorder)
    events = []
    for process, pid in pids.items():
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": process}})
    for (process, thread), tid in tids.items():
        events.append({"ph": "M", "name": "thread_name",
                       "pid": pids[process], "tid": tid,
                       "args": {"name": thread}})
    for event in recorder.events:
        record = {
            "name": event.name,
            "cat": event.category,
            "ph": event.phase,
            "ts": event.start * time_scale,
            "pid": pids[event.process],
            "tid": tids[(event.process, event.thread)],
        }
        if event.phase == PHASE_COMPLETE:
            record["dur"] = event.duration * time_scale
        elif event.phase == PHASE_INSTANT:
            record["s"] = "t"  # thread-scoped instant
        if event.args:
            record["args"] = {key: event.args[key]
                              for key in sorted(event.args)}
        events.append(record)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(recorder, path, time_scale=MICROSECONDS):
    """Write the Chrome trace JSON for ``recorder`` to ``path``.

    Output is byte-deterministic (sorted lanes, sorted keys): two
    identical runs write identical files.
    """
    payload = chrome_trace(recorder, time_scale=time_scale)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def recorder_from_chrome_trace(payload, time_scale=MICROSECONDS):
    """Rebuild a :class:`~repro.obs.events.TraceRecorder` from a Chrome
    trace object — the exact inverse of :func:`chrome_trace`.

    Lane names come from the ``process_name`` / ``thread_name``
    metadata; timestamps divide back by ``time_scale``.  Events keep
    file order.  Used by :func:`repro.obs.analyze.analyze_trace` so a
    written artifact analyzes identically to the live recorder it came
    from (analysis quantizes to nanoseconds, absorbing the microsecond
    float round-trip).
    """
    from repro.obs.events import TraceRecorder

    events = validate_chrome_trace(payload)
    process_names = {}
    thread_names = {}
    for event in events:
        if event["ph"] != "M":
            continue
        if event["name"] == "process_name":
            process_names[event["pid"]] = event["args"]["name"]
        elif event["name"] == "thread_name":
            thread_names[(event["pid"], event["tid"])] = \
                event["args"]["name"]
    recorder = TraceRecorder()
    for event in events:
        if event["ph"] == "M":
            continue
        process = process_names.get(event["pid"], str(event["pid"]))
        thread = thread_names.get((event["pid"], event["tid"]),
                                  str(event["tid"]))
        args = event.get("args") or {}
        start = event["ts"] / time_scale
        if event["ph"] == PHASE_COMPLETE:
            recorder.interval(event["name"], process, thread, start,
                              start + event["dur"] / time_scale, **args)
        elif event["ph"] == PHASE_INSTANT:
            recorder.instant(event["name"], process, thread, start,
                             **args)
        else:
            raise ConfigurationError(
                "cannot rebuild a recorder from phase %r events"
                % event["ph"])
    return recorder


def load_chrome_trace(path, time_scale=MICROSECONDS):
    """Read a written trace file back into a recorder."""
    with open(path) as handle:
        payload = json.load(handle)
    return recorder_from_chrome_trace(payload, time_scale=time_scale)


#: Lane-name substring -> ASCII mark, mirroring the Figure 4 legend.
_MARKS = {
    KERNEL: "=",
    H2D_COPY: "#",
    WA_BROADCAST: "#",
    WA_SYNC: "#",
    SSD_FETCH: "~",
}


def ascii_timeline(recorder, t0=0.0, t1=None, width=72):
    """Figure 4-style ASCII Gantt chart over the recorded event stream.

    One lane per resource, grouped by process; ``=`` marks kernels,
    ``#`` transfers, ``~`` storage reads.  This is the same renderer the
    legacy per-resource view uses (:mod:`repro.hardware.trace`), applied
    to :class:`~repro.obs.events.TraceRecorder` lanes.
    """
    from repro.hardware.trace import busy_fraction, render_lane
    from repro.units import format_seconds

    if recorder is None:
        raise ConfigurationError(
            "no trace was recorded (run the engine with tracing=True)")
    if t1 is None:
        t1 = recorder.end_time()
    # Degenerate windows (empty recorder, t1 <= t0) render a well-formed
    # empty chart rather than raising or printing a negative span.
    span = max(0.0, t1 - t0)
    lines = ["trace over %s  ('#'=copy, '='=kernel, '~'=storage)"
             % format_seconds(span)]
    if span == 0.0:
        if not len(recorder):
            lines.append("  (no events recorded)")
        return "\n".join(lines)
    # Natural-sorted lanes (gpu2 before gpu10), grouped by process — the
    # same deterministic order the Chrome exporter assigns pids/tids in,
    # so two identical runs render byte-identical timelines.
    for process, thread in sorted_lanes(recorder):
        intervals = recorder.busy_intervals(process, thread)
        if not intervals:
            continue  # instant-only lanes (caches, buffers) have no bars
        marks = [_MARKS.get(e.name) for e in
                 recorder.select(process=process, thread=thread)
                 if e.phase == PHASE_COMPLETE]
        mark = next((m for m in marks if m), "=")
        lane = render_lane(intervals, t0, t1, width, mark=mark)
        lines.append("  %-22s |%s| %4.0f%%"
                     % ("%s/%s" % (process, thread), lane,
                        100 * busy_fraction(intervals, t0, t1)))
    return "\n".join(lines)


#: Prometheus exposition content type (``GET /metrics``).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$")


def _escape_label_value(value):
    """Escape a label value per the exposition format: backslash,
    double quote and newline."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value):
    """Render a sample value: integers stay integral, floats use
    ``repr`` (shortest round-trip) — byte-deterministic either way."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(families):
    """Render metric families as Prometheus text exposition format.

    ``families`` is an iterable of dicts with ``name``, ``type``
    (``counter``/``gauge``), optional ``help``, and ``samples`` — a
    list of ``(labels dict or None, value)`` pairs.  Families are
    emitted sorted by name and samples sorted by their label items, so
    the rendering is byte-deterministic given equal content regardless
    of construction order.  Families without samples are skipped (an
    absent series, not a zero).
    """
    lines = []
    for family in sorted(families, key=lambda f: f["name"]):
        name = family["name"]
        if not _METRIC_NAME.match(name):
            raise ConfigurationError(
                "invalid Prometheus metric name %r" % (name,))
        if family["type"] not in ("counter", "gauge"):
            raise ConfigurationError(
                "unsupported Prometheus metric type %r for %s"
                % (family["type"], name))
        samples = family.get("samples") or []
        if not samples:
            continue
        if family.get("help"):
            lines.append("# HELP %s %s"
                         % (name, family["help"].replace("\\", "\\\\")
                            .replace("\n", "\\n")))
        lines.append("# TYPE %s %s" % (name, family["type"]))
        rendered = []
        for labels, value in samples:
            items = sorted((labels or {}).items())
            for label, _ in items:
                if not _LABEL_NAME.match(label):
                    raise ConfigurationError(
                        "invalid Prometheus label name %r on %s"
                        % (label, name))
            if items:
                body = ",".join('%s="%s"'
                                % (label, _escape_label_value(value_))
                                for label, value_ in items)
                rendered.append(("%s{%s} %s"
                                 % (name, body, _format_value(value)),
                                 items))
            else:
                rendered.append(("%s %s" % (name, _format_value(value)),
                                 items))
        for line, _items in sorted(rendered, key=lambda r: r[1]):
            lines.append(line)
    return "\n".join(lines) + "\n" if lines else ""


def _unescape_label_value(value):
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\":
            if i + 1 >= len(value):
                raise ConfigurationError(
                    "dangling escape in label value %r" % (value,))
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ("\\", '"'):
                out.append(nxt)
            else:
                raise ConfigurationError(
                    "bad escape %r in label value %r" % (nxt, value))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(body):
    """Parse the ``{...}`` body of a sample line into a dict."""
    labels = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        name = body[i:eq]
        if not _LABEL_NAME.match(name):
            raise ConfigurationError(
                "invalid label name %r in %r" % (name, body))
        if eq + 1 >= len(body) or body[eq + 1] != '"':
            raise ConfigurationError(
                "unquoted label value in %r" % (body,))
        j = eq + 2
        raw = []
        while j < len(body):
            ch = body[j]
            if ch == "\\":
                raw.append(body[j:j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ConfigurationError(
                "unterminated label value in %r" % (body,))
        labels[name] = _unescape_label_value("".join(raw))
        i = j + 1
        if i < len(body):
            if body[i] != ",":
                raise ConfigurationError(
                    "expected ',' between labels in %r" % (body,))
            i += 1
    return labels


def validate_prometheus_text(text):
    """Validate Prometheus exposition text; returns the parsed metrics.

    Checks metric/label name grammar, that every sample follows a
    ``# TYPE`` declaration for its family, that label values unescape
    cleanly, and that values parse as floats.  Returns ``{family name:
    {"type": ..., "samples": [(labels, value), ...]}}`` — the CI
    service job uses this to assert counters are monotone across two
    scrapes.  Raises :class:`~repro.errors.ConfigurationError` on any
    malformation.
    """
    metrics = {}
    types = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4 or not _METRIC_NAME.match(parts[2]) \
                    or parts[3] not in ("counter", "gauge",
                                        "histogram", "summary",
                                        "untyped"):
                raise ConfigurationError(
                    "malformed TYPE line %d: %r" % (number, line))
            if parts[2] in types:
                raise ConfigurationError(
                    "duplicate TYPE for %s (line %d)"
                    % (parts[2], number))
            types[parts[2]] = parts[3]
            metrics[parts[2]] = {"type": parts[3], "samples": []}
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ConfigurationError(
                "malformed sample line %d: %r" % (number, line))
        name, label_body, raw_value = match.groups()
        if name not in types:
            raise ConfigurationError(
                "sample for %s before its TYPE line (line %d)"
                % (name, number))
        labels = _parse_labels(label_body) if label_body else {}
        try:
            value = float(raw_value)
        except ValueError:
            raise ConfigurationError(
                "non-numeric value %r on line %d" % (raw_value, number))
        metrics[name]["samples"].append((labels, value))
    return metrics


def validate_chrome_trace(payload):
    """Schema-check a Chrome trace object; returns the event list.

    Raises :class:`~repro.errors.ConfigurationError` on malformed
    events — used by the CLI smoke job and the test suite.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ConfigurationError(
            "not a Chrome trace object (missing 'traceEvents')")
    events = payload["traceEvents"]
    for event in events:
        for field in ("ph", "name", "pid", "tid"):
            if field not in event:
                raise ConfigurationError(
                    "trace event missing %r: %r" % (field, event))
        if event["ph"] == "X":
            if "ts" not in event or "dur" not in event:
                raise ConfigurationError(
                    "complete event missing ts/dur: %r" % (event,))
            if event["dur"] < 0 or event["ts"] < 0:
                raise ConfigurationError(
                    "negative ts/dur: %r" % (event,))
        elif event["ph"] == "i":
            if "ts" not in event:
                raise ConfigurationError(
                    "instant event missing ts: %r" % (event,))
    return events
