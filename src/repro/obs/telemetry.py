"""Service-scale request telemetry: lifecycle spans, structured logs,
rolling-window metrics and the slow-query ring.

Everything else in :mod:`repro.obs` observes a *run*; this module
observes a *request* as it crosses the whole service path.  A
:class:`RequestTrace` records one span per lifecycle stage —
``admission_wait`` (the submit-side admission lock), ``queue_wait``
(admitted but waiting for a worker), ``gate_acquire`` (the database's
:class:`~repro.concurrency.ReadWriteGate`), ``snapshot_pin`` (MVCC
version pinning), ``engine`` (the actual run, with per-round marks) and
``serialize`` (HTTP response rendering) — correlated end to end by the
request's ``query_id``.

On top of the spans sit three service-wide layers, all owned by
:class:`ServiceTelemetry`:

* a :class:`StructuredLogger` emitting one sorted-key JSON line per
  request (and per rejection), so a log pipeline can aggregate without
  parsing prose;
* :class:`RollingWindow` fixed-bucket sliding histograms giving
  1-minute / 5-minute p50/p95/p99 and throughput next to the service's
  cumulative-since-boot quantiles;
* a :class:`SlowQueryRing`: head-sampling picks every Nth request for a
  full engine trace, and *tail capture* persists the span tree (plus
  the Chrome trace, when sampled) of any request that overran the
  latency threshold or died with a typed error — to a bounded on-disk
  ring the ``obs requests`` CLI tails, filters and summarizes.

Telemetry is strictly **pay-for-use**, the :mod:`repro.obs.host`
contract: a service built without it never calls this module's clock
(the test suite patches :data:`perf_counter_ns` and counts), the engine
hot loop sees only an ``is None`` check per round, and no simulated
time or output bit ever depends on whether telemetry is on.
"""

import itertools
import json
import os
import re
import threading
import time as _time
from bisect import bisect_right
from time import perf_counter_ns as _perf_counter_ns

from repro.errors import ConfigurationError

#: Module-level indirection so tests can count request-clock reads (the
#: disabled-path-is-free proof patches this symbol, as with
#: :mod:`repro.obs.host`).
perf_counter_ns = _perf_counter_ns

_NS = 1e-9
_MS = 1e-6  # nanoseconds -> milliseconds

#: ``kind`` stamp on serialized slow-query records.
RECORD_KIND = "gts-request-trace"
RECORD_SCHEMA = 1

#: Log-spaced latency bin upper edges (seconds) for the rolling
#: windows: 0.1 ms .. 100 s, ten bins per decade (~26% resolution).
DEFAULT_LATENCY_BOUNDS = tuple(1e-4 * (10.0 ** (i / 10.0))
                               for i in range(61))


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------
#: Sink installed by :func:`configure_logging`; ``None`` drops events.
_global_stream = None

_loggers = {}
_loggers_lock = threading.Lock()


def configure_logging(stream):
    """Install ``stream`` as the sink for every :func:`get_logger`
    logger (``None`` silences them again).  Returns the previous sink.

    Library code logs unconditionally through its named logger; whether
    anything is written is the *process's* choice, made here — the same
    split stdlib ``logging`` draws between loggers and handlers, minus
    the global mutable level state.
    """
    global _global_stream
    previous = _global_stream
    _global_stream = stream
    return previous


def get_logger(name):
    """The process-wide :class:`StructuredLogger` for ``name``.

    Loggers obtained here share the :func:`configure_logging` sink and
    are silent (and clock-free) until one is installed, so library
    paths — WAL recovery, compaction — can emit structured events
    without ever writing to stderr ad hoc.
    """
    with _loggers_lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = _loggers[name] = StructuredLogger(name)
        return logger


class StructuredLogger:
    """One-JSON-line-per-event logging with sorted keys.

    A logger constructed with an explicit ``stream`` writes there; one
    constructed without (the :func:`get_logger` path) follows the
    global :func:`configure_logging` sink.  Disabled loggers return
    before touching the clock or building the record.
    """

    def __init__(self, name, stream=None):
        self.name = name
        self._stream = stream
        self._lock = threading.Lock()

    @property
    def stream(self):
        """The active sink (own stream, else the global one)."""
        return self._stream if self._stream is not None \
            else _global_stream

    @property
    def enabled(self):
        """True when a sink is installed."""
        return self.stream is not None

    def log(self, event, **fields):
        """Emit one JSON line: ``event``, ``logger``, ``ts`` plus
        ``fields`` (keys sorted; non-JSON values fall back to str)."""
        stream = self.stream
        if stream is None:
            return
        record = {"event": event, "logger": self.name,
                  "ts": round(_time.time(), 6)}
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            stream.write(line + "\n")
            stream.flush()

    def __repr__(self):
        return "StructuredLogger(%r, enabled=%r)" % (self.name,
                                                     self.enabled)


# ----------------------------------------------------------------------
# Per-request lifecycle spans
# ----------------------------------------------------------------------
class RequestTrace:
    """The lifecycle span record of one service request.

    Phases are disjoint measured intervals inside the request's wall
    time (``submit_ns`` .. ``end_ns``), recorded by the service and the
    HTTP layer via :meth:`add_phase`; :meth:`observe_round` is handed
    to the engine as its ``round_observer`` so the ``engine`` phase
    carries per-round child spans.  ``to_dict`` renders the span tree
    the slow-query ring persists.
    """

    __slots__ = ("query_id", "database", "algorithm", "sampled",
                 "submit_ns", "end_ns", "phases", "round_marks",
                 "rounds", "status", "error_type", "error",
                 "snapshot_version", "simulated_seconds", "deferred",
                 "chrome", "_completed", "engine_start_ns")

    def __init__(self, query_id, database, algorithm, sampled=False,
                 submit_ns=None):
        self.query_id = query_id
        self.database = database
        self.algorithm = algorithm
        self.sampled = sampled
        self.submit_ns = (submit_ns if submit_ns is not None
                          else perf_counter_ns())
        self.end_ns = None
        self.phases = []        # (name, start_ns, end_ns, attrs|None)
        self.round_marks = []   # (round_index, ns)
        self.rounds = None
        self.status = None
        self.error_type = None
        self.error = None
        self.snapshot_version = None
        self.simulated_seconds = None
        #: True once the HTTP layer took over completion (so it can
        #: append the ``serialize`` span before the trace finalizes).
        self.deferred = False
        #: Chrome trace object of the sampled engine run, if any.
        self.chrome = None
        self._completed = False
        self.engine_start_ns = None

    @staticmethod
    def now():
        """This module's request clock (patchable for the free proof)."""
        return perf_counter_ns()

    def add_phase(self, name, start_ns, end_ns, **attrs):
        """Record one completed lifecycle phase."""
        self.phases.append((name, start_ns, end_ns, attrs or None))

    def observe_round(self, round_index):
        """Engine ``round_observer`` hook: timestamp a finished round."""
        self.round_marks.append((round_index, perf_counter_ns()))

    def set_status(self, status, error=None):
        """Record the service-side outcome (``ok`` or a typed error)."""
        self.status = status
        if error is not None:
            self.error_type = type(error).__name__
            self.error = str(error)

    def finish(self):
        """Close the root span (idempotent once ``end_ns`` is set)."""
        if self.end_ns is None:
            self.end_ns = perf_counter_ns()

    @property
    def wall_seconds(self):
        """Submit-to-finish wall time (None while still open)."""
        if self.end_ns is None:
            return None
        return (self.end_ns - self.submit_ns) * _NS

    def _span(self, name, start_ns, end_ns, attrs=None, children=None):
        span = {"name": name,
                "start_ms": round((start_ns - self.submit_ns) * _MS, 6),
                "duration_ms": round((end_ns - start_ns) * _MS, 6)}
        if attrs:
            span["attrs"] = dict(attrs)
        if children:
            span["children"] = children
        return span

    def span_tree(self):
        """The request's span tree: a ``request`` root whose children
        are the lifecycle phases; the ``engine`` phase carries one
        child span per completed round."""
        end_ns = self.end_ns if self.end_ns is not None \
            else (self.phases[-1][2] if self.phases else self.submit_ns)
        # The admission_wait phase starts at the pre-admission clock
        # read, before the trace object (and submit_ns) exists — the
        # root must stretch back to cover it.
        start_ns = self.submit_ns
        if self.phases:
            start_ns = min(start_ns, min(p[1] for p in self.phases))
        children = []
        for name, start, end, attrs in self.phases:
            rounds = None
            if name == "engine" and self.round_marks:
                rounds = []
                previous = start
                for round_index, mark in self.round_marks:
                    rounds.append(self._span(
                        "round%d" % round_index, previous, mark))
                    previous = mark
            children.append(self._span(name, start, end, attrs,
                                       children=rounds))
        return self._span("request", start_ns, end_ns,
                          children=children)

    def to_dict(self):
        """JSON-ready record (the slow-query ring's on-disk format)."""
        record = {
            "kind": RECORD_KIND,
            "schema": RECORD_SCHEMA,
            "query_id": self.query_id,
            "database": self.database,
            "algorithm": self.algorithm,
            "status": self.status,
            "sampled": self.sampled,
            "wall_ms": (round(self.wall_seconds * 1e3, 6)
                        if self.wall_seconds is not None else None),
            "rounds": self.rounds,
            "span": self.span_tree(),
        }
        if self.error_type is not None:
            record["error_type"] = self.error_type
            record["error"] = self.error
        if self.snapshot_version is not None:
            record["snapshot_version"] = self.snapshot_version
        if self.simulated_seconds is not None:
            record["simulated_seconds"] = self.simulated_seconds
        if self.chrome is not None:
            record["chrome_trace"] = self.chrome
        return record

    def phase_ms(self):
        """``{phase name: duration_ms}`` for the structured log line."""
        out = {}
        for name, start, end, _attrs in self.phases:
            out[name] = round((end - start) * _MS, 6) \
                + out.get(name, 0.0)
        return out

    def __repr__(self):
        return ("RequestTrace(%r, %s/%s, status=%r)"
                % (self.query_id, self.database, self.algorithm,
                   self.status))


# ----------------------------------------------------------------------
# Rolling-window metrics
# ----------------------------------------------------------------------
class RollingWindow:
    """A sliding histogram over the last ``window_seconds``.

    Time is chopped into ``num_buckets`` fixed buckets; each bucket is
    a small array of counts over log-spaced latency bins (``bounds``),
    so observation is O(log bins), memory is O(buckets x bins) however
    many requests arrive, and expiry is dropping whole buckets — the
    standard fixed-bucket sliding-window estimator.  ``snapshot``
    merges the live buckets and reports count, throughput and
    p50/p95/p99 (each quantile is its bin's upper edge, so the estimate
    is deterministic and conservative).

    ``clock`` (seconds, monotonic) is injectable for deterministic
    tests; it is only consulted when telemetry is enabled.
    """

    def __init__(self, window_seconds, num_buckets=60, bounds=None,
                 clock=None):
        if window_seconds <= 0 or num_buckets < 1:
            raise ConfigurationError(
                "rolling window needs positive span and >=1 bucket "
                "(got %r / %r)" % (window_seconds, num_buckets))
        self.window_seconds = float(window_seconds)
        self.num_buckets = int(num_buckets)
        self.bucket_seconds = self.window_seconds / self.num_buckets
        self.bounds = tuple(bounds) if bounds is not None \
            else DEFAULT_LATENCY_BOUNDS
        self._clock = clock if clock is not None else _time.monotonic
        self._lock = threading.Lock()
        self._buckets = {}  # bucket index -> [bin counts, count, sum]

    def _evict(self, head):
        floor = head - self.num_buckets
        for index in [i for i in self._buckets if i <= floor]:
            del self._buckets[index]

    def observe(self, seconds, now=None):
        """Record one latency observation at ``now`` (clock seconds)."""
        now = self._clock() if now is None else now
        index = int(now // self.bucket_seconds)
        position = bisect_right(self.bounds, seconds)
        with self._lock:
            self._evict(index)
            bucket = self._buckets.get(index)
            if bucket is None:
                bucket = self._buckets[index] = [
                    [0] * (len(self.bounds) + 1), 0, 0.0]
            bucket[0][position] += 1
            bucket[1] += 1
            bucket[2] += seconds

    def _edge(self, position):
        """The latency value reported for bin ``position``: its upper
        edge (the overflow bin reports the last finite edge)."""
        return self.bounds[min(position, len(self.bounds) - 1)]

    def snapshot(self, now=None):
        """Merge the live buckets into a JSON-ready window summary."""
        now = self._clock() if now is None else now
        head = int(now // self.bucket_seconds)
        merged = [0] * (len(self.bounds) + 1)
        count = 0
        total = 0.0
        with self._lock:
            self._evict(head)
            for bucket in self._buckets.values():
                for position, n in enumerate(bucket[0]):
                    merged[position] += n
                count += bucket[1]
                total += bucket[2]
        out = {"window_seconds": self.window_seconds,
               "count": count,
               "throughput_qps": round(count / self.window_seconds, 6),
               "mean_seconds": (round(total / count, 9) if count
                                else None)}
        for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            if not count:
                out[name] = None
                continue
            rank = q * count
            running = 0
            for position, n in enumerate(merged):
                running += n
                if running >= rank:
                    out[name] = self._edge(position)
                    break
        return out


# ----------------------------------------------------------------------
# Slow-query ring
# ----------------------------------------------------------------------
_SAFE_ID = re.compile(r"[^A-Za-z0-9_.-]+")
_RING_NAME = re.compile(r"^req-(\d{8})-.*\.json$")


class SlowQueryRing:
    """A bounded on-disk ring of tail-captured request records.

    Each appended :class:`RequestTrace` record becomes one
    ``req-<seq>-<query_id>.json`` file under ``directory``; once more
    than ``capacity`` records exist the oldest are deleted, so the ring
    holds the *most recent* slow/errored requests and disk use stays
    bounded no matter how unhealthy the service gets.  Sequence numbers
    resume past existing files, so restarts keep appending rather than
    overwriting evidence.
    """

    def __init__(self, directory, capacity=64):
        if capacity < 1:
            raise ConfigurationError(
                "slow-query ring capacity must be >= 1, got %r"
                % (capacity,))
        self.directory = directory
        self.capacity = int(capacity)
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        highest = -1
        for name in os.listdir(directory):
            match = _RING_NAME.match(name)
            if match:
                highest = max(highest, int(match.group(1)))
        self._seq = itertools.count(highest + 1)

    def paths(self):
        """Ring files, oldest first."""
        with self._lock:
            return self._paths_locked()

    def _paths_locked(self):
        names = sorted(name for name in os.listdir(self.directory)
                       if _RING_NAME.match(name))
        return [os.path.join(self.directory, name) for name in names]

    def __len__(self):
        return len(self.paths())

    def append(self, record):
        """Persist ``record`` (a dict or :class:`RequestTrace`) and
        evict past ``capacity``; returns the written path."""
        if hasattr(record, "to_dict"):
            record = record.to_dict()
        query_id = _SAFE_ID.sub("_", str(record.get("query_id") or
                                         "unknown")) or "unknown"
        with self._lock:
            path = os.path.join(
                self.directory,
                "req-%08d-%s.json" % (next(self._seq), query_id))
            with open(path, "w") as handle:
                json.dump(record, handle, sort_keys=True)
                handle.write("\n")
            paths = self._paths_locked()
            for stale in paths[:max(0, len(paths) - self.capacity)]:
                try:
                    os.remove(stale)
                except OSError:
                    pass
        return path

    def records(self):
        """Load every ring record, oldest first (unreadable files are
        skipped — eviction may race a reader)."""
        out = []
        for path in self.paths():
            try:
                with open(path) as handle:
                    out.append(json.load(handle))
            except (OSError, ValueError):
                continue
        return out


def load_ring(directory):
    """Read a slow-query ring directory into a list of records (oldest
    first) — the ``obs requests`` CLI entry point."""
    if not os.path.isdir(directory):
        raise ConfigurationError(
            "%r is not a slow-query ring directory" % (directory,))
    return SlowQueryRing(directory, capacity=1 << 30).records()


def _quantile(ordered, q):
    """Linear-interpolation quantile over a sorted list."""
    if not ordered:
        return None
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def summarize_requests(records):
    """Aggregate ring records: counts by status / error type /
    database, wall-time quantiles and mean phase durations."""
    summary = {"requests": len(records), "by_status": {},
               "by_error_type": {}, "by_database": {},
               "wall_ms": None, "phase_mean_ms": {}}
    walls = []
    phase_totals = {}
    phase_counts = {}
    for record in records:
        status = record.get("status") or "unknown"
        summary["by_status"][status] = \
            summary["by_status"].get(status, 0) + 1
        error_type = record.get("error_type")
        if error_type:
            summary["by_error_type"][error_type] = \
                summary["by_error_type"].get(error_type, 0) + 1
        database = record.get("database") or "unknown"
        summary["by_database"][database] = \
            summary["by_database"].get(database, 0) + 1
        if record.get("wall_ms") is not None:
            walls.append(float(record["wall_ms"]))
        for child in (record.get("span") or {}).get("children") or []:
            name = child.get("name")
            phase_totals[name] = (phase_totals.get(name, 0.0)
                                  + float(child.get("duration_ms", 0.0)))
            phase_counts[name] = phase_counts.get(name, 0) + 1
    if walls:
        ordered = sorted(walls)
        summary["wall_ms"] = {
            "min": ordered[0], "max": ordered[-1],
            "p50": round(_quantile(ordered, 0.50), 6),
            "p95": round(_quantile(ordered, 0.95), 6),
        }
    summary["phase_mean_ms"] = {
        name: round(phase_totals[name] / phase_counts[name], 6)
        for name in sorted(phase_totals)}
    return summary


# ----------------------------------------------------------------------
# Service telemetry front end
# ----------------------------------------------------------------------
class TelemetryConfig:
    """Knobs for :class:`ServiceTelemetry`.

    ``slow_ms`` is the tail-capture latency threshold (requests slower
    than this, or ending in a typed error, are persisted to the ring);
    ``sample_every`` head-samples every Nth admitted request for a full
    engine Chrome trace (0 disables sampling); ``ring_dir`` /
    ``ring_capacity`` bound the on-disk ring (no directory, no ring);
    ``log_stream`` receives the structured JSON log lines (``None``
    keeps them off).
    """

    __slots__ = ("slow_ms", "sample_every", "ring_dir", "ring_capacity",
                 "log_stream")

    def __init__(self, slow_ms=250.0, sample_every=0, ring_dir=None,
                 ring_capacity=64, log_stream=None):
        if slow_ms is not None and slow_ms < 0:
            raise ConfigurationError(
                "slow_ms must be >= 0 or None, got %r" % (slow_ms,))
        if sample_every < 0:
            raise ConfigurationError(
                "sample_every must be >= 0, got %r" % (sample_every,))
        self.slow_ms = slow_ms
        self.sample_every = int(sample_every)
        self.ring_dir = ring_dir
        self.ring_capacity = ring_capacity
        self.log_stream = log_stream


class ServiceTelemetry:
    """Request telemetry owned by one :class:`GraphService`.

    The service calls :meth:`new_trace` per admitted request,
    :meth:`record_rejection` per typed rejection and :meth:`complete`
    when a trace's last span closes; the HTTP layer may :meth:`defer`
    completion to append the ``serialize`` span first.  Completion
    fans out to the rolling windows, the structured log and (for slow
    or errored requests) the ring — all host-side only.
    """

    def __init__(self, config=None):
        self.config = config if config is not None else TelemetryConfig()
        self.log = StructuredLogger("repro.service",
                                    stream=self.config.log_stream)
        self.windows = {"1m": RollingWindow(60.0, num_buckets=60),
                        "5m": RollingWindow(300.0, num_buckets=60)}
        self.ring = (SlowQueryRing(self.config.ring_dir,
                                   capacity=self.config.ring_capacity)
                     if self.config.ring_dir else None)
        self._lock = threading.Lock()
        self._pending = {}
        self._admissions = 0
        self.requests = 0
        self.sampled = 0
        self.slow = 0
        self.tail_captured = 0
        self.rejections = 0

    # -- per-request lifecycle -----------------------------------------
    @staticmethod
    def now():
        """This module's request clock (patchable in tests)."""
        return perf_counter_ns()

    def new_trace(self, request, submit_ns=None):
        """Open the lifecycle trace for an admitted request."""
        every = self.config.sample_every
        with self._lock:
            self._admissions += 1
            sampled = bool(every) and self._admissions % every == 0
            if sampled:
                self.sampled += 1
        trace = RequestTrace(request.query_id, request.database,
                             request.algorithm, sampled=sampled,
                             submit_ns=submit_ns)
        with self._lock:
            self._pending[trace.query_id] = trace
        return trace

    def defer(self, query_id):
        """Hand completion of ``query_id``'s trace to the caller (the
        HTTP layer): returns the still-open trace, or ``None`` when it
        already completed (or was never admitted)."""
        with self._lock:
            trace = self._pending.get(query_id)
            if trace is None or trace._completed:
                return None
            trace.deferred = True
            return trace

    def complete(self, trace):
        """Finalize ``trace`` exactly once: close the root span, feed
        the rolling windows, emit the log line, tail-capture."""
        with self._lock:
            if trace._completed:
                return
            trace._completed = True
            self._pending.pop(trace.query_id, None)
        trace.finish()
        wall = trace.wall_seconds
        slow_ms = self.config.slow_ms
        is_error = trace.status not in (None, "ok")
        is_slow = (slow_ms is not None and wall * 1e3 >= slow_ms)
        for window in self.windows.values():
            window.observe(wall)
        captured = False
        if (is_error or is_slow) and self.ring is not None:
            self.ring.append(trace)
            captured = True
        with self._lock:
            self.requests += 1
            if is_slow:
                self.slow += 1
            if captured:
                self.tail_captured += 1
        fields = {
            "query_id": trace.query_id,
            "database": trace.database,
            "algorithm": trace.algorithm,
            "status": trace.status,
            "wall_ms": round(wall * 1e3, 6),
            "sampled": trace.sampled,
            "captured": captured,
            "phases_ms": trace.phase_ms(),
        }
        if trace.rounds is not None:
            fields["rounds"] = trace.rounds
        if trace.error_type is not None:
            fields["error_type"] = trace.error_type
        if trace.snapshot_version is not None:
            fields["snapshot_version"] = trace.snapshot_version
        self.log.log("request", **fields)

    def record_rejection(self, request, error):
        """Log a typed admission/shutdown rejection (no trace opens —
        rejected requests must stay as close to free as they were)."""
        with self._lock:
            self.rejections += 1
        self.log.log("request_rejected",
                     database=request.database,
                     algorithm=request.algorithm,
                     error_type=type(error).__name__,
                     error=str(error))

    # -- snapshots ------------------------------------------------------
    def window_snapshot(self):
        """``{window label: rolling summary}`` for ``stats()``."""
        return {label: window.snapshot()
                for label, window in sorted(self.windows.items())}

    def stats(self):
        """JSON-ready telemetry counters for ``stats()``."""
        with self._lock:
            out = {
                "requests": self.requests,
                "sampled": self.sampled,
                "slow": self.slow,
                "tail_captured": self.tail_captured,
                "rejections": self.rejections,
                "slow_ms": self.config.slow_ms,
                "sample_every": self.config.sample_every,
                "log_enabled": self.log.enabled,
            }
        if self.ring is not None:
            out["ring"] = {"directory": self.ring.directory,
                           "capacity": self.ring.capacity,
                           "size": len(self.ring)}
        return out


# ----------------------------------------------------------------------
# Prometheus family construction (rendering lives in obs.exporters)
# ----------------------------------------------------------------------
def _family(families, name, kind, help_text=""):
    family = {"name": name, "type": kind, "help": help_text,
              "samples": []}
    families.append(family)
    return family


def _sample(family, value, **labels):
    if value is None:
        return
    family["samples"].append((labels or None, value))


def service_metric_families(stats):
    """Map a :meth:`GraphService.stats` snapshot onto Prometheus metric
    families (``gts_*``), per-database series labelled
    ``database="name"``.  A pure function of the snapshot, so rendering
    is byte-deterministic given a frozen stats dict."""
    families = []
    for key, help_text in (
            ("queue_depth", "queries waiting for a worker"),
            ("in_flight", "queries currently executing"),
            ("max_in_flight", "worker pool width"),
            ("max_queue", "queue capacity beyond the in-flight set"),
            ("peak_in_flight", "high-water mark of executing queries"),
            ("peak_queued", "high-water mark of queued queries")):
        _sample(_family(families, "gts_service_%s" % key, "gauge",
                        help_text), stats.get(key))
    _sample(_family(families, "gts_service_draining", "gauge",
                    "1 while graceful shutdown is in progress"),
            int(bool(stats.get("draining"))))
    for key, help_text in (
            ("admitted", "queries accepted by admission control"),
            ("completed", "queries finished successfully"),
            ("failed", "queries that raised"),
            ("deadline_exceeded",
             "queries that overran timeout_ms (HTTP 504)"),
            ("updates_applied", "live update batches committed")):
        _sample(_family(families, "gts_service_%s_total" % key,
                        "counter", help_text), stats.get(key))
    rejected = _family(families, "gts_service_rejected_total",
                       "counter", "typed admission-control rejections")
    _sample(rejected, stats.get("rejected_admission"),
            reason="admission")
    _sample(rejected, stats.get("rejected_shutdown"), reason="shutdown")
    latency = stats.get("latency_seconds") or {}
    family = _family(families, "gts_service_latency_seconds", "gauge",
                     "cumulative query wall-clock latency quantiles")
    for quantile, label in (("p50", "0.5"), ("p95", "0.95"),
                            ("p99", "0.99")):
        _sample(family, latency.get(quantile), quantile=label)
    _sample(_family(families, "gts_service_latency_count", "counter",
                    "queries in the cumulative latency history"),
            latency.get("count"))
    rolling = stats.get("rolling") or {}
    if rolling:
        lat = _family(families, "gts_service_window_latency_seconds",
                      "gauge", "rolling-window latency quantiles")
        qps = _family(families, "gts_service_window_throughput_qps",
                      "gauge", "rolling-window request throughput")
        count = _family(families, "gts_service_window_requests",
                        "gauge", "requests inside the rolling window")
        for label in sorted(rolling):
            window = rolling[label]
            for quantile, qlabel in (("p50", "0.5"), ("p95", "0.95"),
                                     ("p99", "0.99")):
                _sample(lat, window.get(quantile), window=label,
                        quantile=qlabel)
            _sample(qps, window.get("throughput_qps"), window=label)
            _sample(count, window.get("count"), window=label)
    telemetry = stats.get("telemetry") or {}
    if telemetry:
        for key, help_text in (
                ("requests", "requests with a completed trace"),
                ("sampled", "head-sampled requests (full engine trace)"),
                ("slow", "requests over the slow_ms threshold"),
                ("tail_captured",
                 "requests persisted to the slow-query ring"),
                ("rejections", "rejections seen by telemetry")):
            _sample(_family(families,
                            "gts_service_telemetry_%s_total" % key,
                            "counter", help_text), telemetry.get(key))
        ring = telemetry.get("ring") or {}
        _sample(_family(families, "gts_service_telemetry_ring_size",
                        "gauge", "records in the slow-query ring"),
                ring.get("size"))
    databases = stats.get("databases") or {}
    db_gauges = {}
    db_counters = {}

    def db_gauge(name, help_text=""):
        if name not in db_gauges:
            db_gauges[name] = _family(families, name, "gauge",
                                      help_text)
        return db_gauges[name]

    def db_counter(name, help_text=""):
        if name not in db_counters:
            db_counters[name] = _family(families, name, "counter",
                                        help_text)
        return db_counters[name]

    for name in sorted(databases):
        db = databases[name]
        label = {"database": name}
        for key in ("vertices", "edges", "pages", "topology_version"):
            _sample(db_gauge("gts_db_%s" % key), db.get(key), **label)
        _sample(db_counter("gts_db_queries_total",
                           "queries run on this handle"),
                db.get("queries"), **label)
        _sample(db_counter("gts_db_updates_total",
                           "update batches committed on this handle"),
                db.get("updates"), **label)
        _sample(db_counter("gts_db_exclusive_queries_total",
                           "fault-isolated exclusive queries"),
                db.get("exclusive_queries"), **label)
        shared = db.get("shared_cache") or {}
        _sample(db_counter("gts_db_shared_cache_hits_total"),
                shared.get("hits"), **label)
        _sample(db_counter("gts_db_shared_cache_misses_total"),
                shared.get("misses"), **label)
        _sample(db_gauge("gts_db_shared_cache_hit_rate"),
                shared.get("hit_rate"), **label)
        plan = db.get("plan_cache") or {}
        _sample(db_counter("gts_db_plan_cache_hits_total"),
                plan.get("hits"), **label)
        _sample(db_counter("gts_db_plan_cache_builds_total"),
                plan.get("builds"), **label)
        gate = db.get("gate") or {}
        _sample(db_gauge("gts_db_gate_writers_waiting"),
                gate.get("writers_waiting"), **label)
        _sample(db_gauge("gts_db_gate_readers_active"),
                gate.get("readers_active"), **label)
        _sample(db_counter("gts_db_gate_writer_wait_seconds_total",
                           "host seconds writers waited for the gate"),
                gate.get("writer_wait_seconds"), **label)
        _sample(db_counter("gts_db_gate_reader_wait_seconds_total",
                           "host seconds readers waited for the gate"),
                gate.get("reader_wait_seconds"), **label)
        _sample(db_counter("gts_db_gate_reader_waits_total",
                           "reader acquisitions that had to wait"),
                gate.get("reader_waits"), **label)
        if "pool_hits" in db:
            _sample(db_counter("gts_db_pool_hits_total"),
                    db.get("pool_hits"), **label)
            _sample(db_counter("gts_db_pool_misses_total"),
                    db.get("pool_misses"), **label)
        mvcc = db.get("mvcc") or {}
        if mvcc:
            _sample(db_gauge("gts_db_mvcc_pinned_snapshots"),
                    mvcc.get("pinned_snapshots"), **label)
            _sample(db_gauge("gts_db_mvcc_version_chain_length"),
                    mvcc.get("version_chain_length"), **label)
            _sample(db_gauge("gts_db_mvcc_oldest_pinned_lag"),
                    mvcc.get("oldest_pinned_lag"), **label)
            _sample(db_counter("gts_db_mvcc_reclaimed_versions_total"),
                    mvcc.get("reclaimed_versions"), **label)
    return families


def render_service_metrics(stats):
    """Render a service stats snapshot as Prometheus exposition text
    (the ``GET /metrics`` body)."""
    from repro.obs.exporters import render_prometheus
    return render_prometheus(service_metric_families(stats))
