"""Trace analytics: turn a recorded run into measured claims.

PR 1 made the engine *record* its schedule; this module makes the
recording answer the paper's central question — how much of the
topology-transfer time is actually hidden under kernel execution
(PAPER.md Fig. 4, the ``max(...)`` term of Eq. 1).  Given a
:class:`~repro.obs.events.TraceRecorder` (or a written Chrome-trace
JSON file), :func:`analyze_trace` computes:

* **per-lane occupancy** — busy seconds and busy fraction for every
  ``(process, thread)`` resource lane;
* **overlap-hiding ratio** — per GPU and globally, the fraction of
  ``h2d_copy`` + ``ssd_fetch`` interval time concealed under concurrent
  ``kernel`` intervals.  A multi-stream run hides most of its transfer;
  a ``num_streams=1`` run serializes copy→kernel on its single stream
  and hides none of it (the Fig. 4 ablation, asserted in the tests);
* **per-round attribution** — each round's booked time split by
  category (storage / transfer / kernel / sync), clipped exactly to the
  round's barrier window, plus per-round cache hit/miss counts — the
  :class:`RoundProfile` time series surfaced on
  :meth:`repro.core.result.RunResult.analyze`;
* **critical path** — per round, the lane with the most booked time
  inside the barrier window; the concatenation of those segments is the
  run's critical path through the round barriers.

All arithmetic happens in **integer nanoseconds** (timestamps are
quantized on ingestion), so analyzing a live recorder and re-loading
its written Chrome trace produce *identical* reports — the property
:mod:`repro.obs.compare` relies on to trust diffs between artifacts.
"""

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.events import (
    CACHE_HIT,
    CACHE_MISS,
    H2D_COPY,
    KERNEL,
    PHASE_COMPLETE,
    ROUND,
    SSD_FETCH,
)

#: Quantization grid: one simulated nanosecond.  Fine enough that no
#: two distinct bookings collapse, coarse enough that the microsecond
#: float round-trip through Chrome-trace JSON is exactly absorbed.
_NS = 1e9

#: Categories whose booked time is attributed to rounds.  ``round``
#: itself is excluded (it is the window, not work inside it) and
#: ``fault``/``dynamic`` events ride on the lanes they delay.
ATTRIBUTED_CATEGORIES = ("storage", "transfer", "kernel", "sync")


def _ns(seconds):
    return int(round(seconds * _NS))


def _seconds(nanos):
    return nanos / _NS


def _merge(intervals):
    """Merge ``(start, end)`` integer intervals into a sorted union."""
    merged = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1][1] = end
        else:
            merged.append([start, end])
    return [(s, e) for s, e in merged]


def _total(merged):
    return sum(end - start for start, end in merged)


def _overlap(a, b):
    """Total intersection length of two merged interval unions."""
    total = 0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


@dataclasses.dataclass(frozen=True)
class LaneOccupancy:
    """Busy accounting for one ``(process, thread)`` resource lane."""

    process: str
    thread: str
    busy_seconds: float
    span_seconds: float  #: full analysis window (0 .. last event edge)
    occupancy: float  #: busy / span (0.0 for an empty window)
    num_events: int

    @property
    def lane(self) -> Tuple[str, str]:
        return (self.process, self.thread)

    def to_dict(self):
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class OverlapStats:
    """How much of one transfer source hid under kernel execution."""

    name: str  #: ``gpu<i>`` or ``storage``
    copy_seconds: float  #: union of transfer intervals
    kernel_seconds: float  #: union of the covering kernel intervals
    hidden_seconds: float  #: |transfer ∩ kernel|
    hiding_ratio: float  #: hidden / copy (0.0 when nothing was copied)

    @property
    def exposed_seconds(self):
        return self.copy_seconds - self.hidden_seconds

    def to_dict(self):
        out = dataclasses.asdict(self)
        out["exposed_seconds"] = self.exposed_seconds
        return out


@dataclasses.dataclass(frozen=True)
class CriticalSegment:
    """The dominant lane of one round — one link of the critical path."""

    round_index: int
    process: str
    thread: str
    busy_seconds: float
    round_seconds: float

    @property
    def share(self):
        return (self.busy_seconds / self.round_seconds
                if self.round_seconds > 0 else 0.0)

    def to_dict(self):
        out = dataclasses.asdict(self)
        out["share"] = self.share
        return out


@dataclasses.dataclass(frozen=True)
class RoundProfile:
    """One round's time attribution inside its barrier window."""

    round_index: int
    description: str
    execution: str  #: "paged" / "batched" ("" for pre-PR-5 traces)
    start: float
    end: float
    category_seconds: Dict[str, float]
    cache_hits: int
    cache_misses: int
    critical: Optional[CriticalSegment]

    @property
    def elapsed(self):
        return self.end - self.start

    def to_dict(self):
        return {
            "round_index": self.round_index,
            "description": self.description,
            "execution": self.execution,
            "start": self.start,
            "end": self.end,
            "elapsed": self.elapsed,
            "category_seconds": dict(self.category_seconds),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "critical": (self.critical.to_dict()
                         if self.critical is not None else None),
        }


@dataclasses.dataclass
class TraceAnalysis:
    """Everything :func:`analyze_trace` derives from one event stream."""

    total_seconds: float
    num_events: int
    lanes: List[LaneOccupancy]
    overlap: List[OverlapStats]  #: one per GPU plus ``storage`` if any
    overlap_hiding_ratio: float  #: aggregate over every transfer source
    copy_seconds: float  #: aggregate transfer-union seconds
    hidden_seconds: float  #: aggregate hidden seconds
    category_seconds: Dict[str, float]  #: whole-run booked time by cat.
    setup_seconds: Dict[str, float]  #: booked time outside any round
    rounds: List[RoundProfile]
    critical_path: List[CriticalSegment]

    @property
    def critical_path_seconds(self):
        return sum(seg.busy_seconds for seg in self.critical_path)

    def lane(self, process, thread) -> Optional[LaneOccupancy]:
        for occupancy in self.lanes:
            if occupancy.lane == (process, thread):
                return occupancy
        return None

    def gpu_overlap(self, gpu_index) -> Optional[OverlapStats]:
        return next((o for o in self.overlap
                     if o.name == "gpu%d" % gpu_index), None)

    def to_dict(self):
        """JSON-ready report (the ``repro obs analyze --json`` payload
        and the ``compare``-able artifact)."""
        return {
            "schema": "gts-trace-analysis/1",
            "total_seconds": self.total_seconds,
            "num_events": self.num_events,
            "overlap_hiding_ratio": self.overlap_hiding_ratio,
            "copy_seconds": self.copy_seconds,
            "hidden_seconds": self.hidden_seconds,
            "exposed_seconds": self.copy_seconds - self.hidden_seconds,
            "critical_path_seconds": self.critical_path_seconds,
            "category_seconds": dict(self.category_seconds),
            "setup_seconds": dict(self.setup_seconds),
            "lanes": [lane.to_dict() for lane in self.lanes],
            "overlap": [stats.to_dict() for stats in self.overlap],
            "rounds": [profile.to_dict() for profile in self.rounds],
            "critical_path": [seg.to_dict()
                              for seg in self.critical_path],
        }

    def summary(self):
        """Multi-line human report (the ``repro obs analyze`` output)."""
        from repro.units import format_seconds

        lines = ["trace analysis over %s (%d events)"
                 % (format_seconds(self.total_seconds), self.num_events)]
        lines.append(
            "overlap-hiding ratio %.1f%%: %s of %s transfer time hidden "
            "under kernels"
            % (100.0 * self.overlap_hiding_ratio,
               format_seconds(self.hidden_seconds),
               format_seconds(self.copy_seconds)))
        for stats in self.overlap:
            lines.append(
                "  %-8s copy %-10s kernel %-10s hidden %-10s (%.1f%%)"
                % (stats.name, format_seconds(stats.copy_seconds),
                   format_seconds(stats.kernel_seconds),
                   format_seconds(stats.hidden_seconds),
                   100.0 * stats.hiding_ratio))
        lines.append("booked time by category:")
        for category in sorted(self.category_seconds):
            lines.append("  %-10s %s" % (
                category,
                format_seconds(self.category_seconds[category])))
        lines.append("top lanes by occupancy:")
        ranked = sorted(self.lanes,
                        key=lambda lane: -lane.busy_seconds)[:6]
        for lane in ranked:
            lines.append("  %-24s %5.1f%% busy (%s)"
                         % ("%s/%s" % lane.lane,
                            100.0 * lane.occupancy,
                            format_seconds(lane.busy_seconds)))
        if self.rounds:
            lines.append("rounds (critical lane per barrier window):")
            shown = self.rounds[:12]
            for profile in shown:
                critical = profile.critical
                lines.append(
                    "  round %-3d %-24s %-9s crit %s (%.0f%%)"
                    % (profile.round_index,
                       profile.description[:24],
                       format_seconds(profile.elapsed),
                       ("%s/%s" % (critical.process, critical.thread)
                        if critical else "-"),
                       100.0 * critical.share if critical else 0.0))
            if len(self.rounds) > len(shown):
                lines.append("  ... %d more round(s)"
                             % (len(self.rounds) - len(shown)))
        return "\n".join(lines)


def _load_events(source, time_scale):
    """Normalise any supported source into a TraceRecorder."""
    from repro.obs.events import TraceRecorder

    if source is None:
        raise ConfigurationError(
            "no trace to analyze (run the engine with tracing=True, or "
            "pass a Chrome-trace JSON path)")
    if isinstance(source, TraceRecorder):
        return source
    if isinstance(source, str):
        import json

        with open(source) as handle:
            source = json.load(handle)
    if isinstance(source, dict):
        from repro.obs.exporters import recorder_from_chrome_trace

        return recorder_from_chrome_trace(source, time_scale=time_scale)
    raise ConfigurationError(
        "cannot analyze %r: expected a TraceRecorder, a Chrome-trace "
        "dict, or a path to a written trace file" % type(source).__name__)


def analyze_trace(source, time_scale=None) -> TraceAnalysis:
    """Analyze a recorded run.

    ``source`` is a :class:`~repro.obs.events.TraceRecorder`, a loaded
    Chrome-trace object, or a path to a written trace file.  Reports
    from the three forms are identical for the same run (timestamps are
    quantized to integer nanoseconds on ingestion).
    """
    from repro.obs.exporters import MICROSECONDS

    recorder = _load_events(source,
                            MICROSECONDS if time_scale is None
                            else time_scale)

    # -- quantize: every complete event becomes (lane, name, category,
    #    start_ns, end_ns); instants keep (lane, name, ts_ns).
    complete = []
    instants = []
    for event in recorder.events:
        if event.phase == PHASE_COMPLETE:
            start = _ns(event.start)
            complete.append((event.lane, event.name, event.category,
                             start, start + _ns(event.duration),
                             event.args or {}))
        else:
            instants.append((event.lane, event.name, _ns(event.start),
                             event.args or {}))
    end_ns = max([e[4] for e in complete]
                 + [i[2] for i in instants] + [0])

    # -- per-lane occupancy (lanes never self-overlap by construction,
    #    but merge anyway so malformed input cannot push busy > span).
    lane_intervals = {}
    lane_events = {}
    for lane, _, _, start, end, _ in complete:
        lane_intervals.setdefault(lane, []).append((start, end))
        lane_events[lane] = lane_events.get(lane, 0) + 1
    lanes = []
    span_s = _seconds(end_ns)
    for lane in recorder.lanes():
        merged = _merge(lane_intervals.get(lane, []))
        busy = _total(merged)
        lanes.append(LaneOccupancy(
            process=lane[0], thread=lane[1],
            busy_seconds=_seconds(busy), span_seconds=span_s,
            occupancy=(busy / end_ns if end_ns else 0.0),
            num_events=lane_events.get(lane, 0)))

    # -- overlap hiding: per GPU, that GPU's h2d_copy union against its
    #    kernel union; the shared storage array against all kernels.
    copies = {}  # gpu process -> intervals
    kernels = {}  # gpu process -> intervals
    fetches = []
    for lane, name, _, start, end, _ in complete:
        if name == H2D_COPY:
            copies.setdefault(lane[0], []).append((start, end))
        elif name == KERNEL:
            kernels.setdefault(lane[0], []).append((start, end))
        elif name == SSD_FETCH:
            fetches.append((start, end))
    overlap = []
    copy_total = hidden_total = 0
    all_kernels = _merge([iv for ivs in kernels.values() for iv in ivs])
    for gpu in sorted(set(copies) | set(kernels), key=_natural_key):
        copy_union = _merge(copies.get(gpu, []))
        kernel_union = _merge(kernels.get(gpu, []))
        hidden = _overlap(copy_union, kernel_union)
        copy_len = _total(copy_union)
        overlap.append(OverlapStats(
            name=gpu, copy_seconds=_seconds(copy_len),
            kernel_seconds=_seconds(_total(kernel_union)),
            hidden_seconds=_seconds(hidden),
            hiding_ratio=(hidden / copy_len if copy_len else 0.0)))
        copy_total += copy_len
        hidden_total += hidden
    if fetches:
        fetch_union = _merge(fetches)
        hidden = _overlap(fetch_union, all_kernels)
        fetch_len = _total(fetch_union)
        overlap.append(OverlapStats(
            name="storage", copy_seconds=_seconds(fetch_len),
            kernel_seconds=_seconds(_total(all_kernels)),
            hidden_seconds=_seconds(hidden),
            hiding_ratio=(hidden / fetch_len if fetch_len else 0.0)))
        copy_total += fetch_len
        hidden_total += hidden

    # -- whole-run booked time by category (sum of durations: what the
    #    resources were charged, not a dedup — two GPUs working at once
    #    book two seconds per second, and attribution preserves that).
    category_ns = {}
    for _, _, category, start, end, _ in complete:
        if category in ATTRIBUTED_CATEGORIES:
            category_ns[category] = (category_ns.get(category, 0)
                                     + (end - start))

    # -- per-round windows from the engine's `round` interval events.
    windows = []
    for lane, name, _, start, end, args in complete:
        if name == ROUND and lane == ("engine", "rounds"):
            windows.append((start, end, args))
    windows.sort(key=lambda w: (w[0], w[1]))
    cache_instants = [(name, ts)
                      for _, name, ts, _ in instants
                      if name in (CACHE_HIT, CACHE_MISS)]
    rounds = []
    critical_path = []
    attributed_ns = {}
    for start, end, args in windows:
        per_category = {}
        per_lane = {}
        for lane, name, category, ev_start, ev_end, _ in complete:
            if category not in ATTRIBUTED_CATEGORIES:
                continue
            clipped = min(ev_end, end) - max(ev_start, start)
            if clipped <= 0:
                continue
            per_category[category] = (per_category.get(category, 0)
                                      + clipped)
            per_lane[lane] = per_lane.get(lane, 0) + clipped
        for category, booked in per_category.items():
            attributed_ns[category] = (attributed_ns.get(category, 0)
                                       + booked)
        hits = sum(1 for name, ts in cache_instants
                   if name == CACHE_HIT and start <= ts < end)
        misses = sum(1 for name, ts in cache_instants
                     if name == CACHE_MISS and start <= ts < end)
        critical = None
        if per_lane:
            lane = min(per_lane, key=lambda k: (-per_lane[k], k))
            critical = CriticalSegment(
                round_index=int(args.get("round", len(rounds))),
                process=lane[0], thread=lane[1],
                busy_seconds=_seconds(per_lane[lane]),
                round_seconds=_seconds(end - start))
            critical_path.append(critical)
        rounds.append(RoundProfile(
            round_index=int(args.get("round", len(rounds))),
            description=str(args.get("description", "")),
            execution=str(args.get("execution", "")),
            start=_seconds(start), end=_seconds(end),
            category_seconds={c: _seconds(v)
                              for c, v in sorted(per_category.items())},
            cache_hits=hits, cache_misses=misses, critical=critical))

    # Booked time not inside any round window (WA broadcast, drain past
    # the last barrier): the exact remainder, so per-round attribution
    # plus setup always sums back to the whole-run totals.
    setup_ns = {
        category: category_ns[category] - attributed_ns.get(category, 0)
        for category in category_ns
    }

    return TraceAnalysis(
        total_seconds=span_s,
        num_events=len(recorder.events),
        lanes=lanes,
        overlap=overlap,
        overlap_hiding_ratio=(hidden_total / copy_total
                              if copy_total else 0.0),
        copy_seconds=_seconds(copy_total),
        hidden_seconds=_seconds(hidden_total),
        category_seconds={c: _seconds(v)
                          for c, v in sorted(category_ns.items())},
        setup_seconds={c: _seconds(v)
                       for c, v in sorted(setup_ns.items())},
        rounds=rounds,
        critical_path=critical_path,
    )


def _natural_key(text):
    """Sort ``gpu2`` before ``gpu10`` (shared with the exporters)."""
    import re

    return tuple(int(part) if part.isdigit() else part
                 for part in re.split(r"(\d+)", text))
