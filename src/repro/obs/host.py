"""Host-runtime profiling: the *other* clock.

Everything else in :mod:`repro.obs` measures **simulated** time — the
deterministic discrete-event timeline the engine books GPU kernels and
SSD fetches on.  This module measures **host** time: where the Python
process actually spends its wall-clock while driving that simulation —
page parsing in :mod:`repro.format.io`, scatter-index builds in
:mod:`repro.format.database`, plan construction in
:mod:`repro.core.plan`, dispatch in :mod:`repro.core.streams`, kernel
``process_batch`` calls, and the engine's own setup/round loop.  That
is exactly the axis ROADMAP item 4 (zero-copy mmap store, parallel
host backend) must optimize, and it needs a measured baseline.

A :class:`HostProfiler` keeps one stack of nested phase spans timed
with :func:`time.perf_counter_ns`.  Profiling is strictly pay-for-use:
components hold ``host_profiler=None`` by default and guard every
``push``/``pop`` behind an ``is not None`` check, mirroring the
``recorder=None`` convention — a disabled run never constructs a
profiler and never reads the host clock.  When enabled, the profiler
also tracks memory via :mod:`tracemalloc` (peak traced bytes plus
per-phase net allocation deltas — NumPy buffers are tracemalloc-visible)
and carries real I/O counters (bytes read, reads issued, adjacent-read
opportunities) snapshotted from the file-backed database and the
storage array.

The finished :class:`HostProfile` exports three ways:

* ``to_metrics()`` — flat ``host.*`` names (per-phase seconds, counts,
  p50/p95 per-call latencies via the shared
  :class:`~repro.obs.metrics.Histogram` quantiles, peak memory, I/O
  counters) so ``repro obs compare`` / ``obs history`` tolerance rules
  can gate per-phase wall-clock regressions, not just the end-to-end
  number;
* ``flamegraph()`` — collapsed-stack text (``a;b;c <self-µs>`` lines,
  the format Brendan Gregg's ``flamegraph.pl`` and speedscope read);
* ``trace_events()`` / :func:`merge_host_lanes` — host spans as extra
  ``host/profile`` lanes merged into the simulated Chrome trace at
  *export* time, so the live recorder and ``result.analyze()`` are
  untouched.

Both text exporters are byte-deterministic given a frozen profile.
"""

import dataclasses
import json
import os
import tracemalloc
from contextlib import contextmanager
from time import perf_counter_ns as _perf_counter_ns
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.events import PHASE_COMPLETE, TraceEvent, TraceRecorder
from repro.obs.exporters import MICROSECONDS
from repro.obs.metrics import Histogram

#: Module-level indirection so tests can count host-clock reads (the
#: disabled-path overhead guard patches this symbol).
perf_counter_ns = _perf_counter_ns

#: Separator inside phase paths (``run/round/kernel``).
PATH_SEP = "/"

#: Chrome-trace lane the merged host spans land on.  Distinct from the
#: simulated ``host`` process (mm buffer / bus lanes) so the two clocks
#: never share a swimlane.
HOST_PROCESS = "host/profile"
HOST_THREAD = "wall"

#: ``kind`` stamp on serialized profiles.
PROFILE_KIND = "gts-host-profile"
PROFILE_SCHEMA = 1

_NS = 1e-9


@dataclasses.dataclass(frozen=True)
class HostPhase:
    """Aggregated host wall-clock for one phase path.

    ``seconds`` is inclusive (children counted); ``self_seconds``
    subtracts direct children.  ``p50_seconds`` / ``p95_seconds`` are
    per-call latency quantiles over the phase's recorded samples.
    ``net_alloc_bytes`` is the net tracemalloc delta across the
    phase's calls (negative when the phase frees more than it
    allocates); ``None`` when memory tracking was off.
    """

    path: str
    depth: int
    seconds: float
    self_seconds: float
    count: int
    p50_seconds: Optional[float]
    p95_seconds: Optional[float]
    net_alloc_bytes: Optional[int]

    @property
    def name(self):
        return self.path.rsplit(PATH_SEP, 1)[-1]

    def to_dict(self):
        return dataclasses.asdict(self)


class HostProfile:
    """Frozen snapshot of one profiled run's host-side behavior."""

    def __init__(self, wall_seconds, phases, counters=None,
                 tracemalloc_peak_bytes=None,
                 events=(), dropped_events=0):
        self.wall_seconds = float(wall_seconds)
        #: Sorted by path — every consumer below relies on this order
        #: for deterministic output.
        self.phases: List[HostPhase] = sorted(
            phases, key=lambda p: p.path)
        self.counters: Dict[str, float] = dict(counters or {})
        self.tracemalloc_peak_bytes = tracemalloc_peak_bytes
        #: Raw closed spans ``(path, rel_start_ns, duration_ns)`` for
        #: the Chrome-lane export (capped at record time).
        self.events: List[Tuple[str, int, int]] = list(events)
        self.dropped_events = int(dropped_events)

    def phase(self, path) -> Optional[HostPhase]:
        for entry in self.phases:
            if entry.path == path:
                return entry
        return None

    def coverage(self) -> float:
        """Fraction of the measured wall-clock inside top-level phases.

        The acceptance bar for the instrumentation: a profiled run's
        depth-1 phases must account for (almost) all of the
        end-to-end host time, or the timers are missing a hot path.
        """
        if self.wall_seconds <= 0.0:
            return 0.0
        covered = sum(p.seconds for p in self.phases if p.depth == 1)
        return min(1.0, covered / self.wall_seconds)

    # -- exporters ---------------------------------------------------------
    def to_metrics(self) -> Dict[str, float]:
        """Flat ``host.*`` metric names for tolerance-ruled gating.

        Per-phase ``.fraction`` (share of wall-clock) is included
        because it is far more host-independent than absolute seconds —
        cross-machine gates should prefer it.
        """
        metrics = {
            "host.wall_seconds": self.wall_seconds,
            "host.coverage": self.coverage(),
            "host.dropped_events": float(self.dropped_events),
        }
        if self.tracemalloc_peak_bytes is not None:
            metrics["host.tracemalloc_peak_bytes"] = \
                float(self.tracemalloc_peak_bytes)
        for name in sorted(self.counters):
            metrics["host.%s" % name] = float(self.counters[name])
        for entry in self.phases:
            base = "host.phase.%s" % entry.path
            metrics[base + ".seconds"] = entry.seconds
            metrics[base + ".self_seconds"] = entry.self_seconds
            metrics[base + ".count"] = float(entry.count)
            if self.wall_seconds > 0.0:
                metrics[base + ".fraction"] = \
                    entry.seconds / self.wall_seconds
            if entry.p50_seconds is not None:
                metrics[base + ".p50_seconds"] = entry.p50_seconds
            if entry.p95_seconds is not None:
                metrics[base + ".p95_seconds"] = entry.p95_seconds
            if entry.net_alloc_bytes is not None:
                metrics[base + ".net_alloc_bytes"] = \
                    float(entry.net_alloc_bytes)
        return metrics

    def flamegraph(self) -> str:
        """Collapsed-stack text: one ``a;b;c <self-time-µs>`` line per
        phase path, sorted by path — byte-deterministic for a frozen
        profile and directly consumable by ``flamegraph.pl`` or
        speedscope."""
        lines = []
        for entry in self.phases:
            weight = max(0, int(round(entry.self_seconds * 1e6)))
            lines.append("%s %d"
                         % (entry.path.replace(PATH_SEP, ";"), weight))
        return "\n".join(lines) + ("\n" if lines else "")

    def trace_events(self) -> List[TraceEvent]:
        """The recorded spans as Chrome-lane events (host seconds) on
        the ``host/profile`` process, ready to merge next to the
        simulated lanes."""
        out = []
        for path, rel_start_ns, duration_ns in self.events:
            out.append(TraceEvent(
                name=path.rsplit(PATH_SEP, 1)[-1], category="host",
                phase=PHASE_COMPLETE, start=rel_start_ns * _NS,
                duration=duration_ns * _NS, process=HOST_PROCESS,
                thread=HOST_THREAD, args={"path": path}))
        return out

    def to_dict(self, include_events=False) -> Dict:
        """JSON-ready payload.  Carries a ``metrics`` map in the flat
        shape :func:`repro.obs.compare.flatten_metrics` passes through
        unchanged, so a written host-profile artifact can be fed
        straight to ``repro obs compare``."""
        payload = {
            "kind": PROFILE_KIND,
            "schema": PROFILE_SCHEMA,
            "wall_seconds": self.wall_seconds,
            "coverage": self.coverage(),
            "tracemalloc_peak_bytes": self.tracemalloc_peak_bytes,
            "dropped_events": self.dropped_events,
            "counters": dict(self.counters),
            "phases": [entry.to_dict() for entry in self.phases],
            "metrics": self.to_metrics(),
        }
        if include_events:
            payload["events"] = [list(event) for event in self.events]
        return payload

    @classmethod
    def from_dict(cls, payload) -> "HostProfile":
        if not isinstance(payload, dict) or \
                payload.get("kind") != PROFILE_KIND:
            raise ConfigurationError(
                "not a %s payload" % PROFILE_KIND)
        if payload.get("schema", 0) > PROFILE_SCHEMA:
            raise ConfigurationError(
                "host profile schema v%s is newer than this reader "
                "(v%d)" % (payload.get("schema"), PROFILE_SCHEMA))
        phases = [HostPhase(**entry) for entry in
                  payload.get("phases", [])]
        events = [tuple(event) for event in payload.get("events", [])]
        return cls(payload.get("wall_seconds", 0.0), phases,
                   counters=payload.get("counters"),
                   tracemalloc_peak_bytes=payload.get(
                       "tracemalloc_peak_bytes"),
                   events=events,
                   dropped_events=payload.get("dropped_events", 0))

    def summary(self) -> str:
        """Compact plain-text table for the CLI."""
        lines = ["host profile: %.4fs wall, coverage %.1f%%"
                 % (self.wall_seconds, 100.0 * self.coverage())]
        if self.tracemalloc_peak_bytes is not None:
            lines[0] += ", peak traced %.1f MiB" % (
                self.tracemalloc_peak_bytes / (1024.0 * 1024.0))
        for entry in self.phases:
            indent = "  " * entry.depth
            lines.append(
                "%s%-*s %9.4fs (self %7.4fs) x%-6d"
                % (indent, max(1, 30 - 2 * entry.depth), entry.name,
                   entry.seconds, entry.self_seconds, entry.count))
        for name in sorted(self.counters):
            lines.append("  %-30s %s" % (name, self.counters[name]))
        return "\n".join(lines)


class HostProfiler:
    """Records nested host-clock spans for one profiled run.

    One instance is one measurement: the wall-clock starts at
    construction and ends at :meth:`finish` (or at each
    :meth:`profile` snapshot).  ``push``/``pop`` must pair; the
    :meth:`phase` context manager is the safe spelling.  The profiler
    is intentionally not thread-safe — the engine's host loop is
    single-threaded, and keeping the hot path to two perf-counter
    reads per span is the point.
    """

    def __init__(self, track_memory=True, max_events=200_000,
                 max_samples_per_phase=65_536):
        self.max_events = max_events
        self.max_samples = max_samples_per_phase
        self._stack = []  # (path, start_ns, mem0_bytes)
        # path -> [total_ns, count, net_alloc_bytes, samples_ns]
        self._stats = {}
        self._events = []
        self.dropped_events = 0
        self._counters = {}
        self._finished = False
        self._memory = bool(track_memory)
        self._started_tracemalloc = False
        if self._memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            else:
                tracemalloc.reset_peak()
        self._start_ns = perf_counter_ns()

    # -- span recording ----------------------------------------------------
    def push(self, name):
        """Open a nested span; its path is the stack joined with ``/``."""
        if self._stack:
            path = self._stack[-1][0] + PATH_SEP + name
        else:
            path = name
        mem0 = tracemalloc.get_traced_memory()[0] if self._memory else 0
        self._stack.append((path, perf_counter_ns(), mem0))

    def pop(self):
        """Close the innermost open span and record it."""
        path, start_ns, mem0 = self._stack.pop()
        duration_ns = perf_counter_ns() - start_ns
        stat = self._stats.get(path)
        if stat is None:
            stat = self._stats[path] = [0, 0, 0, []]
        stat[0] += duration_ns
        stat[1] += 1
        if self._memory:
            stat[2] += tracemalloc.get_traced_memory()[0] - mem0
        if len(stat[3]) < self.max_samples:
            stat[3].append(duration_ns)
        if len(self._events) < self.max_events:
            self._events.append(
                (path, start_ns - self._start_ns, duration_ns))
        else:
            self.dropped_events += 1

    @contextmanager
    def phase(self, name):
        """``with profiler.phase("setup"): ...`` — push/pop, exception
        safe."""
        self.push(name)
        try:
            yield self
        finally:
            self.pop()

    def add_counter(self, name, amount):
        """Accumulate a named resource counter (I/O bytes, reads, ...)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    @property
    def depth(self):
        return len(self._stack)

    # -- snapshotting ------------------------------------------------------
    def _peak_bytes(self):
        if not self._memory or not tracemalloc.is_tracing():
            return None
        return tracemalloc.get_traced_memory()[1]

    def profile(self) -> HostProfile:
        """Non-destructive snapshot of everything recorded so far.

        Open spans are not counted (only closed ones carry a
        duration); the engine closes its spans before snapshotting, so
        an externally-owned profiler can keep running afterwards.
        """
        wall_ns = perf_counter_ns() - self._start_ns
        child_total = {}
        for path, stat in self._stats.items():
            if PATH_SEP in path:
                parent = path.rsplit(PATH_SEP, 1)[0]
                child_total[parent] = \
                    child_total.get(parent, 0) + stat[0]
        phases = []
        for path, stat in self._stats.items():
            total_ns, count, net_alloc, samples = stat
            ordered = sorted(samples)
            p50 = Histogram._quantile(ordered, 0.50)
            p95 = Histogram._quantile(ordered, 0.95)
            phases.append(HostPhase(
                path=path,
                depth=path.count(PATH_SEP) + 1,
                seconds=total_ns * _NS,
                self_seconds=max(
                    0, total_ns - child_total.get(path, 0)) * _NS,
                count=count,
                p50_seconds=None if p50 is None else p50 * _NS,
                p95_seconds=None if p95 is None else p95 * _NS,
                net_alloc_bytes=net_alloc if self._memory else None))
        return HostProfile(
            wall_ns * _NS, phases, counters=self._counters,
            tracemalloc_peak_bytes=self._peak_bytes(),
            events=self._events, dropped_events=self.dropped_events)

    def finish(self) -> HostProfile:
        """Close any dangling spans, snapshot, and release tracemalloc
        (only if this profiler started it).  Idempotent-safe: a second
        call just re-snapshots."""
        while self._stack:
            self.pop()
        result = self.profile()
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False
        self._finished = True
        return result


def merge_host_lanes(recorder, profile) -> TraceRecorder:
    """A new recorder holding the simulated events plus the profile's
    ``host/profile`` lane.

    Merging happens at export time on a *copy* so the live recorder —
    and everything ``result.analyze()`` computes from it — is
    untouched.  Note the two clocks share one time axis in the merged
    view: simulated seconds and host seconds are different quantities
    that merely render side by side.
    """
    merged = TraceRecorder()
    if recorder is not None:
        for event in recorder:
            merged._emit(event)
    for event in profile.trace_events():
        merged._emit(event)
    return merged


def host_chrome_trace(profile, recorder=None, time_scale=MICROSECONDS):
    """Chrome trace JSON for a host profile, optionally merged with a
    simulated-run recorder."""
    from repro.obs.exporters import chrome_trace

    return chrome_trace(merge_host_lanes(recorder, profile),
                        time_scale=time_scale)


def write_flamegraph(profile, path):
    """Write the collapsed-stack flamegraph text to ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(profile.flamegraph())
    return path


def write_host_profile(profile, path, include_events=False):
    """Write the profile's JSON payload to ``path`` (sorted keys —
    byte-deterministic for a frozen profile)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(profile.to_dict(include_events=include_events),
                  handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_host_profile(path) -> HostProfile:
    """Read a written host-profile artifact back."""
    with open(path) as handle:
        return HostProfile.from_dict(json.load(handle))


def collect_host_metrics(profile, registry):
    """Populate ``registry`` gauges from a :class:`HostProfile` — the
    hook :func:`repro.obs.metrics.collect_run_metrics` uses when a run
    carried a host profile."""
    for name, value in sorted(profile.to_metrics().items()):
        registry.gauge(name).set(value)
    return registry
