"""Benchmark history: an append-only, schema-versioned JSONL trajectory.

The checked-in ``BENCH_*.json`` reports are write-once snapshots — each
benchmark run overwrites the last, so the repo carries a *point*, not a
*trajectory*.  This module gives every benchmark one shared append-only
log (``BENCH_history.jsonl`` at the repo root by default): one JSON
object per line, schema-versioned, carrying the benchmark's name, its
identifying ``meta`` (scale, kernel, quick-mode, ...) and a flattened
``metrics`` map.

The log is what regression gating diffs against:
:func:`latest_baseline` picks the newest record whose ``meta`` matches
the fresh run's configuration (records from different scales or hosts
are never compared), and :func:`compare_to_baseline` feeds both into
:func:`repro.obs.compare.compare_metrics`.  ``repro obs history`` lists
the log; ``repro obs compare --history ...`` is the CI gate.
"""

import json
import os
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs.compare import compare_metrics, flatten_metrics

#: Bump when a record's shape changes; readers accept <= this.
SCHEMA_VERSION = 1

#: The ``kind`` stamp distinguishing history records from other JSONL.
RECORD_KIND = "gts-bench-history"

#: Default log location: the repository root next to ``BENCH_*.json``.
DEFAULT_HISTORY_FILENAME = "BENCH_history.jsonl"


def make_record(benchmark, metrics, meta=None, generated=None) -> Dict:
    """Build one schema-versioned history record (not yet written).

    ``metrics`` may be any payload :func:`flatten_metrics` accepts —
    it is flattened so records stay greppable and diffable no matter
    which benchmark produced them.  ``meta`` holds the identifying
    labels baselines are matched on; ``generated`` is the producer's
    ISO-8601 timestamp (history is append-only, so the stamp is part of
    the record rather than derived at read time).
    """
    if not benchmark or not isinstance(benchmark, str):
        raise ConfigurationError("history records need a benchmark name")
    return {
        "schema": SCHEMA_VERSION,
        "kind": RECORD_KIND,
        "benchmark": benchmark,
        "generated": generated,
        "meta": dict(meta or {}),
        "metrics": flatten_metrics(metrics),
    }


def append_history(path, benchmark, metrics, meta=None,
                   generated=None) -> Dict:
    """Append one record to the history log; returns the record."""
    record = make_record(benchmark, metrics, meta=meta,
                         generated=generated)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def load_history(path, benchmark=None) -> List[Dict]:
    """Read the log; returns records in file (chronological) order.

    A missing log is not an error — it is simply an empty history (the
    first run of a fresh checkout or CI job), so ``[]`` comes back and
    callers treat it like any other no-baseline case: append, don't
    fail.  Raises :class:`~repro.errors.ConfigurationError` on
    unparsable lines, missing record fields, or a schema version newer
    than this reader — a truncated or hand-mangled history should fail
    the gate loudly, not silently compare against garbage.
    """
    records = []
    if not os.path.exists(path):
        return records
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as error:
                raise ConfigurationError(
                    "%s:%d: unparsable history line (%s)"
                    % (path, lineno, error))
            if not isinstance(record, dict) or \
                    record.get("kind") != RECORD_KIND:
                raise ConfigurationError(
                    "%s:%d: not a %s record" % (path, lineno,
                                                RECORD_KIND))
            if record.get("schema", 0) > SCHEMA_VERSION:
                raise ConfigurationError(
                    "%s:%d: record schema v%s is newer than this "
                    "reader (v%d)" % (path, lineno,
                                      record.get("schema"),
                                      SCHEMA_VERSION))
            for field in ("benchmark", "metrics"):
                if field not in record:
                    raise ConfigurationError(
                        "%s:%d: record missing %r" % (path, lineno,
                                                      field))
            if benchmark is None or record["benchmark"] == benchmark:
                records.append(record)
    return records


def _meta_matches(record, match_meta):
    meta = record.get("meta", {})
    return all(meta.get(key) == value
               for key, value in (match_meta or {}).items())


def latest_baseline(records, match_meta=None) -> Optional[Dict]:
    """The newest record whose ``meta`` is a superset of ``match_meta``
    (``None`` when nothing matches)."""
    for record in reversed(records):
        if _meta_matches(record, match_meta):
            return record
    return None


def compare_to_baseline(history_path, benchmark, payload, rules=None,
                        match_meta=None):
    """Diff a fresh payload against its history baseline.

    Returns ``(report, baseline_record)``; ``(None, None)`` when the
    log holds no matching baseline (first run of a new configuration —
    callers should then *append*, not fail).
    """
    records = load_history(history_path, benchmark=benchmark)
    baseline = latest_baseline(records, match_meta=match_meta)
    if baseline is None:
        return None, None
    label = "%s@%s" % (benchmark, baseline.get("generated") or "baseline")
    report = compare_metrics(baseline["metrics"], payload, rules=rules,
                             before_label=label, after_label="current")
    return report, baseline


def describe_history(records, limit=None) -> str:
    """Plain-text listing for ``repro obs history``."""
    if not records:
        return "no history records"
    shown = records if limit is None else records[-limit:]
    lines = ["%-26s %-24s %-8s %s"
             % ("generated", "benchmark", "metrics", "meta")]
    for record in shown:
        meta = record.get("meta", {})
        meta_text = " ".join("%s=%s" % (key, meta[key])
                             for key in sorted(meta))
        lines.append("%-26s %-24s %-8d %s"
                     % (record.get("generated") or "-",
                        record["benchmark"], len(record["metrics"]),
                        meta_text))
    if len(records) > len(shown):
        lines.append("... %d older record(s)"
                     % (len(records) - len(shown)))
    return "\n".join(lines)
