"""Cost-model drift: measured DES time versus the Section 5 equations.

The paper's Equations 1 and 2 (:mod:`repro.core.cost_model`) predict
elapsed time from workload sizes and hardware rates.  This module closes
the loop: after every run it re-evaluates the equations *with the run's
measured workload* (bytes actually streamed, pages actually dispatched,
kernel work actually performed — all deterministic functions of the
algorithm, not of the scheduler) and reports the relative drift between
the DES elapsed time and the analytic prediction.

The prediction applies the equations the way the pipeline executes them:
within a round, streaming copies, kernel execution and storage reads
overlap (Figures 3–4), so the round's cost is the *maximum* of the three
resource terms rather than their sum, followed by the serial WA
synchronisation term.  This is exactly the reading under which the paper
derives its numbers ("the time for processing the kernels is hidden by
the data transfer time"), and it makes drift a sharp regression signal:
if a scheduler change serializes copies against kernels, or double-books
a resource, the DES time detaches from the analytic envelope and the
drift gauge moves.

Drift is emitted as a metric (``cost_model.drift``) so the bench
trajectory records it per run; the test suite asserts it stays below
20 % on the small registry datasets.
"""

import dataclasses
from typing import Dict

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class CostModelDrift:
    """Comparison of one run against its analytic cost-model prediction.

    ``drift`` is signed — positive when the DES ran slower than the
    model predicts; ``abs_drift`` is the magnitude the tests bound.
    """

    algorithm: str
    dataset: str
    model: str                     # "eq1" (full-scan) or "eq2" (traversal)
    simulated_seconds: float
    predicted_seconds: float
    components: Dict[str, float]   # named term contributions (seconds)

    @property
    def drift(self):
        if self.predicted_seconds <= 0:
            return 0.0 if self.simulated_seconds <= 0 else float("inf")
        return (self.simulated_seconds - self.predicted_seconds) \
            / self.predicted_seconds

    @property
    def abs_drift(self):
        return abs(self.drift)

    def summary(self):
        return ("%s on %s [%s]: simulated %.6f s vs predicted %.6f s "
                "(drift %+.1f%%)"
                % (self.algorithm, self.dataset, self.model,
                   self.simulated_seconds, self.predicted_seconds,
                   100.0 * self.drift))


def _sync_seconds(machine, strategy_name, num_gpus, wa_bytes, full_wa):
    """Per-round WA synchronisation time, mirroring
    :meth:`repro.core.strategies.Strategy.book_sync`."""
    pcie = machine.pcie
    if not full_wa:
        return num_gpus * pcie.latency
    if strategy_name == "scalability":
        chunk = -(-wa_bytes // num_gpus)
        return num_gpus * pcie.chunk_copy_time(chunk)
    merge = sum(pcie.p2p_copy_time(wa_bytes) for _ in range(num_gpus - 1))
    return merge + pcie.chunk_copy_time(wa_bytes)


def cost_model_drift(result, db, machine, kernel):
    """Build a :class:`CostModelDrift` report for a finished run.

    ``db``, ``machine`` and ``kernel`` must be the objects the engine
    ran with (the prediction needs |WA|, page sizes and hardware rates).
    """
    if result.num_rounds == 0:
        raise ConfigurationError(
            "cannot compute drift for a run with no rounds")
    gpu = machine.gpus[0]
    pcie = machine.pcie
    n = result.num_gpus
    wa_bytes = kernel.wa_bytes(db.num_vertices)
    replication = n if result.strategy == "scalability" else 1
    wa_gpu = (-(-wa_bytes // n) if result.strategy == "scalability"
              else wa_bytes)

    # Concurrency factor: k streams drain kernels at min(k/16, 1) of the
    # device rate (ARCHITECTURE.md §2, Figure 10).
    k = min(result.num_streams, gpu.max_concurrent_streams)
    concurrency = min(1.0, k * gpu.single_stream_fraction)

    total_edges = max(1, result.edges_traversed)
    storage_bw = (machine.num_storages
                  * machine.storages[0].read_bandwidth
                  if machine.storages else 0.0)

    # Eq. 1's pipeline-drain term t_kernel(SP_1 + LP_1): each round ends
    # with the barrier waiting out one last kernel at the single-stream
    # rate; the run's mean stream-level kernel time estimates it.
    drain = (result.kernel_stream_seconds / result.kernel_invocations
             if result.kernel_invocations else 0.0)

    transfer_total = kernel_total = storage_total = 0.0
    sync_total = pipeline = 0.0
    for stats in result.rounds:
        copies = max(0, stats.pages_dispatched * replication
                     - stats.pages_from_cache)
        # Per-GPU copy-engine occupancy: its share of the streamed bytes
        # at the c2 streaming rate, plus per-copy launch latency.
        transfer = (stats.bytes_streamed / (pcie.stream_bandwidth * n)
                    + pcie.latency * copies / n)
        # Per-GPU kernel time at the achieved stream concurrency; the
        # run's total device-kernel work is apportioned to rounds by
        # traversed edges (lane-steps track edges for every micro model).
        share = stats.edges_traversed / total_edges
        kernel_t = (result.kernel_busy_seconds * share / (n * concurrency)
                    + gpu.kernel_launch_overhead
                    * stats.pages_dispatched * replication / n)
        storage = 0.0
        if storage_bw > 0 and stats.pages_from_storage:
            storage_bytes = stats.pages_from_storage * db.config.page_size
            storage = (storage_bytes / storage_bw
                       + machine.storages[0].access_latency
                       * stats.pages_from_storage / machine.num_storages)
        transfer_total += transfer
        kernel_total += kernel_t
        storage_total += storage
        sync_total += _sync_seconds(machine, result.strategy, n, wa_bytes,
                                    full_wa=not kernel.traversal)
        # Rounds overlap copy/kernel/storage internally but serialize on
        # the end-of-round barrier: the pipeline bound is per-round max,
        # plus the drain of the round's final kernel.
        pipeline += max(transfer, kernel_t, storage)
        if stats.pages_dispatched:
            pipeline += drain
    wa_broadcast = pcie.chunk_copy_time(wa_gpu)
    predicted = wa_broadcast + pipeline + sync_total
    return CostModelDrift(
        algorithm=result.algorithm,
        dataset=result.dataset,
        model="eq2" if kernel.traversal else "eq1",
        simulated_seconds=result.elapsed_seconds,
        predicted_seconds=predicted,
        components={
            "wa_broadcast": wa_broadcast,
            "transfer": transfer_total,
            "kernel": kernel_total,
            "storage": storage_total,
            "sync": sync_total,
            "drain": drain * result.num_rounds,
            "pipeline": pipeline,
        },
    )


def record_drift(report, registry):
    """Emit a drift report into a metrics registry (gauges)."""
    registry.gauge("cost_model.drift",
                   "signed relative drift vs Eq.1/Eq.2").set(report.drift)
    registry.gauge("cost_model.abs_drift").set(report.abs_drift)
    registry.gauge("cost_model.predicted_seconds").set(
        report.predicted_seconds)
    registry.meta.setdefault("cost_model", report.model)
    return registry
