"""Typed trace events and the recorder that collects them.

The discrete-event machine already *books* every activity on a resource
timeline (:mod:`repro.hardware.clock`); this module gives those bookings
an identity.  A :class:`TraceRecorder` threaded through the engine, the
stream scheduler, the page caches, the main-memory buffer and the
storage array captures each activity as a :class:`TraceEvent` with a
semantic name, a category, and a *resource lane* — the (process, thread)
pair the Chrome trace-event format uses to draw swimlanes, mapped here
onto the simulated hardware:

=================  ==========================  =======================
process            thread                      events
=================  ==========================  =======================
``engine``         ``rounds``                  ``round``, ``round_barrier``
``gpu<i>``         ``copy engine``             ``h2d_copy``, ``wa_broadcast``, ``wa_sync``
``gpu<i>``         ``stream[<s>]``             ``kernel``
``gpu<i>``         ``page cache``              ``cache_hit/miss/admit/evict``
``host``           ``mm buffer``               ``mm_buffer_hit/miss``
``host``           ``bus``                     ``wa_sync``
``storage``        ``<device name>``           ``ssd_fetch``
=================  ==========================  =======================

Interval events on a single lane never overlap, because every interval
mirrors a booking on a serialized :class:`~repro.hardware.clock.Resource`
(the tests assert this).  Recording is pay-for-use: components hold
``recorder=None`` by default and guard every emission, so untraced runs
take no measurable overhead.
"""

import dataclasses
from typing import Dict, Optional, Tuple

# ---------------------------------------------------------------------------
# Event taxonomy (names are stable identifiers; exporters rely on them).
# ---------------------------------------------------------------------------
SSD_FETCH = "ssd_fetch"
H2D_COPY = "h2d_copy"
KERNEL = "kernel"
CACHE_HIT = "cache_hit"
CACHE_MISS = "cache_miss"
CACHE_ADMIT = "cache_admit"
CACHE_EVICT = "cache_evict"
MM_BUFFER_HIT = "mm_buffer_hit"
MM_BUFFER_MISS = "mm_buffer_miss"
WA_BROADCAST = "wa_broadcast"
WA_SYNC = "wa_sync"
ROUND = "round"
ROUND_BARRIER = "round_barrier"
WAL_APPEND = "wal_append"
WAL_REPLAY = "wal_replay"
WAL_RESET = "wal_reset"
DELTA_APPLY = "delta_apply"
COMPACTION = "compaction"
FAULT = "fault"
RETRY = "retry"
FALLBACK = "fallback"
DEVICE_LOST = "device_lost"

#: Event name -> category (the Chrome ``cat`` field, used for filtering
#: in the Perfetto UI).
CATEGORIES = {
    SSD_FETCH: "storage",
    H2D_COPY: "transfer",
    KERNEL: "kernel",
    CACHE_HIT: "cache",
    CACHE_MISS: "cache",
    CACHE_ADMIT: "cache",
    CACHE_EVICT: "cache",
    MM_BUFFER_HIT: "buffer",
    MM_BUFFER_MISS: "buffer",
    WA_BROADCAST: "sync",
    WA_SYNC: "sync",
    ROUND: "round",
    ROUND_BARRIER: "round",
    WAL_APPEND: "dynamic",
    WAL_REPLAY: "dynamic",
    WAL_RESET: "dynamic",
    DELTA_APPLY: "dynamic",
    COMPACTION: "dynamic",
    FAULT: "fault",
    RETRY: "fault",
    FALLBACK: "fault",
    DEVICE_LOST: "fault",
}

#: Phase markers matching the Chrome trace-event ``ph`` field.
PHASE_COMPLETE = "X"
PHASE_INSTANT = "i"


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One structured event on the simulated timeline.

    ``start`` and ``duration`` are simulated seconds; instants carry a
    zero duration.  ``process`` / ``thread`` name the resource lane.
    """

    name: str
    category: str
    phase: str
    start: float
    duration: float
    process: str
    thread: str
    args: Optional[Dict[str, object]] = None

    @property
    def end(self):
        return self.start + self.duration

    @property
    def lane(self) -> Tuple[str, str]:
        return (self.process, self.thread)


class TraceRecorder:
    """Collects :class:`TraceEvent` objects from one engine run.

    The recorder is append-only during a run; exporters
    (:mod:`repro.obs.exporters`) turn the finished stream into Chrome
    trace JSON or the Figure 4-style ASCII view.
    """

    def __init__(self):
        self.events = []
        self._lanes = {}  # (process, thread) -> insertion index

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- emission ----------------------------------------------------------
    def interval(self, name, process, thread, start, end, **args):
        """Record a complete event spanning ``[start, end]``."""
        self._emit(TraceEvent(
            name=name, category=CATEGORIES.get(name, "misc"),
            phase=PHASE_COMPLETE, start=start,
            duration=max(0.0, end - start),
            process=process, thread=thread, args=args or None))

    def instant(self, name, process, thread, ts, **args):
        """Record a zero-duration instant event at ``ts``."""
        self._emit(TraceEvent(
            name=name, category=CATEGORIES.get(name, "misc"),
            phase=PHASE_INSTANT, start=ts, duration=0.0,
            process=process, thread=thread, args=args or None))

    def _emit(self, event):
        self._lanes.setdefault(event.lane, len(self._lanes))
        self.events.append(event)

    # -- queries -----------------------------------------------------------
    def lanes(self):
        """All (process, thread) lanes in first-appearance order."""
        return sorted(self._lanes, key=self._lanes.__getitem__)

    def select(self, name=None, category=None, process=None, thread=None):
        """Events filtered by any combination of fields."""
        return [e for e in self.events
                if (name is None or e.name == name)
                and (category is None or e.category == category)
                and (process is None or e.process == process)
                and (thread is None or e.thread == thread)]

    def busy_intervals(self, process, thread):
        """``(start, end)`` pairs of the lane's interval events — the same
        shape :func:`repro.hardware.trace.render_lane` consumes."""
        return [(e.start, e.end)
                for e in self.events
                if e.phase == PHASE_COMPLETE
                and e.process == process and e.thread == thread]

    def end_time(self):
        """Timestamp of the latest event edge (0.0 when empty)."""
        return max((e.end for e in self.events), default=0.0)

    def counts(self):
        """Event-name -> occurrence count (handy in tests and reports)."""
        out = {}
        for event in self.events:
            out[event.name] = out.get(event.name, 0) + 1
        return out
