"""Run comparison: diff two metrics artifacts under tolerance rules.

The observability layer produces several JSON-ready payload shapes — a
:class:`~repro.obs.metrics.MetricsRegistry` snapshot, a
:class:`~repro.obs.analyze.TraceAnalysis` report, a benchmark report
(``BENCH_*.json``), or a history record (:mod:`repro.obs.history`).
:func:`flatten_metrics` projects any of them onto flat
``dotted.metric.name -> number`` pairs; :func:`compare_metrics` then
diffs two such payloads under named :class:`ToleranceRule` entries and
returns a :class:`ComparisonReport` of typed verdicts:

* ``improved`` — moved past tolerance in the rule's good direction,
* ``unchanged`` — within tolerance,
* ``regressed`` — moved past tolerance in the bad direction.

Only rule-matched metrics are compared — the rules *are* the tracked
metric set, so an artifact can grow new fields without tripping the
gate.  The report's overall verdict is ``regressed`` if any tracked
metric regressed, else ``improved`` if any improved, else
``unchanged``; ``repro obs compare`` exits non-zero on ``regressed``,
which is what the CI regression job gates on.
"""

import dataclasses
import fnmatch
import json
from typing import Dict, List

from repro.errors import ConfigurationError

IMPROVED = "improved"
UNCHANGED = "unchanged"
REGRESSED = "regressed"

#: Keys never flattened into comparable metrics: identity and
#: provenance, not measurements.
_IDENTITY_KEYS = ("meta", "host", "protocol", "generated", "schema",
                  "schema_version", "kind", "benchmark")


@dataclasses.dataclass(frozen=True)
class ToleranceRule:
    """One named tolerance: which metrics, which direction is better,
    and how much movement counts as real.

    ``pattern`` is an ``fnmatch`` glob over flattened metric names;
    ``direction`` is ``"lower"`` or ``"higher"`` (the *better*
    direction); the tolerance is ``max(abs_tol, rel_tol * |before|)``.
    """

    pattern: str
    direction: str = "lower"
    rel_tol: float = 0.0
    abs_tol: float = 0.0
    name: str = ""

    def __post_init__(self):
        if self.direction not in ("lower", "higher"):
            raise ConfigurationError(
                "rule %r: direction must be 'lower' or 'higher', got %r"
                % (self.pattern, self.direction))
        if self.rel_tol < 0 or self.abs_tol < 0:
            raise ConfigurationError(
                "rule %r: tolerances cannot be negative" % self.pattern)

    def matches(self, metric_name):
        return fnmatch.fnmatchcase(metric_name, self.pattern)

    def tolerance(self, before):
        return max(self.abs_tol, self.rel_tol * abs(before))

    def verdict(self, before, after):
        delta = after - before
        tolerance = self.tolerance(before)
        if abs(delta) <= tolerance:
            return UNCHANGED
        good = delta < 0 if self.direction == "lower" else delta > 0
        return IMPROVED if good else REGRESSED

    def to_dict(self):
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload):
        unknown = set(payload) - {f.name for f in
                                  dataclasses.fields(cls)}
        if unknown:
            raise ConfigurationError(
                "unknown tolerance-rule field(s): %s"
                % ", ".join(sorted(unknown)))
        if "pattern" not in payload:
            raise ConfigurationError("tolerance rule needs a 'pattern'")
        return cls(**payload)


#: Default rules for engine-run metrics and trace-analysis reports.
#: Simulated quantities are deterministic, so their tolerances are
#: tight; host wall-clock is noise and gets a wide band.
DEFAULT_RULES = (
    ToleranceRule("run.elapsed_seconds", "lower", rel_tol=1e-9,
                  name="simulated wall-clock"),
    ToleranceRule("run.mteps", "higher", rel_tol=1e-9, name="MTEPS"),
    ToleranceRule("run.wall_seconds", "lower", rel_tol=0.5,
                  name="host wall-clock (noisy)"),
    ToleranceRule("run.bytes_streamed", "lower", name="PCI-E traffic"),
    ToleranceRule("cache.hit_rate", "higher", abs_tol=0.01,
                  name="page-cache hit rate"),
    ToleranceRule("mm_buffer.hit_rate", "higher", abs_tol=0.01,
                  name="MM-buffer hit rate"),
    ToleranceRule("pipeline.transfer_busy_seconds", "lower",
                  rel_tol=1e-9),
    ToleranceRule("pipeline.kernel_busy_seconds", "lower", rel_tol=1e-9),
    ToleranceRule("overlap_hiding_ratio", "higher", abs_tol=0.02,
                  name="transfer/kernel overlap hiding"),
    ToleranceRule("total_seconds", "lower", rel_tol=1e-9,
                  name="trace span"),
    ToleranceRule("critical_path_seconds", "lower", rel_tol=1e-9),
    # Host-profile metrics (repro.obs.host): real wall-clock and memory,
    # so bands are wide; phase *fractions* are the host-independent
    # signal and get a tighter absolute band.
    ToleranceRule("host.wall_seconds", "lower", rel_tol=0.5,
                  name="host profile wall (noisy)"),
    ToleranceRule("host.phase.*.seconds", "lower", rel_tol=0.75,
                  abs_tol=0.005, name="host phase wall (noisy)"),
    ToleranceRule("host.phase.*.fraction", "lower", abs_tol=0.10,
                  name="host phase share of wall"),
    ToleranceRule("host.tracemalloc_peak_bytes", "lower", rel_tol=0.25,
                  abs_tol=1 << 20, name="host peak allocation"),
    ToleranceRule("host.coverage", "higher", abs_tol=0.05,
                  name="profiled share of wall"),
)


@dataclasses.dataclass(frozen=True)
class MetricDelta:
    """One tracked metric's movement between two artifacts."""

    name: str
    before: float
    after: float
    verdict: str
    rule: ToleranceRule

    @property
    def delta(self):
        return self.after - self.before

    @property
    def rel_change(self):
        if self.before == 0:
            return None
        return self.delta / abs(self.before)

    def to_dict(self):
        return {
            "name": self.name,
            "before": self.before,
            "after": self.after,
            "delta": self.delta,
            "rel_change": self.rel_change,
            "verdict": self.verdict,
            "rule": self.rule.to_dict(),
        }


class ComparisonReport:
    """Typed verdicts for every tracked metric of two artifacts."""

    def __init__(self, deltas, added=(), removed=(), before_label="before",
                 after_label="after"):
        self.deltas: List[MetricDelta] = list(deltas)
        #: Rule-matched metric names present only in ``after`` / only in
        #: ``before`` — surfaced (not gated) so schema drift is visible.
        self.added = sorted(added)
        self.removed = sorted(removed)
        self.before_label = before_label
        self.after_label = after_label

    @property
    def verdict(self):
        verdicts = {delta.verdict for delta in self.deltas}
        if REGRESSED in verdicts:
            return REGRESSED
        if IMPROVED in verdicts:
            return IMPROVED
        return UNCHANGED

    def regressions(self):
        return [d for d in self.deltas if d.verdict == REGRESSED]

    def improvements(self):
        return [d for d in self.deltas if d.verdict == IMPROVED]

    @property
    def exit_code(self):
        """Process exit code for gates: non-zero iff regressed."""
        return 1 if self.verdict == REGRESSED else 0

    def to_dict(self):
        return {
            "schema": "gts-comparison/1",
            "verdict": self.verdict,
            "before": self.before_label,
            "after": self.after_label,
            "num_tracked": len(self.deltas),
            "num_regressed": len(self.regressions()),
            "num_improved": len(self.improvements()),
            "added": list(self.added),
            "removed": list(self.removed),
            "deltas": [delta.to_dict() for delta in self.deltas],
        }

    def summary(self):
        lines = ["%s -> %s: %s (%d tracked metric(s), %d regressed, "
                 "%d improved)"
                 % (self.before_label, self.after_label,
                    self.verdict.upper(), len(self.deltas),
                    len(self.regressions()), len(self.improvements()))]
        for delta in self.deltas:
            if delta.verdict == UNCHANGED:
                continue
            rel = ("%+.1f%%" % (100.0 * delta.rel_change)
                   if delta.rel_change is not None else "n/a")
            lines.append(
                "  %-9s %-44s %.6g -> %.6g (%s, tol %s %.3g)"
                % (delta.verdict, delta.name, delta.before, delta.after,
                   rel, delta.rule.direction,
                   delta.rule.tolerance(delta.before)))
        for name in self.added:
            lines.append("  added     %s (no baseline value)" % name)
        for name in self.removed:
            lines.append("  removed   %s (baseline only)" % name)
        return "\n".join(lines)


def flatten_metrics(payload, prefix="") -> Dict[str, float]:
    """Project any metrics-bearing payload onto flat name->number pairs.

    Registry snapshots (``{"meta":..., "metrics": {name: {"kind":...,
    "value":...}}}``) flatten each instrument's value under its metric
    name; any other dict flattens recursively with dot-joined keys.
    Identity/provenance keys and non-numeric leaves (strings, bools,
    nulls, lists) are skipped.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError(
            "cannot flatten %r: expected a dict payload"
            % type(payload).__name__)
    flat = {}
    metrics = payload.get("metrics")
    if not prefix and isinstance(metrics, dict):
        items = []
        for name, entry in metrics.items():
            if (isinstance(entry, dict) and "value" in entry
                    and "kind" in entry):
                items.append((name, entry["value"]))
            else:
                items.append((name, entry))
        source = dict(items)
        rest = {key: value for key, value in payload.items()
                if key != "metrics" and key not in _IDENTITY_KEYS}
        _flatten_into(flat, source, "")
        _flatten_into(flat, rest, "")
        return flat
    _flatten_into(flat, payload, prefix,
                  skip=_IDENTITY_KEYS if not prefix else ())
    return flat


def _flatten_into(flat, payload, prefix, skip=()):
    for key, value in payload.items():
        if key in skip:
            continue
        name = "%s.%s" % (prefix, key) if prefix else str(key)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[name] = float(value)
        elif isinstance(value, dict):
            _flatten_into(flat, value, name)


def load_rules(path) -> List[ToleranceRule]:
    """Load tolerance rules from a JSON file (a list of rule objects,
    or ``{"rules": [...]}``)."""
    with open(path) as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        payload = payload.get("rules")
    if not isinstance(payload, list) or not payload:
        raise ConfigurationError(
            "%s: expected a non-empty JSON list of tolerance rules "
            "(or {'rules': [...]})" % path)
    return [ToleranceRule.from_dict(entry) for entry in payload]


def compare_metrics(before, after, rules=None, before_label="before",
                    after_label="after") -> ComparisonReport:
    """Diff two payloads under ``rules`` (:data:`DEFAULT_RULES` when
    omitted); returns a :class:`ComparisonReport`.

    ``before`` / ``after`` are dict payloads in any shape
    :func:`flatten_metrics` accepts (already-flat dicts included).
    """
    rules = list(DEFAULT_RULES if rules is None else rules)
    flat_before = flatten_metrics(before)
    flat_after = flatten_metrics(after)

    def rule_for(name):
        return next((rule for rule in rules if rule.matches(name)), None)

    deltas = []
    added = []
    removed = []
    for name in sorted(set(flat_before) | set(flat_after)):
        rule = rule_for(name)
        if rule is None:
            continue
        if name not in flat_before:
            added.append(name)
        elif name not in flat_after:
            removed.append(name)
        else:
            before_value = flat_before[name]
            after_value = flat_after[name]
            deltas.append(MetricDelta(
                name=name, before=before_value, after=after_value,
                verdict=rule.verdict(before_value, after_value),
                rule=rule))
    return ComparisonReport(deltas, added=added, removed=removed,
                            before_label=before_label,
                            after_label=after_label)
