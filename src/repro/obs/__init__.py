"""Observability for the GTS reproduction (``repro.obs``).

Three layers over one event stream:

* :mod:`repro.obs.events` — typed :class:`TraceEvent` records captured
  by a :class:`TraceRecorder` threaded through the engine, the stream
  scheduler, the page caches, the main-memory buffer and the storage
  array (``ssd_fetch``, ``h2d_copy``, ``kernel``, ``cache_*``,
  ``mm_buffer_*``, ``wa_broadcast``, ``wa_sync``, ``round``).
* :mod:`repro.obs.exporters` — Chrome trace-event JSON for
  Perfetto/chrome://tracing plus the Figure 4-style ASCII view, both
  rendered from the same recorder.
* :mod:`repro.obs.metrics` / :mod:`repro.obs.drift` — a
  :class:`MetricsRegistry` (counters/gauges/histograms, JSON/JSONL
  serialization) and the :class:`CostModelDrift` report comparing each
  run's simulated time against the Eq. 1/Eq. 2 analytic prediction.
* :mod:`repro.obs.analyze` — trace analytics over the same stream:
  per-lane occupancy, the transfer/kernel overlap-hiding ratio (the
  Fig. 4 claim made measurable), per-round category attribution and
  the critical path through round barriers.
* :mod:`repro.obs.compare` / :mod:`repro.obs.history` — run-to-run
  comparison under tolerance rules with typed verdicts
  (improved/unchanged/regressed) and the append-only, schema-versioned
  ``BENCH_history.jsonl`` benchmark trajectory the CI regression gate
  diffs against.
* :mod:`repro.obs.host` — the *host-runtime* profiler: phase-scoped
  wall-clock spans, tracemalloc accounting and real I/O counters over
  the process's own clock (everything else in ``repro.obs`` measures
  the *simulated* machine).  Exports collapsed-stack flamegraphs and
  ``host/*`` lanes merged into the Chrome trace.

* :mod:`repro.obs.telemetry` — *service-scale* request telemetry:
  per-request lifecycle span trees correlated by ``query_id``,
  structured JSON logging, rolling-window (1m/5m) latency/throughput
  histograms, the bounded slow-query ring with head-sampling and
  tail-capture, and the Prometheus ``/metrics`` family builders.

Observability is pay-for-use: with ``tracing=False`` nothing is
recorded and the dispatch hot path takes no measurable overhead; the
same holds for ``host_profile=False`` and an untelemetered service.
"""

from repro.obs.analyze import (
    CriticalSegment,
    LaneOccupancy,
    OverlapStats,
    RoundProfile,
    TraceAnalysis,
    analyze_trace,
)
from repro.obs.compare import (
    DEFAULT_RULES,
    ComparisonReport,
    MetricDelta,
    ToleranceRule,
    compare_metrics,
    flatten_metrics,
    load_rules,
)
from repro.obs.drift import CostModelDrift, cost_model_drift, record_drift
from repro.obs.events import (
    CACHE_ADMIT,
    CACHE_EVICT,
    CACHE_HIT,
    CACHE_MISS,
    COMPACTION,
    DELTA_APPLY,
    DEVICE_LOST,
    FALLBACK,
    FAULT,
    H2D_COPY,
    KERNEL,
    MM_BUFFER_HIT,
    MM_BUFFER_MISS,
    RETRY,
    ROUND,
    ROUND_BARRIER,
    SSD_FETCH,
    WA_BROADCAST,
    WA_SYNC,
    WAL_APPEND,
    WAL_REPLAY,
    WAL_RESET,
    TraceEvent,
    TraceRecorder,
)
from repro.obs.exporters import (
    MICROSECONDS,
    PROMETHEUS_CONTENT_TYPE,
    ascii_timeline,
    chrome_trace,
    load_chrome_trace,
    recorder_from_chrome_trace,
    render_prometheus,
    validate_chrome_trace,
    validate_prometheus_text,
    write_chrome_trace,
)
from repro.obs.host import (
    HostPhase,
    HostProfile,
    HostProfiler,
    collect_host_metrics,
    host_chrome_trace,
    load_host_profile,
    merge_host_lanes,
    write_flamegraph,
    write_host_profile,
)
from repro.obs.history import (
    append_history,
    compare_to_baseline,
    describe_history,
    latest_baseline,
    load_history,
    make_record,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_dynamic_metrics,
    collect_run_metrics,
    collect_service_metrics,
)
from repro.obs.telemetry import (
    RequestTrace,
    RollingWindow,
    ServiceTelemetry,
    SlowQueryRing,
    StructuredLogger,
    TelemetryConfig,
    configure_logging,
    get_logger,
    load_ring,
    render_service_metrics,
    service_metric_families,
    summarize_requests,
)

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "SSD_FETCH",
    "H2D_COPY",
    "KERNEL",
    "CACHE_HIT",
    "CACHE_MISS",
    "CACHE_ADMIT",
    "CACHE_EVICT",
    "MM_BUFFER_HIT",
    "MM_BUFFER_MISS",
    "WA_BROADCAST",
    "WA_SYNC",
    "ROUND",
    "ROUND_BARRIER",
    "WAL_APPEND",
    "WAL_REPLAY",
    "WAL_RESET",
    "DELTA_APPLY",
    "COMPACTION",
    "FAULT",
    "RETRY",
    "FALLBACK",
    "DEVICE_LOST",
    "MICROSECONDS",
    "chrome_trace",
    "write_chrome_trace",
    "ascii_timeline",
    "validate_chrome_trace",
    "recorder_from_chrome_trace",
    "load_chrome_trace",
    "TraceAnalysis",
    "LaneOccupancy",
    "OverlapStats",
    "RoundProfile",
    "CriticalSegment",
    "analyze_trace",
    "ToleranceRule",
    "MetricDelta",
    "ComparisonReport",
    "DEFAULT_RULES",
    "compare_metrics",
    "flatten_metrics",
    "load_rules",
    "make_record",
    "append_history",
    "load_history",
    "latest_baseline",
    "compare_to_baseline",
    "describe_history",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_run_metrics",
    "collect_dynamic_metrics",
    "collect_service_metrics",
    "CostModelDrift",
    "cost_model_drift",
    "record_drift",
    "HostPhase",
    "HostProfile",
    "HostProfiler",
    "collect_host_metrics",
    "host_chrome_trace",
    "load_host_profile",
    "merge_host_lanes",
    "write_flamegraph",
    "write_host_profile",
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "validate_prometheus_text",
    "RequestTrace",
    "RollingWindow",
    "ServiceTelemetry",
    "SlowQueryRing",
    "StructuredLogger",
    "TelemetryConfig",
    "configure_logging",
    "get_logger",
    "load_ring",
    "render_service_metrics",
    "service_metric_families",
    "summarize_requests",
]
