"""Observability for the GTS reproduction (``repro.obs``).

Three layers over one event stream:

* :mod:`repro.obs.events` — typed :class:`TraceEvent` records captured
  by a :class:`TraceRecorder` threaded through the engine, the stream
  scheduler, the page caches, the main-memory buffer and the storage
  array (``ssd_fetch``, ``h2d_copy``, ``kernel``, ``cache_*``,
  ``mm_buffer_*``, ``wa_broadcast``, ``wa_sync``, ``round``).
* :mod:`repro.obs.exporters` — Chrome trace-event JSON for
  Perfetto/chrome://tracing plus the Figure 4-style ASCII view, both
  rendered from the same recorder.
* :mod:`repro.obs.metrics` / :mod:`repro.obs.drift` — a
  :class:`MetricsRegistry` (counters/gauges/histograms, JSON/JSONL
  serialization) and the :class:`CostModelDrift` report comparing each
  run's simulated time against the Eq. 1/Eq. 2 analytic prediction.

Observability is pay-for-use: with ``tracing=False`` nothing is
recorded and the dispatch hot path takes no measurable overhead.
"""

from repro.obs.drift import CostModelDrift, cost_model_drift, record_drift
from repro.obs.events import (
    CACHE_ADMIT,
    CACHE_EVICT,
    CACHE_HIT,
    CACHE_MISS,
    COMPACTION,
    DELTA_APPLY,
    DEVICE_LOST,
    FALLBACK,
    FAULT,
    H2D_COPY,
    KERNEL,
    MM_BUFFER_HIT,
    MM_BUFFER_MISS,
    RETRY,
    ROUND,
    ROUND_BARRIER,
    SSD_FETCH,
    WA_BROADCAST,
    WA_SYNC,
    WAL_APPEND,
    WAL_REPLAY,
    WAL_RESET,
    TraceEvent,
    TraceRecorder,
)
from repro.obs.exporters import (
    MICROSECONDS,
    ascii_timeline,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_dynamic_metrics,
    collect_run_metrics,
)

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "SSD_FETCH",
    "H2D_COPY",
    "KERNEL",
    "CACHE_HIT",
    "CACHE_MISS",
    "CACHE_ADMIT",
    "CACHE_EVICT",
    "MM_BUFFER_HIT",
    "MM_BUFFER_MISS",
    "WA_BROADCAST",
    "WA_SYNC",
    "ROUND",
    "ROUND_BARRIER",
    "WAL_APPEND",
    "WAL_REPLAY",
    "WAL_RESET",
    "DELTA_APPLY",
    "COMPACTION",
    "FAULT",
    "RETRY",
    "FALLBACK",
    "DEVICE_LOST",
    "MICROSECONDS",
    "chrome_trace",
    "write_chrome_trace",
    "ascii_timeline",
    "validate_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_run_metrics",
    "collect_dynamic_metrics",
    "CostModelDrift",
    "cost_model_drift",
    "record_drift",
]
