"""Metrics registry: counters, gauges and histograms for engine runs.

The registry is deliberately small — named instruments with JSON-ready
snapshots — so ``bench/harness.py`` can persist per-run metrics next to
``results/`` and future PRs accumulate a performance trajectory instead
of one-off summary lines.

Conventions
-----------
* **Counter** — monotonically increasing totals (bytes streamed, cache
  hits).
* **Gauge** — point-in-time values (elapsed seconds, hit rates, drift).
* **Histogram** — per-observation distributions (round latency, per-round
  copy bytes); snapshots report count/sum/min/max/mean and p50/p95/p99.

``collect_run_metrics`` maps a :class:`~repro.core.result.RunResult`
onto these instruments with stable metric names, which is what the CLI's
``--metrics-out`` and the bench harness write out.
"""

import dataclasses
import json
import os
from typing import Dict, Optional

from repro.errors import ConfigurationError


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ConfigurationError(
                "counter %r cannot decrease (inc %r)" % (self.name, amount))
        self.value += amount
        return self.value

    def snapshot(self):
        return self.value


class Gauge:
    """A point-in-time value."""

    kind = "gauge"

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self.value = None

    def set(self, value):
        self.value = value
        return value

    def snapshot(self):
        return self.value


class Histogram:
    """A distribution of observations with quantile snapshots."""

    kind = "histogram"

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self.values = []

    def observe(self, value):
        self.values.append(float(value))

    @staticmethod
    def _quantile(ordered, q):
        if not ordered:
            return None
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def snapshot(self):
        ordered = sorted(self.values)
        if not ordered:
            # Same shape as the populated snapshot so downstream
            # flattening/comparison never KeyErrors on an idle
            # instrument; the statistics are None, not fake zeros.
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": None, "p50": None, "p95": None, "p99": None}
        return {
            "count": len(ordered),
            "sum": sum(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "mean": sum(ordered) / len(ordered),
            "p50": self._quantile(ordered, 0.50),
            "p95": self._quantile(ordered, 0.95),
            "p99": self._quantile(ordered, 0.99),
        }


class MetricsRegistry:
    """Named instruments plus run-level metadata, serializable to JSON.

    ``meta`` holds identifying labels (algorithm, dataset, strategy, …)
    that distinguish runs inside a shared JSONL file.
    """

    def __init__(self, meta: Optional[Dict[str, object]] = None):
        self.meta = dict(meta or {})
        self._instruments = {}

    def _get(self, cls, name, help):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, help=help)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise ConfigurationError(
                "metric %r already registered as a %s"
                % (name, instrument.kind))
        return instrument

    def counter(self, name, help="") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name, help="") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name, help="") -> Histogram:
        return self._get(Histogram, name, help)

    def __contains__(self, name):
        return name in self._instruments

    def __getitem__(self, name):
        return self._instruments[name]

    def names(self):
        return sorted(self._instruments)

    # -- serialization -----------------------------------------------------
    def as_dict(self):
        """JSON-ready snapshot: ``{"meta": ..., "metrics": {name: ...}}``."""
        metrics = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            metrics[name] = {
                "kind": instrument.kind,
                "value": instrument.snapshot(),
            }
        return {"meta": dict(self.meta), "metrics": metrics}

    def to_json(self, path=None, indent=2):
        """Serialize to a JSON string, optionally writing ``path``."""
        payload = json.dumps(self.as_dict(), indent=indent, sort_keys=True,
                             default=_jsonable)
        if path is not None:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            with open(path, "w") as handle:
                handle.write(payload + "\n")
        return payload

    #: Version stamp written on every JSONL line so trajectory readers
    #: can evolve the record shape without guessing.
    JSONL_SCHEMA_VERSION = 1

    def append_jsonl(self, path, extra_meta=None):
        """Append this registry as one JSONL line (the bench trajectory
        format: one line per run, greppable and diff-friendly).

        Each line is stamped with a ``schema`` version, and
        ``extra_meta`` merges into the record's ``meta`` block at write
        time (without mutating the registry) — so one registry can be
        logged under several experiment labels and every record stays
        self-describing.
        """
        record = self.as_dict()
        record["schema"] = self.JSONL_SCHEMA_VERSION
        if extra_meta:
            record["meta"].update(extra_meta)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True,
                                    default=_jsonable) + "\n")
        return path


def _jsonable(value):
    """Fallback encoder for numpy scalars and dataclasses."""
    if dataclasses.is_dataclass(value):
        return dataclasses.asdict(value)
    for attribute in ("item",):  # numpy scalar -> python scalar
        if hasattr(value, attribute):
            return getattr(value, attribute)()
    return str(value)


def collect_run_metrics(result, registry=None):
    """Populate a registry from a :class:`~repro.core.result.RunResult`.

    Returns the registry (a fresh one when none is given).  Metric names
    are stable: changing them breaks the bench trajectory files.
    """
    if registry is None:
        registry = MetricsRegistry()
    registry.meta.setdefault("algorithm", result.algorithm)
    registry.meta.setdefault("dataset", result.dataset)
    registry.meta.setdefault("engine", result.engine)
    registry.meta.setdefault("strategy", result.strategy)
    registry.meta.setdefault("num_gpus", result.num_gpus)
    registry.meta.setdefault("num_streams", result.num_streams)
    # Which round-execution path actually ran — history records must be
    # self-describing, and paged-vs-batched is a different hot path.
    registry.meta.setdefault("execution", result.execution)

    registry.gauge("run.elapsed_seconds",
                   "simulated wall-clock").set(result.elapsed_seconds)
    registry.gauge("run.wall_seconds",
                   "real host compute time").set(result.wall_seconds)
    registry.gauge("run.num_rounds", "engine rounds").set(result.num_rounds)
    registry.gauge("run.mteps",
                   "millions of traversed edges per simulated second"
                   ).set(result.mteps())

    registry.counter("run.pages_streamed").inc(result.pages_streamed)
    registry.counter("run.bytes_streamed").inc(result.bytes_streamed)
    registry.counter("run.storage_bytes_read").inc(result.storage_bytes_read)
    registry.counter("run.edges_traversed").inc(result.edges_traversed)
    registry.counter("run.kernel_invocations").inc(result.kernel_invocations)

    registry.counter("cache.hits").inc(result.cache_hits)
    registry.counter("cache.misses").inc(result.cache_misses)
    registry.gauge("cache.hit_rate").set(result.cache_hit_rate)
    registry.meta.setdefault("cache_policy", result.cache_policy)
    registry.gauge("cache.policy_hit_rate.%s"
                   % result.cache_policy).set(result.cache_hit_rate)
    registry.counter("mm_buffer.hits").inc(result.mm_buffer_hits)
    registry.counter("mm_buffer.misses").inc(result.mm_buffer_misses)
    registry.gauge("mm_buffer.hit_rate").set(result.mm_buffer_hit_rate)
    if result.pool_hits or result.pool_misses:
        registry.counter("pool.hits",
                         "host page-pool hits (file-backed DB)"
                         ).inc(result.pool_hits)
        registry.counter("pool.misses",
                         "host page-pool misses (file-backed DB)"
                         ).inc(result.pool_misses)
        registry.gauge("pool.hit_rate").set(result.pool_hit_rate)
    if result.scatter_hits or result.scatter_misses:
        registry.counter("scatter_index.hits",
                         "db-level sorted-scatter index hits"
                         ).inc(result.scatter_hits)
        registry.counter("scatter_index.misses",
                         "db-level sorted-scatter index misses "
                         "(argsort recomputed)"
                         ).inc(result.scatter_misses)
        total = result.scatter_hits + result.scatter_misses
        registry.gauge("scatter_index.hit_rate").set(
            result.scatter_hits / total)
    if result.shared_hits or result.shared_misses:
        registry.counter("shared_cache.hits",
                         "cross-query shared-cache hits (disk read + "
                         "parse skipped)").inc(result.shared_hits)
        registry.counter("shared_cache.misses").inc(result.shared_misses)
        registry.gauge("shared_cache.hit_rate").set(
            result.shared_hit_rate)
    if result.query_id is not None:
        registry.meta.setdefault("query_id", result.query_id)

    if result.fault_stats is not None:
        fs = result.fault_stats
        registry.counter("faults.injected",
                         "probabilistic faults that fired"
                         ).inc(fs.get("faults_injected", 0))
        registry.counter("faults.ssd_transient").inc(
            fs.get("ssd_transient_faults", 0))
        registry.counter("faults.ssd_corrupt").inc(
            fs.get("ssd_corrupt_faults", 0))
        registry.counter("faults.copy_errors").inc(fs.get("copy_faults", 0))
        registry.counter("faults.stream_stalls").inc(
            fs.get("stream_stalls", 0))
        registry.counter("faults.host_corrupt").inc(
            fs.get("host_corrupt_faults", 0))
        registry.counter("faults.retries",
                         "recovery retries across all sites"
                         ).inc(fs.get("retries", 0))
        registry.counter("faults.integrity_retries",
                         "host reads re-read after checksum mismatch"
                         ).inc(fs.get("integrity_retries", 0))
        registry.counter("faults.fallback_rounds",
                         "batched rounds degraded to the paged path"
                         ).inc(fs.get("fallback_rounds", 0))
        registry.counter("faults.devices_lost").inc(
            fs.get("devices_lost", 0))
        registry.gauge("faults.backoff_seconds",
                       "simulated backoff charged to faulted channels"
                       ).set(fs.get("backoff_seconds", 0.0))
        registry.gauge("faults.stall_seconds",
                       "simulated stream-stall delay injected"
                       ).set(fs.get("stall_seconds_injected", 0.0))

    registry.gauge("pipeline.transfer_busy_seconds").set(
        result.transfer_busy_seconds)
    registry.gauge("pipeline.kernel_busy_seconds").set(
        result.kernel_busy_seconds)
    registry.gauge("pipeline.transfer_to_kernel_ratio").set(
        result.transfer_to_kernel_ratio)

    latency = registry.histogram("round.latency_seconds",
                                 "per-round simulated latency")
    round_bytes = registry.histogram("round.copy_bytes",
                                     "per-round bytes streamed over PCI-E")
    round_pages = registry.histogram("round.pages_dispatched")
    for stats in result.rounds:
        latency.observe(stats.elapsed)
        round_bytes.observe(stats.bytes_streamed)
        round_pages.observe(stats.pages_dispatched)

    if result.host_profile is not None:
        from repro.obs.host import collect_host_metrics

        collect_host_metrics(result.host_profile, registry)
    return registry


def collect_dynamic_metrics(db, registry=None):
    """Populate a registry from a dynamic database's update counters.

    ``db`` is any object exposing ``dynamic_stats()`` (see
    :meth:`repro.dynamic.delta.DynamicGraphDatabase.dynamic_stats`);
    returns the registry (a fresh one when none is given).  Names are
    stable, mirroring :func:`collect_run_metrics`.
    """
    if registry is None:
        registry = MetricsRegistry()
    stats = db.dynamic_stats()
    registry.counter("dynamic.applied_batches",
                     "update batches applied").inc(stats["applied_batches"])
    registry.counter("dynamic.inserted_edges").inc(stats["inserted_edges"])
    registry.counter("dynamic.deleted_edges").inc(stats["deleted_edges"])
    registry.counter("dynamic.added_vertices").inc(stats["added_vertices"])
    registry.counter("dynamic.tombstoned_edges").inc(
        stats["tombstoned_edges"])
    registry.gauge("dynamic.delta_bytes",
                   "bytes of unfolded delta overlay"
                   ).set(stats["delta_bytes"])
    registry.gauge("dynamic.delta_pages",
                   "pages whose served form differs from the base"
                   ).set(stats["delta_pages"])
    registry.gauge("dynamic.extension_pages").set(stats["extension_pages"])
    registry.counter("wal.records_appended").inc(
        stats["wal_records_appended"])
    registry.counter("wal.bytes_appended").inc(stats["wal_bytes_appended"])
    registry.counter("compaction.count").inc(stats["compactions"])
    registry.counter("compaction.folded_bytes").inc(
        stats["compaction_folded_bytes"])
    registry.gauge("mvcc.pinned_snapshots",
                   "live snapshot handles pinning a version"
                   ).set(stats.get("pinned_snapshots", 0))
    registry.gauge("mvcc.pinned_versions",
                   "distinct topology versions kept alive by pins"
                   ).set(stats.get("pinned_versions", 0))
    registry.gauge("mvcc.oldest_pinned_lag",
                   "head version minus oldest pinned version"
                   ).set(stats.get("oldest_pinned_lag", 0))
    registry.gauge("mvcc.version_chain_length",
                   "retained versions including the head"
                   ).set(stats.get("version_chain_length", 1))
    registry.counter("mvcc.reclaimed_versions",
                     "versions reclaimed after their pins released"
                     ).inc(stats.get("reclaimed_versions", 0))
    registry.counter("mvcc.snapshots_pinned_total").inc(
        stats.get("snapshots_pinned_total", 0))
    return registry


def collect_service_metrics(stats, registry=None):
    """Populate a registry from a service stats snapshot.

    ``stats`` is :meth:`repro.service.service.GraphService.stats` (or a
    service instance, whose snapshot is taken here).  Returns the
    registry (a fresh one when none is given).  Names are stable,
    mirroring :func:`collect_run_metrics`; per-database cache counters
    are flattened as ``service.db.<name>.*``.
    """
    if registry is None:
        registry = MetricsRegistry()
    if hasattr(stats, "stats"):
        stats = stats.stats()
    registry.gauge("service.queue_depth",
                   "queries waiting for a worker").set(
        stats["queue_depth"])
    registry.gauge("service.in_flight",
                   "queries currently executing").set(stats["in_flight"])
    registry.gauge("service.peak_in_flight").set(stats["peak_in_flight"])
    registry.gauge("service.peak_queued").set(stats["peak_queued"])
    registry.counter("service.admitted",
                     "queries accepted by admission control"
                     ).inc(stats["admitted"])
    registry.counter("service.completed").inc(stats["completed"])
    registry.counter("service.failed").inc(stats["failed"])
    registry.counter("service.rejected_admission",
                     "queries rejected at capacity (HTTP 429)"
                     ).inc(stats["rejected_admission"])
    registry.counter("service.rejected_shutdown",
                     "queries rejected while draining (HTTP 503)"
                     ).inc(stats["rejected_shutdown"])
    latency = stats.get("latency_seconds") or {}
    for quantile in ("p50", "p95", "p99"):
        value = latency.get(quantile)
        if value is not None:
            registry.gauge("service.latency_%s_seconds" % quantile,
                           "query wall-clock latency").set(value)
    for name, db_stats in sorted((stats.get("databases") or {}).items()):
        prefix = "service.db.%s" % name
        shared = db_stats.get("shared_cache") or {}
        registry.counter(prefix + ".queries").inc(db_stats["queries"])
        registry.counter(prefix + ".shared_hits").inc(
            shared.get("hits", 0))
        registry.counter(prefix + ".shared_misses").inc(
            shared.get("misses", 0))
        registry.gauge(prefix + ".shared_hit_rate").set(
            shared.get("hit_rate", 0.0))
        plan = db_stats.get("plan_cache") or {}
        registry.counter(prefix + ".plan_hits").inc(plan.get("hits", 0))
        registry.counter(prefix + ".plan_builds").inc(
            plan.get("builds", 0))
        registry.counter(prefix + ".exclusive_queries").inc(
            db_stats.get("exclusive_queries", 0))
        registry.counter(prefix + ".updates",
                         "update batches committed on this handle"
                         ).inc(db_stats.get("updates", 0))
        gate = db_stats.get("gate") or {}
        registry.gauge(prefix + ".gate_writers_waiting").set(
            gate.get("writers_waiting", 0))
        registry.counter(prefix + ".gate_writer_wait_seconds",
                         "cumulative time writers spent waiting for "
                         "the gate").inc(gate.get("writer_wait_seconds",
                                                  0.0))
        registry.counter(prefix + ".gate_reader_wait_seconds",
                         "cumulative time readers spent waiting for "
                         "the gate").inc(gate.get("reader_wait_seconds",
                                                  0.0))
        mvcc = db_stats.get("mvcc")
        if mvcc:
            registry.gauge(prefix + ".mvcc_pinned_snapshots").set(
                mvcc.get("pinned_snapshots", 0))
            registry.gauge(prefix + ".mvcc_oldest_pinned_lag").set(
                mvcc.get("oldest_pinned_lag", 0))
            registry.gauge(prefix + ".mvcc_version_chain_length").set(
                mvcc.get("version_chain_length", 1))
            registry.counter(prefix + ".mvcc_reclaimed_versions").inc(
                mvcc.get("reclaimed_versions", 0))
    registry.counter("service.deadline_exceeded",
                     "queries that overran timeout_ms (HTTP 504)"
                     ).inc(stats.get("deadline_exceeded", 0))
    registry.counter("service.updates_applied",
                     "live update batches committed via the service"
                     ).inc(stats.get("updates_applied", 0))
    for label, window in sorted((stats.get("rolling") or {}).items()):
        prefix = "service.window.%s" % label
        registry.gauge(prefix + ".count",
                       "requests inside the rolling window").set(
            window.get("count", 0))
        registry.gauge(prefix + ".throughput_qps").set(
            window.get("throughput_qps", 0.0))
        for quantile in ("p50", "p95", "p99"):
            value = window.get(quantile)
            if value is not None:
                registry.gauge(
                    "%s.%s_seconds" % (prefix, quantile),
                    "rolling-window latency").set(value)
    telemetry = stats.get("telemetry") or {}
    if telemetry:
        for key in ("requests", "sampled", "slow", "tail_captured",
                    "rejections"):
            registry.counter("service.telemetry.%s" % key).inc(
                telemetry.get(key, 0))
    return registry
