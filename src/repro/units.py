"""Byte- and rate-unit helpers shared across the package.

The paper quotes capacities in MB/GB/TB and bandwidths in MB/s and GB/s.
Keeping the conversions in one module avoids a proliferation of magic
``* 1024 ** 3`` expressions and makes hardware specs read like the paper.
"""

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

#: One gigabit, used for network bandwidth quoted in Gbps (e.g. Infiniband
#: QDR at 40 Gbps).  Network vendors use decimal prefixes.
GBIT = 10 ** 9


def gbps_to_bytes_per_sec(gbps):
    """Convert a link speed in gigabits per second to bytes per second."""
    return gbps * GBIT / 8.0


def format_bytes(num_bytes):
    """Render a byte count with a binary-prefix unit, e.g. ``1.5 GB``.

    >>> format_bytes(1536)
    '1.50 KB'
    >>> format_bytes(64 * MB)
    '64.00 MB'
    """
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB", "PB"):
        if abs(value) < 1024.0 or unit == "PB":
            if unit == "B":
                return "%d B" % int(value)
            return "%.2f %s" % (value, unit)
        value /= 1024.0
    raise AssertionError("unreachable")


def format_rate(bytes_per_sec):
    """Render a bandwidth as e.g. ``6.00 GB/s``."""
    return format_bytes(bytes_per_sec) + "/s"


def format_seconds(seconds):
    """Render an elapsed time the way the paper's figures do.

    Times under a millisecond are shown in microseconds, under a second in
    milliseconds, and anything longer in seconds with one decimal.
    """
    if seconds < 1e-3:
        return "%.1f us" % (seconds * 1e6)
    if seconds < 1.0:
        return "%.1f ms" % (seconds * 1e3)
    return "%.1f s" % seconds
