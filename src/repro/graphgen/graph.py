"""An immutable CSR graph container shared across the package.

Every generator returns a :class:`Graph`; the slotted-page builder consumes
one; the baselines and reference algorithms run directly on its arrays.
Edges are directed.  Undirected inputs should be symmetrised by the caller
(see :meth:`Graph.symmetrised`).
"""

import numpy as np

from repro.errors import FormatError


class Graph:
    """A directed graph in compressed-sparse-row form.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex IDs are ``0 .. num_vertices - 1``.
    indptr:
        ``int64`` array of length ``num_vertices + 1``; the out-neighbours
        of ``v`` are ``targets[indptr[v]:indptr[v + 1]]``.
    targets:
        ``int64`` array of neighbour IDs, grouped by source.
    weights:
        Optional ``float32`` edge weights aligned with ``targets``.
    """

    def __init__(self, num_vertices, indptr, targets, weights=None):
        self.num_vertices = int(num_vertices)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.targets = np.asarray(targets, dtype=np.int64)
        self.weights = None if weights is None else np.asarray(
            weights, dtype=np.float32)
        if len(self.indptr) != self.num_vertices + 1:
            raise FormatError("indptr length must be num_vertices + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.targets):
            raise FormatError("indptr endpoints inconsistent with targets")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be nondecreasing")
        if self.weights is not None and len(self.weights) != len(self.targets):
            raise FormatError("weights must align with targets")
        if len(self.targets) and (
                self.targets.min() < 0 or self.targets.max() >= num_vertices):
            raise FormatError("target vertex ID out of range")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, num_vertices, sources, targets, weights=None,
                   deduplicate=False):
        """Build a CSR graph from parallel source/target arrays.

        When ``deduplicate`` is true, parallel edges are removed (the first
        weight wins); self-loops are always kept, matching R-MAT output.
        """
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise FormatError("sources and targets must have equal length")
        if len(sources) and (sources.min() < 0 or sources.max() >= num_vertices):
            raise FormatError("source vertex ID out of range")
        order = np.lexsort((targets, sources))
        sources = sources[order]
        targets = targets[order]
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float32)
            if len(weights) != len(order):
                raise FormatError("weights must align with edges")
            weights = weights[order]
        if deduplicate and len(sources):
            keep = np.ones(len(sources), dtype=bool)
            keep[1:] = (sources[1:] != sources[:-1]) | (targets[1:] != targets[:-1])
            sources = sources[keep]
            targets = targets[keep]
            if weights is not None:
                weights = weights[keep]
        counts = np.bincount(sources, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(num_vertices, indptr, targets, weights)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_edges(self):
        return len(self.targets)

    def out_degrees(self):
        """Out-degree of every vertex as an ``int64`` array."""
        return np.diff(self.indptr)

    def in_degrees(self):
        """In-degree of every vertex as an ``int64`` array."""
        return np.bincount(self.targets, minlength=self.num_vertices).astype(
            np.int64)

    def neighbors(self, v):
        """Out-neighbours of vertex ``v`` (a view into ``targets``)."""
        return self.targets[self.indptr[v]:self.indptr[v + 1]]

    def edge_weights(self, v):
        """Weights of ``v``'s out-edges, or None for unweighted graphs."""
        if self.weights is None:
            return None
        return self.weights[self.indptr[v]:self.indptr[v + 1]]

    def max_degree(self):
        degrees = self.out_degrees()
        return int(degrees.max()) if len(degrees) else 0

    def density_ratio(self):
        """Edges per vertex — the paper's "density" (1:16 for R-MAT)."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def symmetrised(self):
        """Return the graph with every edge mirrored (deduplicated)."""
        sources = np.repeat(np.arange(self.num_vertices, dtype=np.int64),
                            self.out_degrees())
        all_sources = np.concatenate([sources, self.targets])
        all_targets = np.concatenate([self.targets, sources])
        if self.weights is not None:
            all_weights = np.concatenate([self.weights, self.weights])
        else:
            all_weights = None
        return Graph.from_edges(self.num_vertices, all_sources, all_targets,
                                weights=all_weights, deduplicate=True)

    def with_random_weights(self, low=1.0, high=10.0, seed=0):
        """Return a weighted copy with uniform random weights (for SSSP)."""
        rng = np.random.default_rng(seed)
        weights = rng.uniform(low, high, size=self.num_edges).astype(np.float32)
        return Graph(self.num_vertices, self.indptr, self.targets, weights)

    def edge_list(self):
        """Return ``(sources, targets)`` parallel arrays (copies)."""
        sources = np.repeat(np.arange(self.num_vertices, dtype=np.int64),
                            self.out_degrees())
        return sources, self.targets.copy()

    # ------------------------------------------------------------------
    # Footprint accounting (drives O.O.M. modelling in baselines)
    # ------------------------------------------------------------------
    def csr_bytes(self, index_bytes=8, weight_bytes=0):
        """Bytes of a contiguous CSR representation of this graph.

        The CPU baselines (Ligra, Galois, MTGL) and TOTEM all require a
        contiguous in-memory array like this; the paper notes TOTEM cannot
        process RMAT30+ for exactly this reason.
        """
        return (
            (self.num_vertices + 1) * index_bytes
            + self.num_edges * (index_bytes + weight_bytes)
        )

    def __repr__(self):
        return "Graph(V=%d, E=%d%s)" % (
            self.num_vertices,
            self.num_edges,
            ", weighted" if self.weights is not None else "",
        )
