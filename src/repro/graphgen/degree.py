"""Degree-distribution analysis (the R-MAT/power-law toolkit).

The paper's datasets are chosen for their degree skew ("such skewness of
the node degree distribution is common in real graphs", Section 2), and
the slotted-page builder's small/large-page split is driven by exactly
that skew.  This module quantifies it:

* :func:`degree_histogram` — counts per degree value.
* :func:`power_law_exponent` — the discrete maximum-likelihood estimate
  of the tail exponent (Clauset–Shalizi–Newman), the standard measure of
  scale-freeness.
* :func:`gini_coefficient` — inequality of the degree mass (0 = regular
  graph, → 1 = all edges on one hub).
* :func:`summarize_degrees` — one dict with everything, used by tests
  and the dataset registry's sanity checks.
"""

import dataclasses

import numpy as np

from repro.errors import ConfigurationError


def degree_histogram(graph, direction="out"):
    """``(degrees, counts)`` arrays for the non-empty degree values."""
    values = _degrees(graph, direction)
    counts = np.bincount(values)
    present = np.flatnonzero(counts)
    return present.astype(np.int64), counts[present].astype(np.int64)


def power_law_exponent(graph, direction="out", d_min=1):
    """Discrete MLE of the power-law tail exponent alpha.

    Uses the Clauset–Shalizi–Newman approximation
    ``alpha = 1 + n / sum(ln(d / (d_min - 0.5)))`` over degrees
    ``>= d_min``.  Social/web graphs typically land in 1.8–3.0;
    Erdős–Rényi graphs produce much larger values (no heavy tail).
    Returns ``nan`` when fewer than two vertices qualify.
    """
    if d_min < 1:
        raise ConfigurationError("d_min must be at least 1")
    values = _degrees(graph, direction)
    tail = values[values >= d_min].astype(np.float64)
    if len(tail) < 2:
        return float("nan")
    return float(1.0 + len(tail) / np.log(tail / (d_min - 0.5)).sum())


def gini_coefficient(graph, direction="out"):
    """Gini inequality of the degree distribution in [0, 1)."""
    values = np.sort(_degrees(graph, direction).astype(np.float64))
    total = values.sum()
    if total == 0:
        return 0.0
    n = len(values)
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * values).sum() - (n + 1) * total)
                 / (n * total))


@dataclasses.dataclass(frozen=True)
class DegreeSummary:
    """One-shot characterisation of a graph's degree structure."""

    num_vertices: int
    num_edges: int
    mean_degree: float
    max_degree: int
    zero_degree_fraction: float
    power_law_alpha: float
    gini: float

    def is_heavy_tailed(self, hub_ratio=8.0):
        """Heuristic skew test: the busiest vertex dwarfs the mean."""
        return self.max_degree > hub_ratio * max(self.mean_degree, 1.0)


def summarize_degrees(graph, direction="out"):
    """Compute a :class:`DegreeSummary` for ``graph``."""
    values = _degrees(graph, direction)
    mean = float(values.mean()) if len(values) else 0.0
    return DegreeSummary(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        mean_degree=mean,
        max_degree=int(values.max()) if len(values) else 0,
        zero_degree_fraction=(float((values == 0).mean())
                              if len(values) else 0.0),
        power_law_alpha=power_law_exponent(graph, direction),
        gini=gini_coefficient(graph, direction),
    )


def _degrees(graph, direction):
    if direction == "out":
        return graph.out_degrees()
    if direction == "in":
        return graph.in_degrees()
    if direction == "total":
        return graph.out_degrees() + graph.in_degrees()
    raise ConfigurationError(
        "direction must be 'out', 'in' or 'total', not %r" % (direction,))
