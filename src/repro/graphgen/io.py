"""Graph input/output: edge-list text and binary formats.

Real deployments ingest graphs from files (the paper converts each
dataset into the slotted page format offline).  This module reads and
writes two interchange formats:

* **edge-list text** — one ``src dst [weight]`` pair per line, ``#``
  comments allowed; the format Twitter/UK2007/YahooWeb snapshots ship in.
* **binary edge list** — little-endian ``int64`` pairs (plus ``float32``
  weights when present) with a small header; ~10x faster to load.
"""

import struct

import numpy as np

from repro.errors import FormatError
from repro.graphgen.graph import Graph

#: Magic bytes identifying the binary edge-list format.
_BINARY_MAGIC = b"GTSE"
_BINARY_VERSION = 1


def write_edge_list(graph, path, include_weights=True):
    """Write a graph as ``src dst [weight]`` text lines."""
    sources, targets = graph.edge_list()
    weighted = include_weights and graph.weights is not None
    with open(path, "w") as handle:
        handle.write("# %d vertices, %d edges\n"
                     % (graph.num_vertices, graph.num_edges))
        if weighted:
            for s, t, w in zip(sources, targets, graph.weights):
                handle.write("%d %d %.6g\n" % (s, t, w))
        else:
            for s, t in zip(sources, targets):
                handle.write("%d %d\n" % (s, t))


def read_edge_list(path, num_vertices=None):
    """Read a ``src dst [weight]`` text file into a :class:`Graph`.

    When ``num_vertices`` is omitted, it is inferred as ``max id + 1``.
    Lines starting with ``#`` or ``%`` (Matrix Market style) are skipped.
    """
    sources = []
    targets = []
    weights = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise FormatError(
                    "%s:%d: expected 'src dst [weight]'" % (path,
                                                            line_number))
            sources.append(int(parts[0]))
            targets.append(int(parts[1]))
            if len(parts) >= 3:
                weights.append(float(parts[2]))
    if weights and len(weights) != len(sources):
        raise FormatError(
            "%s: some lines have weights and some do not" % path)
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if num_vertices is None:
        num_vertices = int(max(sources.max(initial=-1),
                               targets.max(initial=-1))) + 1
        num_vertices = max(num_vertices, 1)
    return Graph.from_edges(
        num_vertices, sources, targets,
        weights=np.asarray(weights, dtype=np.float32) if weights else None)


def write_binary(graph, path):
    """Write the compact binary edge-list format."""
    sources, targets = graph.edge_list()
    weighted = graph.weights is not None
    with open(path, "wb") as handle:
        handle.write(_BINARY_MAGIC)
        handle.write(struct.pack("<HHqq", _BINARY_VERSION,
                                 1 if weighted else 0,
                                 graph.num_vertices, graph.num_edges))
        handle.write(sources.astype("<i8").tobytes())
        handle.write(targets.astype("<i8").tobytes())
        if weighted:
            handle.write(graph.weights.astype("<f4").tobytes())


def read_binary(path):
    """Read the compact binary edge-list format back into a Graph."""
    with open(path, "rb") as handle:
        magic = handle.read(4)
        if magic != _BINARY_MAGIC:
            raise FormatError("%s: not a GTS binary edge list" % path)
        version, weighted, num_vertices, num_edges = struct.unpack(
            "<HHqq", handle.read(20))
        if version != _BINARY_VERSION:
            raise FormatError(
                "%s: unsupported binary version %d" % (path, version))
        sources = np.frombuffer(
            handle.read(8 * num_edges), dtype="<i8").astype(np.int64)
        targets = np.frombuffer(
            handle.read(8 * num_edges), dtype="<i8").astype(np.int64)
        weights = None
        if weighted:
            weights = np.frombuffer(
                handle.read(4 * num_edges), dtype="<f4").astype(np.float32)
        if len(sources) != num_edges or len(targets) != num_edges:
            raise FormatError("%s: truncated edge arrays" % path)
    return Graph.from_edges(num_vertices, sources, targets, weights=weights)
