"""Scaled-down synthetic stand-ins for the paper's three real graphs.

The paper evaluates on Twitter (42 M vertices, 1.47 B edges), UK2007
(106 M / 3.7 B) and YahooWeb (1.4 B / 6.6 B).  Those datasets are not
available offline, so these generators produce graphs that preserve the
traits the paper's results hinge on:

* **Twitter** — a social graph: dense (~35 edges/vertex), extremely skewed
  degree distribution, tiny diameter.  Modelled as R-MAT with stronger
  skew parameters.
* **UK2007** — a web graph: similar density but strong *host locality*
  (most links stay within a neighbourhood of the URL ordering) and a
  larger diameter than a social graph.
* **YahooWeb** — a much larger, much sparser web graph (~4.7 edges/vertex)
  with a very high diameter; it is the graph on which level-synchronous
  BFS does many low-work levels (the regime discussed against X-Stream in
  Section 8).

Each generator takes a vertex count so the experiment registry can scale
all datasets down by one common factor (documented in EXPERIMENTS.md).
"""

import numpy as np

from repro.graphgen.graph import Graph
from repro.graphgen.rmat import RMATParameters, generate_rmat


#: Statistics of the real datasets (Table 3), used for documentation and to
#: derive scaled stand-in shapes.
REAL_GRAPH_STATS = {
    "twitter": {"vertices": 42_000_000, "edges": 1_468_000_000},
    "uk2007": {"vertices": 106_000_000, "edges": 3_739_000_000},
    "yahooweb": {"vertices": 1_414_000_000, "edges": 6_636_000_000},
}


def _nearest_pow2_scale(num_vertices):
    """Log2 of the power of two nearest to ``num_vertices``.

    R-MAT needs a power-of-two vertex count; rounding to the nearest one
    (rather than always up) keeps scaled edge counts close to the real
    graph's target, which the baselines' memory footprints depend on.
    """
    scale = 0
    while (1 << scale) < num_vertices:
        scale += 1
    if scale and num_vertices / (1 << (scale - 1)) < 1.4142:
        scale -= 1
    return scale


def generate_twitter_like(num_vertices=65536, seed=10):
    """Social-network stand-in: dense, heavily skewed, low diameter."""
    scale = _nearest_pow2_scale(num_vertices)
    edge_factor = max(1, round(
        REAL_GRAPH_STATS["twitter"]["edges"]
        / REAL_GRAPH_STATS["twitter"]["vertices"]))
    params = RMATParameters(a=0.62, b=0.17, c=0.17, d=0.04)
    return generate_rmat(scale, edge_factor=edge_factor, parameters=params,
                         seed=seed)


def _local_web_edges(num_vertices, num_edges, locality_window, local_fraction,
                     rng):
    """Draw web-style edges: mostly short-range in vertex order, rest global.

    Web crawls order URLs lexicographically, so most hyperlinks land near
    their source; offsets follow a heavy-tailed (Zipf-like) law capped at
    ``locality_window``.
    """
    sources = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    local_mask = rng.random(num_edges) < local_fraction
    offsets = rng.zipf(1.6, size=num_edges).astype(np.int64)
    offsets = np.clip(offsets, 1, locality_window)
    signs = rng.choice(np.array([-1, 1], dtype=np.int64), size=num_edges)
    local_targets = (sources + signs * offsets) % num_vertices
    global_targets = rng.integers(0, num_vertices, size=num_edges,
                                  dtype=np.int64)
    targets = np.where(local_mask, local_targets, global_targets)
    return sources, targets


def generate_uk2007_like(num_vertices=65536, seed=11):
    """Web-graph stand-in: dense, host-local links, moderate diameter."""
    rng = np.random.default_rng(seed)
    edges_per_vertex = max(1, round(
        REAL_GRAPH_STATS["uk2007"]["edges"]
        / REAL_GRAPH_STATS["uk2007"]["vertices"]))
    num_edges = num_vertices * edges_per_vertex
    window = max(4, num_vertices // 256)
    sources, targets = _local_web_edges(
        num_vertices, num_edges, window, local_fraction=0.85, rng=rng)
    return Graph.from_edges(num_vertices, sources, targets)


def generate_yahooweb_like(num_vertices=262144, seed=12):
    """Large sparse web-graph stand-in with very high diameter.

    A directed ring backbone guarantees a diameter of the order of the
    window count, on top of sparse local web edges; this reproduces
    YahooWeb's many-level BFS behaviour.
    """
    rng = np.random.default_rng(seed)
    edges_per_vertex = max(1, round(
        REAL_GRAPH_STATS["yahooweb"]["edges"]
        / REAL_GRAPH_STATS["yahooweb"]["vertices"]))
    num_edges = num_vertices * max(1, edges_per_vertex - 1)
    window = max(2, num_vertices // 4096)
    sources, targets = _local_web_edges(
        num_vertices, num_edges, window, local_fraction=0.95, rng=rng)
    # Chain backbone: v -> v + 1 for a sparse subset, stretching diameter.
    backbone = np.arange(0, num_vertices - 1, 2, dtype=np.int64)
    sources = np.concatenate([sources, backbone])
    targets = np.concatenate([targets, backbone + 1])
    return Graph.from_edges(num_vertices, sources, targets)
