"""Graph generation and in-memory graph containers.

The paper evaluates on R-MAT synthetic graphs (RMAT27–RMAT32, 1:16
vertex-to-edge ratio) and three real graphs (Twitter, UK2007, YahooWeb).
This subpackage provides:

* :class:`~repro.graphgen.graph.Graph` — an immutable CSR container shared
  by the slotted-page builder, the baselines, and the reference algorithms.
* :func:`~repro.graphgen.rmat.generate_rmat` — the recursive-matrix
  generator of Chakrabarti et al. (SDM 2004), seedable and vectorised.
* :mod:`~repro.graphgen.random_graphs` — Erdős–Rényi and regular-ring
  generators used by tests and ablations.
* :mod:`~repro.graphgen.realworld` — scaled-down synthetic stand-ins for
  Twitter / UK2007 / YahooWeb that match those graphs' distinguishing
  shapes (degree skew, density, diameter class).
"""

from repro.graphgen.graph import Graph
from repro.graphgen.rmat import generate_rmat, RMATParameters
from repro.graphgen.random_graphs import generate_erdos_renyi, generate_ring
from repro.graphgen.realworld import (
    generate_twitter_like,
    generate_uk2007_like,
    generate_yahooweb_like,
)
from repro.graphgen.degree import (
    DegreeSummary,
    degree_histogram,
    gini_coefficient,
    power_law_exponent,
    summarize_degrees,
)

__all__ = [
    "Graph",
    "generate_rmat",
    "RMATParameters",
    "generate_erdos_renyi",
    "generate_ring",
    "generate_twitter_like",
    "generate_uk2007_like",
    "generate_yahooweb_like",
    "DegreeSummary",
    "degree_histogram",
    "gini_coefficient",
    "power_law_exponent",
    "summarize_degrees",
]
