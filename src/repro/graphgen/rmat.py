"""R-MAT graph generator (Chakrabarti, Zhan & Faloutsos, SDM 2004).

The paper's synthetic datasets RMAT27–RMAT32 are R-MAT graphs with
``2^k`` vertices and 16 edges per vertex.  R-MAT drops each edge into one
quadrant of the adjacency matrix recursively with probabilities
``(a, b, c, d)``; the classic skew-producing setting (and the Graph500
default) is ``a=0.57, b=0.19, c=0.19, d=0.05``.

The implementation is fully vectorised: all ``scale`` recursion levels for
all edges are drawn as one ``(num_edges, scale)`` random block, so million-
edge graphs generate in milliseconds and a fixed seed reproduces the exact
same graph (a property the test suite relies on).
"""

import dataclasses

import numpy as np

from repro.errors import ConfigurationError
from repro.graphgen.graph import Graph


@dataclasses.dataclass(frozen=True)
class RMATParameters:
    """Quadrant probabilities for the recursive matrix model."""

    a: float = 0.57
    b: float = 0.19
    c: float = 0.19
    d: float = 0.05

    def __post_init__(self):
        total = self.a + self.b + self.c + self.d
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                "R-MAT probabilities must sum to 1, got %.6f" % total)
        if min(self.a, self.b, self.c, self.d) < 0:
            raise ConfigurationError("R-MAT probabilities must be nonnegative")


def generate_rmat(scale, edge_factor=16, parameters=None, seed=0,
                  deduplicate=False, permute=True):
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        Log2 of the vertex count ("RMAT27" means ``scale=27``).
    edge_factor:
        Edges per vertex; the paper fixes the vertex:edge ratio at 1:16.
        Figure 14 varies this between 4 and 32.
    parameters:
        :class:`RMATParameters`; the Graph500 default when omitted.
    seed:
        Seed for NumPy's PCG64 generator.  Equal seeds give equal graphs.
    deduplicate:
        Remove parallel edges.  The paper keeps the raw multi-edge output
        (edge counts in Table 3 are exactly ``16 * 2^scale``), so the
        default is False.
    permute:
        Apply a random vertex permutation so vertex ID does not correlate
        with degree.  Real R-MAT pipelines do this; it also exercises the
        slotted-page builder's large-page handling at arbitrary positions.
    """
    if scale < 0:
        raise ConfigurationError("scale must be nonnegative")
    params = parameters or RMATParameters()
    num_vertices = 1 << scale
    num_edges = num_vertices * edge_factor
    rng = np.random.default_rng(seed)

    sources = np.zeros(num_edges, dtype=np.int64)
    targets = np.zeros(num_edges, dtype=np.int64)
    # At each recursion level an edge picks one of four quadrants; the row
    # bit is set for quadrants c and d, the column bit for b and d.
    p_row = params.c + params.d
    p_col_given_row = params.d / p_row if p_row > 0 else 0.0
    p_col_given_no_row = params.b / (params.a + params.b) \
        if (params.a + params.b) > 0 else 0.0
    for level in range(scale):
        draws = rng.random((2, num_edges))
        row_bit = draws[0] < p_row
        col_prob = np.where(row_bit, p_col_given_row, p_col_given_no_row)
        col_bit = draws[1] < col_prob
        sources = (sources << 1) | row_bit
        targets = (targets << 1) | col_bit

    if permute and num_vertices > 1:
        permutation = rng.permutation(num_vertices)
        sources = permutation[sources]
        targets = permutation[targets]

    return Graph.from_edges(num_vertices, sources, targets,
                            deduplicate=deduplicate)
