"""Simple random-graph generators used by tests and ablations."""

import numpy as np

from repro.errors import ConfigurationError
from repro.graphgen.graph import Graph


def generate_erdos_renyi(num_vertices, avg_degree, seed=0):
    """G(n, m)-style random digraph with ``num_vertices * avg_degree`` edges.

    Endpoints are drawn uniformly; parallel edges and self-loops may occur,
    matching the conventions of the R-MAT generator.
    """
    if num_vertices <= 0:
        raise ConfigurationError("num_vertices must be positive")
    rng = np.random.default_rng(seed)
    num_edges = int(num_vertices * avg_degree)
    sources = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    targets = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    return Graph.from_edges(num_vertices, sources, targets)


def generate_ring(num_vertices, hops=1):
    """A directed ring where each vertex points at its next ``hops`` vertices.

    Rings have maximal diameter, which makes them the worst case for
    level-synchronous BFS; the X-Stream discussion in Section 8 is about
    exactly this regime.
    """
    if num_vertices <= 0:
        raise ConfigurationError("num_vertices must be positive")
    base = np.arange(num_vertices, dtype=np.int64)
    sources = np.repeat(base, hops)
    offsets = np.tile(np.arange(1, hops + 1, dtype=np.int64), num_vertices)
    targets = (sources + offsets) % num_vertices
    return Graph.from_edges(num_vertices, sources, targets)


def generate_star(num_vertices, center=0):
    """A star: the centre points at every other vertex.

    The centre becomes a single giant adjacency list, which forces the
    slotted-page builder down its large-page path; tests use this shape.
    """
    if num_vertices <= 1:
        raise ConfigurationError("a star needs at least two vertices")
    others = np.array(
        [v for v in range(num_vertices) if v != center], dtype=np.int64)
    sources = np.full(len(others), center, dtype=np.int64)
    return Graph.from_edges(num_vertices, sources, others)
