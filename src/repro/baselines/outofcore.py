"""Out-of-core streaming baselines: X-Stream and GraphChi (Section 8).

The paper positions GTS against the two prior out-of-core "extremes":

* **X-Stream** (Roy et al., SOSP 2013) — *edge-centric* scatter-gather
  over streaming partitions.  Every scatter phase streams the **entire
  edge list** sequentially from storage, regardless of how many vertices
  are active; updates are written to an update file in the shuffle phase
  and read back in the gather phase (a read *and write* streaming
  mixture).  Great for full-scan algorithms; fatal for traversal on
  high-diameter graphs, where "X-Stream executes a very large number of
  scatter-gather iterations, each of which requires streaming the entire
  edge list but doing little work ... [it] did not finish in a
  reasonable amount of time".
* **GraphChi** (Kyrola et al., OSDI 2012) — parallel sliding windows
  over shards.  The paper notes it "shows a worse performance than
  X-Stream, due to requiring fully loading (not streaming) a shard file
  and no overlapping between disk I/O and computation".

Both engines execute the real algorithms through the shared BSP traces
and pay storage-bandwidth costs per superstep; the structural difference
the paper describes is encoded directly: X-Stream streams all edges and
overlaps compute with I/O, GraphChi serialises load / compute / write
per shard.
"""

import time as _time

from repro.baselines import bsp
from repro.baselines.cpu import CPU_ALGORITHM_CYCLES, paper_cpu_host
from repro.core.result import RunResult
from repro.errors import OutOfMemoryError
from repro.hardware.specs import SSD_SPEC


class _OutOfCoreEngine:
    """Shared wiring for the disk-streaming engines."""

    name = "abstract"
    #: Bytes per edge in the on-disk edge list / shard files.
    edge_bytes = 8
    #: Bytes per vertex of in-memory state (must fit main memory).
    vertex_bytes = 16

    def __init__(self, host=None, storage=SSD_SPEC, num_disks=1,
                 time_scale=1.0):
        self.host = host or paper_cpu_host()
        self.storage = storage
        self.num_disks = num_disks
        self.time_scale = time_scale

    def storage_bandwidth(self):
        return self.num_disks * self.storage.read_bandwidth

    def check_memory(self, graph):
        required = graph.num_vertices * self.vertex_bytes
        if required > self.host.main_memory:
            raise OutOfMemoryError(
                "%s needs %d bytes of vertex state but main memory is %d"
                % (self.name, required, self.host.main_memory),
                required_bytes=required,
                available_bytes=self.host.main_memory)

    def _run(self, algorithm, graph, bsp_run, dataset_name):
        wall_start = _time.perf_counter()
        self.check_memory(graph)
        elapsed = sum(
            self.superstep_seconds(trace, graph, algorithm)
            for trace in bsp_run.supersteps)
        return RunResult(
            algorithm=algorithm,
            dataset=dataset_name or "graph",
            values=bsp_run.values,
            elapsed_seconds=elapsed,
            wall_seconds=_time.perf_counter() - wall_start,
            num_rounds=bsp_run.num_supersteps,
            rounds=[],
            edges_traversed=bsp_run.total_edges(),
            num_gpus=0,
            num_streams=0,
            strategy="",
            engine=self.name,
        )

    def run_bfs(self, graph, start_vertex=0, dataset_name=None):
        return self._run(
            "BFS", graph,
            bsp.cached_trace(graph, "BFS", start_vertex=start_vertex),
            dataset_name)

    def run_pagerank(self, graph, iterations=10, dataset_name=None):
        return self._run(
            "PageRank", graph,
            bsp.cached_trace(graph, "PageRank", iterations=iterations),
            dataset_name)

    def run_sssp(self, graph, start_vertex=0, dataset_name=None):
        return self._run(
            "SSSP", graph,
            bsp.cached_trace(graph, "SSSP", start_vertex=start_vertex),
            dataset_name)

    def run_cc(self, graph, dataset_name=None):
        return self._run("CC", graph, bsp.cached_trace(graph, "CC"),
                         dataset_name)


class XStreamEngine(_OutOfCoreEngine):
    """X-Stream: edge-centric scatter / shuffle / gather."""

    name = "X-Stream"
    edge_bytes = 8            # (src, dst) pairs in the streamed edge list
    vertex_bytes = 16         # vertex value + update accumulation state
    update_bytes = 8          # one shuffled update record
    compute_factor = 1.2
    #: Shuffle CPU cost per update (bucketing into partitions).
    shuffle_cycles = 30.0

    def superstep_seconds(self, trace, graph, algorithm):
        bandwidth = self.storage_bandwidth()
        # Scatter: stream the WHOLE edge list, active or not (the
        # Section 8 point).  Reads overlap with compute.
        scan_seconds = graph.num_edges * self.edge_bytes / bandwidth
        compute_cycles = (trace.edges_processed
                          * CPU_ALGORITHM_CYCLES[algorithm]
                          * self.compute_factor)
        compute_seconds = compute_cycles / self.host.compute_hz
        scatter = max(scan_seconds, compute_seconds)
        # Shuffle + gather: write the update file, read it back, and pay
        # per-update CPU for the partition bucketing.
        update_io = (2.0 * trace.messages * self.update_bytes / bandwidth)
        shuffle_cpu = (trace.messages * self.shuffle_cycles
                       / self.host.compute_hz)
        return scatter + update_io + shuffle_cpu


class GraphChiEngine(_OutOfCoreEngine):
    """GraphChi: parallel sliding windows over fully-loaded shards."""

    name = "GraphChi"
    edge_bytes = 10           # shard entries carry in-edge values
    vertex_bytes = 20
    compute_factor = 1.5
    #: Fixed cost per shard per iteration at paper scale, seconds.
    shard_seconds = 0.05
    #: Shards sized so one fits in a quarter of main memory.
    memory_fraction_per_shard = 0.25

    def num_shards(self, graph):
        shard_capacity = (self.host.main_memory
                          * self.memory_fraction_per_shard)
        total = graph.num_edges * self.edge_bytes
        return max(1, -(-int(total) // int(shard_capacity)))

    def superstep_seconds(self, trace, graph, algorithm):
        bandwidth = self.storage_bandwidth()
        # Load every shard fully, then compute, then write back: no
        # I/O-compute overlap (the paper's explicit criticism).
        io_seconds = 2.0 * graph.num_edges * self.edge_bytes / bandwidth
        compute_cycles = (trace.edges_processed
                          * CPU_ALGORITHM_CYCLES[algorithm]
                          * self.compute_factor)
        compute_seconds = compute_cycles / self.host.compute_hz
        shard_overhead = (self.num_shards(graph) * self.shard_seconds
                          / self.time_scale)
        return io_seconds + compute_seconds + shard_overhead
