"""GPU baseline engines: TOTEM, CuSha, MapGraph (Figure 8).

* **TOTEM** — the only prior system handling graphs larger than GPU
  memory: it splits the graph into a GPU partition and a CPU partition
  processed concurrently, exchanging boundary messages each superstep.
  Its three drawbacks from Section 8 fall out of the model: the GPU
  fraction shrinks as graphs grow (GPU work is capped by device memory),
  boundary traffic grows with more GPUs, and it still needs the whole
  graph in a contiguous main-memory array (O.O.M. beyond RMAT29).
* **CuSha** — G-Shards/Concatenated-Windows layout, entire graph in GPU
  device memory.  Fast layout, tiny capacity: BFS fits Twitter but not
  RMAT27; PageRank's extra per-edge value arrays do not fit any tested
  graph (matching the paper).
* **MapGraph** — GAS on the GPU over a Matrix-Market-derived format that
  is "less space-efficient than the G-Shard format": it cannot even hold
  Twitter.

All three execute the real algorithm via the shared BSP traces; memory
footprints use each system's published format overheads.
"""

import time as _time

from repro.baselines import bsp
from repro.baselines.cpu import CPU_ALGORITHM_CYCLES, paper_cpu_host
from repro.core.kernels import (
    BCKernel,
    BFSKernel,
    PageRankKernel,
    SSSPKernel,
    WCCKernel,
)
from repro.core.result import RunResult
from repro.errors import OutOfMemoryError
from repro.hardware.specs import GPUSpec, PCIeSpec


#: Effective GPU cycles per edge, taken from the GTS kernels so the GPU
#: baselines and GTS price identical work identically.
GPU_ALGORITHM_CYCLES = {
    "BFS": BFSKernel.cycles_per_lane_step,
    "PageRank": PageRankKernel.cycles_per_lane_step,
    "SSSP": SSSPKernel.cycles_per_lane_step,
    "CC": WCCKernel.cycles_per_lane_step,
    "BC": BCKernel.cycles_per_lane_step,
}

#: The paper's Table 5 (Appendix C): TOTEM's recommended GPU:CPU split
#: as the fraction of the graph processed by GPUs, keyed by
#: (dataset, algorithm, number of GPUs).
TOTEM_PARTITION_TABLE = {
    ("rmat27", "BFS", 1): 0.65, ("rmat27", "PageRank", 1): 0.60,
    ("rmat27", "BFS", 2): 0.80, ("rmat27", "PageRank", 2): 0.80,
    ("rmat28", "BFS", 1): 0.15, ("rmat28", "PageRank", 1): 0.60,
    ("rmat28", "BFS", 2): 0.40, ("rmat28", "PageRank", 2): 0.80,
    ("rmat29", "BFS", 1): 0.50, ("rmat29", "PageRank", 1): 0.15,
    ("rmat29", "BFS", 2): 0.75, ("rmat29", "PageRank", 2): 0.30,
    ("twitter", "BFS", 1): 0.50, ("twitter", "PageRank", 1): 0.80,
    ("twitter", "BFS", 2): 0.75, ("twitter", "PageRank", 2): 0.85,
    ("uk2007", "BFS", 1): 0.35, ("uk2007", "PageRank", 1): 0.30,
    ("uk2007", "BFS", 2): 0.70, ("uk2007", "PageRank", 2): 0.60,
    ("yahooweb", "BFS", 1): 0.10, ("yahooweb", "PageRank", 1): 0.15,
}


class _GPUBaselineBase:
    """Shared wiring: host CPUs, GPU list, PCI-E, and time scaling."""

    def __init__(self, host=None, gpus=None, pcie=None, time_scale=1.0):
        self.host = host or paper_cpu_host()
        self.gpus = list(gpus) if gpus is not None else [GPUSpec(), GPUSpec()]
        self.pcie = pcie or PCIeSpec()
        self.time_scale = time_scale

    @property
    def num_gpus(self):
        return len(self.gpus)

    def total_gpu_memory(self):
        return sum(g.device_memory for g in self.gpus)

    def total_gpu_hz(self):
        return sum(g.effective_hz for g in self.gpus)

    def _result(self, algorithm, bsp_run, elapsed, dataset_name, wall_start):
        return RunResult(
            algorithm=algorithm,
            dataset=dataset_name or "graph",
            values=bsp_run.values,
            elapsed_seconds=elapsed,
            wall_seconds=_time.perf_counter() - wall_start,
            num_rounds=bsp_run.num_supersteps,
            rounds=[],
            edges_traversed=bsp_run.total_edges(),
            num_gpus=self.num_gpus,
            num_streams=0,
            strategy="",
            engine=self.name,
        )

    # Public algorithm entry points shared by all three engines.
    def run_bfs(self, graph, start_vertex=0, dataset_name=None):
        return self._run("BFS", graph,
                         bsp.cached_trace(graph, 'BFS', start_vertex=start_vertex), dataset_name)

    def run_pagerank(self, graph, iterations=10, dataset_name=None):
        return self._run("PageRank", graph,
                         bsp.cached_trace(graph, 'PageRank', iterations=iterations), dataset_name)

    def run_sssp(self, graph, start_vertex=0, dataset_name=None):
        return self._run("SSSP", graph,
                         bsp.cached_trace(graph, 'SSSP', start_vertex=start_vertex), dataset_name)

    def run_cc(self, graph, dataset_name=None):
        return self._run("CC", graph, bsp.cached_trace(graph, 'CC'), dataset_name)

    def run_bc(self, graph, sources=(0,), dataset_name=None):
        return self._run("BC", graph,
                         bsp.cached_trace(graph, 'BC', sources=sources), dataset_name)


class TotemEngine(_GPUBaselineBase):
    """TOTEM: hybrid CPU+GPU processing with an edge partition.

    ``partition_ratio`` is the fraction of edges placed in GPU device
    memory.  When None, the engine looks the dataset up in the paper's
    Table 5 and otherwise derives the largest fraction whose CSR slice
    fits in 75 % of device memory (the rest holds TOTEM's state).
    """

    name = "TOTEM"
    #: Bytes per edge of TOTEM's GPU partition (packed CSR).
    gpu_bytes_per_edge = 8
    #: Bytes per edge of the main-memory representation (contiguous CSR
    #: plus partition metadata) — the structure that makes RMAT30+
    #: impossible on 128 GB (Section 7.4).
    host_bytes_per_edge = 12
    host_bytes_per_vertex = 24
    #: Boundary message cost: bytes over PCI-E and CPU cycles each.
    boundary_message_bytes = 4
    boundary_message_cycles = 30.0
    superstep_seconds = 1e-3

    def __init__(self, host=None, gpus=None, pcie=None, time_scale=1.0,
                 partition_ratio=None):
        super().__init__(host, gpus, pcie, time_scale)
        self.partition_ratio = partition_ratio

    def resolve_partition(self, graph, algorithm, dataset_name=None):
        """GPU fraction for this run (Table 5, else memory-derived)."""
        if self.partition_ratio is not None:
            return self.partition_ratio
        key = (str(dataset_name or "").lower(), algorithm, self.num_gpus)
        if key in TOTEM_PARTITION_TABLE:
            return TOTEM_PARTITION_TABLE[key]
        budget = 0.75 * self.total_gpu_memory()
        need = graph.num_edges * self.gpu_bytes_per_edge
        return min(0.95, budget / need) if need else 0.95

    def check_memory(self, graph):
        required = (graph.num_edges * self.host_bytes_per_edge
                    + graph.num_vertices * self.host_bytes_per_vertex)
        if required > self.host.main_memory:
            raise OutOfMemoryError(
                "TOTEM needs a contiguous %d-byte in-memory graph but main "
                "memory is %d bytes" % (required, self.host.main_memory),
                required_bytes=required,
                available_bytes=self.host.main_memory)

    def _run(self, algorithm, graph, bsp_run, dataset_name):
        wall_start = _time.perf_counter()
        self.check_memory(graph)
        fraction = self.resolve_partition(graph, algorithm, dataset_name)
        gpu_cycles = GPU_ALGORITHM_CYCLES[algorithm]
        cpu_cycles = CPU_ALGORITHM_CYCLES[algorithm]
        elapsed = 0.0
        for trace in bsp_run.supersteps:
            # TOTEM's GPU side is topology-driven: it scans its whole
            # partition every superstep (no frontier compaction on the
            # GPU), which is why GTS beats it soundly on BFS-like
            # algorithms while staying comparable on PageRank.
            gpu_time = (fraction * graph.num_edges * gpu_cycles
                        / self.total_gpu_hz())
            cpu_time = ((1.0 - fraction) * trace.edges_processed * cpu_cycles
                        / self.host.compute_hz)
            # Boundary exchange: messages crossing the random edge cut.
            cut_fraction = 2.0 * fraction * (1.0 - fraction)
            boundary = trace.messages * cut_fraction
            comm = (boundary * self.boundary_message_bytes
                    / self.pcie.chunk_bandwidth
                    + boundary * self.boundary_message_cycles
                    / self.host.compute_hz)
            elapsed += (max(gpu_time, cpu_time) + comm
                        + self.superstep_seconds / self.time_scale)
        return self._result(algorithm, bsp_run, elapsed, dataset_name,
                            wall_start)


class _DeviceMemoryOnlyEngine(_GPUBaselineBase):
    """Shared logic for CuSha and MapGraph: graph must fit in GPU memory."""

    #: Per-edge footprint by algorithm family; traversal state is lighter
    #: than the per-edge value arrays iterative algorithms need.
    bytes_per_edge_traversal = 8
    bytes_per_edge_iterative = 12
    bytes_per_vertex = 16
    compute_factor = 1.0
    round_seconds = 1e-3

    def footprint(self, graph, algorithm):
        traversal = algorithm in ("BFS", "SSSP", "BC")
        per_edge = (self.bytes_per_edge_traversal if traversal
                    else self.bytes_per_edge_iterative)
        return (graph.num_edges * per_edge
                + graph.num_vertices * self.bytes_per_vertex)

    def check_memory(self, graph, algorithm):
        required = self.footprint(graph, algorithm)
        available = self.total_gpu_memory()
        if required > available:
            raise OutOfMemoryError(
                "%s needs %d bytes of GPU memory but only %d is available"
                % (self.name, required, available),
                required_bytes=required, available_bytes=available)

    def _run(self, algorithm, graph, bsp_run, dataset_name):
        wall_start = _time.perf_counter()
        self.check_memory(graph, algorithm)
        cycles = GPU_ALGORITHM_CYCLES[algorithm] * self.compute_factor
        elapsed = 0.0
        for trace in bsp_run.supersteps:
            elapsed += trace.edges_processed * cycles / self.total_gpu_hz()
            elapsed += self.round_seconds / self.time_scale
        return self._result(algorithm, bsp_run, elapsed, dataset_name,
                            wall_start)


class CuShaEngine(_DeviceMemoryOnlyEngine):
    """CuSha: G-Shards / Concatenated Windows, entirely in GPU memory.

    The shard layout fixes non-coalesced access but pays for window
    bookkeeping and multi-pass shard processing, which is why the paper
    measured it slower than both GTS and TOTEM even on Twitter.
    """

    # Derived from the paper's fit/OOM boundary on two 12 GB GPUs:
    # Twitter BFS fits (1.47e9 edges x 14 B = 20.6 GB < 24 GB) but
    # RMAT27 BFS does not (2.05e9 x 14 B = 28.7 GB), and PageRank's
    # per-edge value windows push even Twitter out (1.47e9 x 22 B).
    name = "CuSha"
    bytes_per_edge_traversal = 14   # G-Shards entry for BFS state
    bytes_per_edge_iterative = 22   # + per-edge value arrays for PR
    bytes_per_vertex = 16
    compute_factor = 3.0
    round_seconds = 2e-3


class MapGraphEngine(_DeviceMemoryOnlyEngine):
    """MapGraph: high-level GAS API on the GPU.

    Its Matrix-Market-derived storage "is less space-efficient than the
    G-Shard format" — it cannot even load Twitter, only tiny graphs like
    LiveJournal.
    """

    name = "MapGraph"
    bytes_per_edge_traversal = 24
    bytes_per_edge_iterative = 36
    bytes_per_vertex = 24
    compute_factor = 4.0
    round_seconds = 2e-3


#: The three engines in the paper's Figure 8 ordering.
ALL_GPU_ENGINES = (MapGraphEngine, CuShaEngine, TotemEngine)
