"""Reference algorithm implementations: the correctness ground truth.

Straightforward NumPy implementations over the CSR
:class:`~repro.graphgen.graph.Graph`, written for clarity rather than
speed.  The test suite compares every GTS kernel and every baseline
engine against these; conventions (damping, dangling-mass handling, BC
normalisation) deliberately match the kernels so comparisons are exact up
to floating-point tolerance.
"""

import numpy as np


def bfs_levels(graph, start_vertex=0):
    """Level of every vertex from ``start_vertex`` (-1 if unreachable)."""
    levels = np.full(graph.num_vertices, -1, dtype=np.int32)
    levels[start_vertex] = 0
    frontier = np.asarray([start_vertex], dtype=np.int64)
    level = 0
    while len(frontier):
        next_mask = np.zeros(graph.num_vertices, dtype=bool)
        for v in frontier:
            neighbours = graph.neighbors(v)
            fresh = neighbours[levels[neighbours] == -1]
            next_mask[fresh] = True
        discovered = np.flatnonzero(next_mask)
        levels[discovered] = level + 1
        frontier = discovered
        level += 1
    return levels


def pagerank(graph, iterations=10, damping=0.85):
    """Power-iteration PageRank; dangling mass leaks (kernel convention)."""
    num_vertices = graph.num_vertices
    degrees = graph.out_degrees().astype(np.float64)
    sources = np.repeat(np.arange(num_vertices, dtype=np.int64), degrees.astype(np.int64))
    ranks = np.full(num_vertices, 1.0 / num_vertices)
    base = (1.0 - damping) / num_vertices
    safe_degrees = np.maximum(degrees, 1.0)
    for _ in range(iterations):
        contrib = damping * ranks / safe_degrees
        contrib[degrees == 0] = 0.0
        next_ranks = np.full(num_vertices, base)
        np.add.at(next_ranks, graph.targets, contrib[sources])
        ranks = next_ranks
    return ranks


def sssp_distances(graph, start_vertex=0):
    """Bellman–Ford shortest-path distances (inf if unreachable)."""
    dist = np.full(graph.num_vertices, np.inf)
    dist[start_vertex] = 0.0
    weights = (graph.weights.astype(np.float64)
               if graph.weights is not None
               else np.ones(graph.num_edges))
    sources = np.repeat(np.arange(graph.num_vertices, dtype=np.int64),
                        graph.out_degrees())
    # Cast weights through float32 exactly as the page format stores them.
    weights = weights.astype(np.float32).astype(np.float64)
    for _ in range(graph.num_vertices):
        candidates = dist[sources] + weights
        new_dist = dist.copy()
        np.minimum.at(new_dist, graph.targets, candidates)
        if np.array_equal(
                new_dist, dist, equal_nan=True) or np.allclose(
                new_dist, dist, rtol=0, atol=0, equal_nan=True):
            break
        dist = new_dist
    return dist


def weakly_connected_components(graph):
    """Min-label per weakly-connected component.

    Label propagation over the symmetrised edge set to a fixpoint; the
    returned array maps every vertex to the smallest vertex ID in its
    component, matching the WCC kernel run on a symmetrised database.
    """
    sym = graph.symmetrised()
    labels = np.arange(sym.num_vertices, dtype=np.int64)
    sources = np.repeat(np.arange(sym.num_vertices, dtype=np.int64),
                        sym.out_degrees())
    while True:
        new_labels = labels.copy()
        np.minimum.at(new_labels, sym.targets, labels[sources])
        if np.array_equal(new_labels, labels):
            return labels
        labels = new_labels


def betweenness_centrality(graph, sources=(0,)):
    """Brandes betweenness restricted to ``sources`` (unnormalised)."""
    centrality = np.zeros(graph.num_vertices)
    for s in sources:
        levels = np.full(graph.num_vertices, -1, dtype=np.int64)
        sigma = np.zeros(graph.num_vertices)
        levels[s] = 0
        sigma[s] = 1.0
        frontier = [int(s)]
        order = [list(frontier)]
        level = 0
        while frontier:
            next_frontier = set()
            for v in frontier:
                for t in graph.neighbors(v):
                    t = int(t)
                    if levels[t] == -1:
                        levels[t] = level + 1
                        next_frontier.add(t)
                    if levels[t] == level + 1:
                        sigma[t] += sigma[v]
            frontier = sorted(next_frontier)
            if frontier:
                order.append(list(frontier))
            level += 1
        delta = np.zeros(graph.num_vertices)
        for frontier in reversed(order):
            for v in frontier:
                for t in graph.neighbors(v):
                    t = int(t)
                    if levels[t] == levels[v] + 1 and sigma[t] > 0:
                        delta[v] += sigma[v] / sigma[t] * (1.0 + delta[t])
        delta[s] = 0.0
        centrality += delta
    return centrality


def random_walk_with_restart(graph, query_vertex=0, iterations=10,
                             restart=0.15):
    """RWR proximity scores from ``query_vertex``."""
    num_vertices = graph.num_vertices
    degrees = graph.out_degrees().astype(np.float64)
    sources = np.repeat(np.arange(num_vertices, dtype=np.int64),
                        degrees.astype(np.int64))
    scores = np.zeros(num_vertices)
    scores[query_vertex] = 1.0
    safe_degrees = np.maximum(degrees, 1.0)
    for _ in range(iterations):
        contrib = (1.0 - restart) * scores / safe_degrees
        contrib[degrees == 0] = 0.0
        next_scores = np.zeros(num_vertices)
        next_scores[query_vertex] = restart
        np.add.at(next_scores, graph.targets, contrib[sources])
        scores = next_scores
    return scores


def degree_counts(graph):
    """(out_degree, in_degree) arrays."""
    return graph.out_degrees(), graph.in_degrees()
