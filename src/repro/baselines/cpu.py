"""CPU baseline engines: MTGL, Galois, Ligra, Ligra+ (Figure 7).

These shared-memory systems run on the workstation's two 8-core Xeons
(16 threads with Hyper-Threading off, 128 GB main memory).  Each engine
executes the real algorithm (the shared BSP trace) and prices it with a
per-edge CPU cost, an engine efficiency factor, and a per-round
synchronisation overhead.

Memory is the binding constraint the paper highlights: all four need a
*contiguous in-memory* representation — out-CSR plus (for direction-
optimised frontier engines) in-CSR — so "there are no results for
relatively large-scale graphs such as RMAT29-30 and YahooWeb, since the
CPU-based methods cannot load data into main memory".  That O.O.M. ladder
falls out of the footprint accounting below.

Note on Ligra+: the paper could not execute it on UK2007/RMAT27/RMAT28
because of segmentation faults in the released code.  We model the
system's *design* (compressed CSR → smaller footprint, near-Ligra speed)
and do not emulate the crashes; EXPERIMENTS.md records the difference.
"""

import dataclasses
import time as _time

from repro.baselines import bsp
from repro.core.result import RunResult
from repro.errors import OutOfMemoryError
from repro.units import GB

#: Effective CPU cycles per edge per algorithm for a well-tuned
#: shared-memory engine (Ligra-class).  These make the paper-scale
#: arithmetic land near Figure 7's measurements: e.g. PageRank x10 on
#: Twitter: 1.47e10 edge-iterations x 110 cycles / (16 cores x 3.1 GHz)
#: ≈ 33 s, against Ligra's measured 34.4 s.
CPU_ALGORITHM_CYCLES = {
    "BFS": 35.0,
    "PageRank": 110.0,
    "SSSP": 55.0,
    "CC": 60.0,
    "BC": 50.0,
}


@dataclasses.dataclass(frozen=True)
class CPUHostSpec:
    """The workstation's CPU side (Section 7.1)."""

    num_threads: int = 16
    core_hz: float = 3.1e9
    main_memory: int = 128 * GB
    name: str = "paper workstation CPUs"

    @property
    def compute_hz(self):
        return self.num_threads * self.core_hz

    def scaled(self, factor):
        return dataclasses.replace(
            self,
            main_memory=max(1, int(self.main_memory / factor)),
            name="%s (1/%d scale)" % (self.name, factor))


def paper_cpu_host():
    """The workstation CPU side exactly as Section 7.1 describes it."""
    return CPUHostSpec()


def scaled_cpu_host(factor=8192):
    """The CPU host with memory scaled down by ``factor`` (2^13 default)."""
    return CPUHostSpec().scaled(factor)


class CPUEngine:
    """Base class for the shared-memory CPU baselines."""

    name = "abstract"
    #: Engine efficiency relative to the Ligra-class cycle counts.
    compute_factor = 1.0
    #: In-memory bytes per edge.  Frontier engines with direction
    #: optimisation keep both out- and in-CSR (16 B with 8-byte indices).
    bytes_per_edge = 16
    bytes_per_vertex = 32
    #: Per-round synchronisation cost at paper scale, seconds.
    round_seconds = 2e-3

    def __init__(self, host=None, time_scale=1.0):
        self.host = host or paper_cpu_host()
        self.time_scale = time_scale

    def memory_footprint(self, graph):
        return (graph.num_edges * self.bytes_per_edge
                + graph.num_vertices * self.bytes_per_vertex)

    def check_memory(self, graph):
        required = self.memory_footprint(graph)
        if required > self.host.main_memory:
            raise OutOfMemoryError(
                "%s needs %d bytes but main memory is %d bytes"
                % (self.name, required, self.host.main_memory),
                required_bytes=required,
                available_bytes=self.host.main_memory)

    def _run(self, algorithm, graph, bsp_run, dataset_name):
        wall_start = _time.perf_counter()
        self.check_memory(graph)
        cycles = CPU_ALGORITHM_CYCLES[algorithm] * self.compute_factor
        elapsed = 0.0
        for trace in bsp_run.supersteps:
            elapsed += (trace.edges_processed * cycles
                        / self.host.compute_hz)
            elapsed += self.round_seconds / self.time_scale
        return RunResult(
            algorithm=algorithm,
            dataset=dataset_name or "graph",
            values=bsp_run.values,
            elapsed_seconds=elapsed,
            wall_seconds=_time.perf_counter() - wall_start,
            num_rounds=bsp_run.num_supersteps,
            rounds=[],
            edges_traversed=bsp_run.total_edges(),
            num_gpus=0,
            num_streams=self.host.num_threads,
            strategy="",
            engine=self.name,
        )

    def run_bfs(self, graph, start_vertex=0, dataset_name=None):
        return self._run("BFS", graph,
                         bsp.cached_trace(graph, 'BFS', start_vertex=start_vertex), dataset_name)

    def run_pagerank(self, graph, iterations=10, dataset_name=None):
        return self._run("PageRank", graph,
                         bsp.cached_trace(graph, 'PageRank', iterations=iterations), dataset_name)

    def run_sssp(self, graph, start_vertex=0, dataset_name=None):
        return self._run("SSSP", graph,
                         bsp.cached_trace(graph, 'SSSP', start_vertex=start_vertex), dataset_name)

    def run_cc(self, graph, dataset_name=None):
        return self._run("CC", graph, bsp.cached_trace(graph, 'CC'), dataset_name)

    def run_bc(self, graph, sources=(0,), dataset_name=None):
        return self._run("BC", graph,
                         bsp.cached_trace(graph, 'BC', sources=sources), dataset_name)


class MTGLEngine(CPUEngine):
    """MTGL on qthreads: the portable multithreaded graph library.

    Significantly slower than the modern engines (the paper keeps it "for
    reference") and memory-heavy due to its generic adjacency objects.
    """

    name = "MTGL"
    compute_factor = 6.0
    bytes_per_edge = 32
    bytes_per_vertex = 96
    round_seconds = 4e-3


class GaloisEngine(CPUEngine):
    """Galois: speculative amorphous data-parallelism runtime."""

    name = "Galois"
    compute_factor = 1.25
    bytes_per_edge = 16
    bytes_per_vertex = 56
    round_seconds = 1e-3


class LigraEngine(CPUEngine):
    """Ligra: frontier-based with dense/sparse direction switching."""

    name = "Ligra"
    compute_factor = 1.0
    bytes_per_edge = 16   # out-CSR + in-CSR for the dense direction
    bytes_per_vertex = 64  # parents/frontier/flag arrays
    round_seconds = 1e-3


class LigraPlusEngine(CPUEngine):
    """Ligra+: Ligra over compressed (byte-coded) adjacency arrays."""

    name = "Ligra+"
    compute_factor = 1.05  # decode overhead roughly offsets bandwidth wins
    bytes_per_edge = 12    # byte codes compress R-MAT's random IDs poorly
    bytes_per_vertex = 64
    round_seconds = 1e-3


#: The four engines in the paper's Figure 7 ordering.
ALL_CPU_ENGINES = (MTGLEngine, GaloisEngine, LigraEngine, LigraPlusEngine)
