"""Distributed baseline engines: GraphX, Giraph, PowerGraph, Naiad.

The paper's Figure 6 compares GTS on one workstation against these four
systems on a 31-node cluster (one master + 30 slaves, 16 cores and 64 GB
each, Infiniband QDR).  Here each system is modelled as a BSP cost model
applied to the *real* algorithm's superstep trace
(:mod:`repro.baselines.bsp`), so outputs are exact and elapsed times move
with the actual workload:

* per-superstep **compute**: edges processed x the algorithm's intensity
  (the same per-edge cycle counts the GTS kernels use) x an engine
  efficiency factor, spread over the cluster's cores;
* per-superstep **communication**: messages crossing the network, after
  each engine's own reduction (PowerGraph's vertex-cut turns per-edge
  messages into per-mirror aggregates), paying wire time plus
  per-message serialization CPU;
* per-superstep **barrier**: a fixed coordination cost (large for Spark's
  scheduler, tiny for Naiad's timely dataflow).

**Memory** is accounted from each system's real representation overheads
(bytes per edge/vertex, message buffering), and exceeding the cluster's
total memory raises :class:`~repro.errors.OutOfMemoryError` — this is
what produces the paper's ``O.O.M.`` entries and its scalability ladder
(Naiad dies first, PowerGraph lasts longest, nobody reaches RMAT32).

Engine constants are calibrated to the paper's qualitative results: the
per-system orderings, not the absolute seconds (see EXPERIMENTS.md).
"""

import dataclasses
import time as _time

from repro.baselines import bsp
from repro.baselines.cpu import CPU_ALGORITHM_CYCLES
from repro.core.result import RunResult
from repro.errors import OutOfMemoryError
from repro.units import GB, gbps_to_bytes_per_sec


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """The Section 7.1 cluster: 30 slaves on Infiniband QDR."""

    num_machines: int = 30
    cores_per_machine: int = 16
    memory_per_machine: int = 64 * GB
    core_hz: float = 2.6e9
    network_bandwidth: float = gbps_to_bytes_per_sec(40)
    name: str = "paper cluster"

    @property
    def total_cores(self):
        return self.num_machines * self.cores_per_machine

    @property
    def total_memory(self):
        return self.num_machines * self.memory_per_machine

    @property
    def compute_hz(self):
        """Aggregate cycles per second across the cluster."""
        return self.total_cores * self.core_hz

    def scaled(self, factor):
        """Capacity-scaled cluster matching the scaled datasets."""
        return dataclasses.replace(
            self,
            memory_per_machine=max(1, int(self.memory_per_machine / factor)),
            name="%s (1/%d scale)" % (self.name, factor))


def paper_cluster():
    """The cluster exactly as Section 7.1 describes it."""
    return ClusterSpec()


def scaled_cluster(factor=8192):
    """The cluster with memory scaled down by ``factor`` (2^13 default)."""
    return ClusterSpec().scaled(factor)


class DistributedEngine:
    """Base class: BSP cost model over a superstep trace.

    Subclasses override the class attributes; the paper-scale barrier
    constant is divided by ``time_scale`` so scaled experiments stay
    consistent with the scaled datasets.
    """

    name = "abstract"
    #: Engine (in)efficiency: multiplies the algorithm's per-edge cycles.
    compute_factor = 1.0
    #: Bytes of one message on the wire.
    message_bytes = 16
    #: CPU cycles to serialize/deserialize one message.
    message_cycles = 300.0
    #: Fixed coordination cost per superstep at paper scale, seconds.
    barrier_seconds = 0.5
    #: In-memory representation overheads.
    bytes_per_edge = 40
    bytes_per_vertex = 64
    #: Bytes of buffering per in-flight message.
    message_buffer_bytes = 8

    def __init__(self, cluster=None, time_scale=1.0):
        self.cluster = cluster or paper_cluster()
        self.time_scale = time_scale

    # ------------------------------------------------------------------
    # Hooks subclasses may refine
    # ------------------------------------------------------------------
    def wire_messages(self, messages, graph):
        """Messages actually crossing the network after engine-specific
        aggregation (identity for Pregel-style engines)."""
        return messages

    def extra_superstep_seconds(self, trace, graph):
        """Additional per-superstep cost (e.g. GraphX's RDD rebuild)."""
        return 0.0

    # ------------------------------------------------------------------
    def memory_footprint(self, graph, run):
        """Peak cluster memory this engine needs for ``graph``."""
        return (graph.num_edges * self.bytes_per_edge
                + graph.num_vertices * self.bytes_per_vertex
                + run.peak_messages() * self.message_buffer_bytes)

    def check_memory(self, graph, run):
        required = self.memory_footprint(graph, run)
        available = self.cluster.total_memory
        if required > available:
            raise OutOfMemoryError(
                "%s needs %d bytes on a cluster with %d bytes of memory"
                % (self.name, required, available),
                required_bytes=required, available_bytes=available)

    def superstep_seconds(self, trace, graph, cycles_per_edge):
        cluster = self.cluster
        compute = (trace.edges_processed * cycles_per_edge
                   * self.compute_factor / cluster.compute_hz)
        wire = self.wire_messages(trace.messages, graph)
        comm = (wire * self.message_bytes / cluster.network_bandwidth
                + wire * self.message_cycles / cluster.compute_hz)
        barrier = self.barrier_seconds / self.time_scale
        return compute + comm + barrier + self.extra_superstep_seconds(
            trace, graph)

    # ------------------------------------------------------------------
    def _run(self, algorithm, graph, bsp_run, dataset_name):
        wall_start = _time.perf_counter()
        self.check_memory(graph, bsp_run)
        cycles = CPU_ALGORITHM_CYCLES[algorithm]
        elapsed = sum(
            self.superstep_seconds(trace, graph, cycles)
            for trace in bsp_run.supersteps)
        return RunResult(
            algorithm=algorithm,
            dataset=dataset_name or "graph",
            values=bsp_run.values,
            elapsed_seconds=elapsed,
            wall_seconds=_time.perf_counter() - wall_start,
            num_rounds=bsp_run.num_supersteps,
            rounds=[],
            edges_traversed=bsp_run.total_edges(),
            num_gpus=0,
            num_streams=0,
            strategy="",
            engine=self.name,
        )

    # ------------------------------------------------------------------
    # Public algorithm entry points
    # ------------------------------------------------------------------
    def run_bfs(self, graph, start_vertex=0, dataset_name=None):
        return self._run("BFS", graph,
                         bsp.cached_trace(graph, 'BFS', start_vertex=start_vertex), dataset_name)

    def run_pagerank(self, graph, iterations=10, dataset_name=None):
        return self._run("PageRank", graph,
                         bsp.cached_trace(graph, 'PageRank', iterations=iterations), dataset_name)

    def run_sssp(self, graph, start_vertex=0, dataset_name=None):
        return self._run("SSSP", graph,
                         bsp.cached_trace(graph, 'SSSP', start_vertex=start_vertex), dataset_name)

    def run_cc(self, graph, dataset_name=None):
        return self._run("CC", graph, bsp.cached_trace(graph, 'CC'), dataset_name)

    def run_bc(self, graph, sources=(0,), dataset_name=None):
        return self._run("BC", graph,
                         bsp.cached_trace(graph, 'BC', sources=sources), dataset_name)


class GiraphEngine(DistributedEngine):
    """Apache Giraph: Pregel-style BSP on Hadoop (Java).

    Object-per-vertex/edge JVM representation and per-message object
    serialization make it the slowest of the four (the paper: "Giraph
    shows the worst performance").
    """

    name = "Giraph"
    compute_factor = 60.0
    message_bytes = 24
    message_cycles = 1500.0
    barrier_seconds = 1.0
    bytes_per_edge = 64
    bytes_per_vertex = 200
    message_buffer_bytes = 24


class GraphXEngine(DistributedEngine):
    """Apache Spark GraphX: graph-parallel on RDDs.

    Every superstep materialises new immutable RDDs and pays Spark's
    scheduler, so a large per-superstep overhead rides on moderate
    compute costs.
    """

    name = "GraphX"
    compute_factor = 25.0
    message_bytes = 20
    message_cycles = 600.0
    barrier_seconds = 3.0
    bytes_per_edge = 80
    bytes_per_vertex = 150
    message_buffer_bytes = 16

    def extra_superstep_seconds(self, trace, graph):
        # Immutable RDD rebuild: rewrite the touched vertex and edge data.
        rebuilt_bytes = (graph.num_vertices * 16
                         + trace.edges_processed * 8)
        memory_bandwidth = self.cluster.num_machines * 8 * GB
        return rebuilt_bytes / memory_bandwidth


class PowerGraphEngine(DistributedEngine):
    """PowerGraph (GraphLab v2.2): GAS with vertex-cuts (C++).

    The paper's best distributed system in both speed and scalability.
    The vertex-cut replication means gather results — not raw edge
    messages — cross the network: one aggregate per mirror.
    """

    name = "PowerGraph"
    compute_factor = 30.0
    message_bytes = 16
    message_cycles = 200.0
    barrier_seconds = 2.0
    bytes_per_edge = 46   # vertex-cut mirrors make PowerGraph memory-hungry
    bytes_per_vertex = 80
    message_buffer_bytes = 8

    #: Average mirrors per vertex under random vertex-cut on a power-law
    #: graph over ~30 machines (Gonzalez et al., OSDI 2012 report 5-15).
    replication_factor = 8.0

    def wire_messages(self, messages, graph):
        if graph.num_vertices == 0:
            return 0
        # Mirror aggregates replace per-edge messages; never more than
        # the raw message count (tiny frontiers send what they have).
        mirror_messages = int(
            graph.num_vertices * self.replication_factor
            * (messages / max(graph.num_edges, 1)))
        return min(messages, mirror_messages)


class NaiadEngine(DistributedEngine):
    """Naiad: timely dataflow (.NET via Mono in the paper's setup).

    Very low coordination overhead — the fastest of the four on graphs it
    can hold — but indexed operator state makes it the most
    memory-hungry, so it is the first to go O.O.M. ("Naiad shows the
    worst scalability").
    """

    name = "Naiad"
    compute_factor = 12.0
    message_bytes = 16
    message_cycles = 250.0
    barrier_seconds = 0.05
    bytes_per_edge = 230
    bytes_per_vertex = 220
    message_buffer_bytes = 32


#: The four engines in the paper's Figure 6 ordering.
ALL_DISTRIBUTED_ENGINES = (
    GraphXEngine, GiraphEngine, PowerGraphEngine, NaiadEngine)
