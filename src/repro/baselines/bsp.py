"""Instrumented BSP execution traces shared by every baseline engine.

The baselines (Giraph, GraphX, PowerGraph, Naiad, the CPU engines, TOTEM)
all execute the same algorithms level-synchronously; what differs is how
each system *pays* for a superstep — message serialization, RDD
materialisation, vertex-cut mirrors, partition boundaries.  This module
runs each algorithm once on the CSR graph and records, per superstep, the
workload quantities those cost models consume:

* ``active_vertices`` — vertices applying their kernel this superstep,
* ``edges_processed`` — edges scanned/relaxed,
* ``messages`` — values sent between vertices (what crosses the network
  in a distributed engine).

The returned values are exact algorithm outputs (identical to
:mod:`repro.baselines.reference`), so baseline engines stay
correctness-checkable while their elapsed times come from their cost
models applied to these traces.
"""

import dataclasses
import weakref
from typing import List

import numpy as np


@dataclasses.dataclass(frozen=True)
class SuperstepTrace:
    """Workload counters for one BSP superstep."""

    index: int
    active_vertices: int
    edges_processed: int
    messages: int


@dataclasses.dataclass
class BSPRun:
    """An algorithm's output values plus its superstep trace."""

    values: dict
    supersteps: List[SuperstepTrace]

    @property
    def num_supersteps(self):
        return len(self.supersteps)

    def total_edges(self):
        return sum(s.edges_processed for s in self.supersteps)

    def total_messages(self):
        return sum(s.messages for s in self.supersteps)

    def peak_messages(self):
        return max((s.messages for s in self.supersteps), default=0)


def _edge_sources(graph):
    return np.repeat(np.arange(graph.num_vertices, dtype=np.int64),
                     graph.out_degrees())


def trace_bfs(graph, start_vertex=0):
    """Level-synchronous BFS; messages are frontier out-edges."""
    levels = np.full(graph.num_vertices, -1, dtype=np.int32)
    levels[start_vertex] = 0
    frontier = np.zeros(graph.num_vertices, dtype=bool)
    frontier[start_vertex] = True
    sources = _edge_sources(graph)
    supersteps = []
    level = 0
    while frontier.any():
        active = int(frontier.sum())
        edge_mask = frontier[sources]
        edge_count = int(edge_mask.sum())
        targets = graph.targets[edge_mask]
        fresh = targets[levels[targets] == -1]
        levels[fresh] = level + 1
        next_frontier = np.zeros(graph.num_vertices, dtype=bool)
        next_frontier[fresh] = True
        supersteps.append(SuperstepTrace(
            index=level, active_vertices=active,
            edges_processed=edge_count, messages=edge_count))
        frontier = next_frontier
        level += 1
    return BSPRun(values={"level": levels}, supersteps=supersteps)


def trace_pagerank(graph, iterations=10, damping=0.85):
    """Power iteration; every edge carries one message per superstep."""
    num_vertices = graph.num_vertices
    degrees = graph.out_degrees().astype(np.float64)
    sources = _edge_sources(graph)
    ranks = np.full(num_vertices, 1.0 / num_vertices)
    base = (1.0 - damping) / num_vertices
    safe = np.maximum(degrees, 1.0)
    supersteps = []
    for i in range(iterations):
        contrib = damping * ranks / safe
        contrib[degrees == 0] = 0.0
        next_ranks = np.full(num_vertices, base)
        np.add.at(next_ranks, graph.targets, contrib[sources])
        ranks = next_ranks
        supersteps.append(SuperstepTrace(
            index=i, active_vertices=num_vertices,
            edges_processed=graph.num_edges, messages=graph.num_edges))
    return BSPRun(values={"rank": ranks}, supersteps=supersteps)


def trace_sssp(graph, start_vertex=0):
    """Level-synchronous Bellman–Ford; messages are relaxation offers."""
    dist = np.full(graph.num_vertices, np.inf)
    dist[start_vertex] = 0.0
    weights = (graph.weights.astype(np.float32).astype(np.float64)
               if graph.weights is not None
               else np.ones(graph.num_edges))
    sources = _edge_sources(graph)
    frontier = np.zeros(graph.num_vertices, dtype=bool)
    frontier[start_vertex] = True
    supersteps = []
    index = 0
    while frontier.any():
        active = int(frontier.sum())
        edge_mask = frontier[sources]
        edge_count = int(edge_mask.sum())
        candidates = dist[sources[edge_mask]] + weights[edge_mask]
        new_dist = dist.copy()
        np.minimum.at(new_dist, graph.targets[edge_mask], candidates)
        improved = new_dist < dist
        dist = new_dist
        supersteps.append(SuperstepTrace(
            index=index, active_vertices=active,
            edges_processed=edge_count, messages=edge_count))
        frontier = improved
        index += 1
    return BSPRun(values={"distance": dist.astype(np.float32)},
                  supersteps=supersteps)


def trace_wcc(graph):
    """Min-label propagation over the symmetrised graph to a fixpoint."""
    sym = graph.symmetrised()
    labels = np.arange(sym.num_vertices, dtype=np.int64)
    sources = _edge_sources(sym)
    supersteps = []
    index = 0
    while True:
        new_labels = labels.copy()
        np.minimum.at(new_labels, sym.targets, labels[sources])
        changed = int(np.count_nonzero(new_labels != labels))
        supersteps.append(SuperstepTrace(
            index=index, active_vertices=sym.num_vertices,
            edges_processed=sym.num_edges, messages=sym.num_edges))
        if changed == 0:
            break
        labels = new_labels
        index += 1
    return BSPRun(values={"component": labels}, supersteps=supersteps)


def trace_bc(graph, sources=(0,)):
    """Brandes forward + backward sweeps, each level one superstep."""
    centrality = np.zeros(graph.num_vertices)
    supersteps = []
    index = 0
    for s in sources:
        levels = np.full(graph.num_vertices, -1, dtype=np.int64)
        sigma = np.zeros(graph.num_vertices)
        levels[s] = 0
        sigma[s] = 1.0
        frontiers = [[int(s)]]
        level = 0
        while frontiers[-1]:
            frontier = frontiers[-1]
            edge_count = 0
            next_frontier = set()
            for v in frontier:
                neighbours = graph.neighbors(v)
                edge_count += len(neighbours)
                for t in neighbours:
                    t = int(t)
                    if levels[t] == -1:
                        levels[t] = level + 1
                        next_frontier.add(t)
                    if levels[t] == level + 1:
                        sigma[t] += sigma[v]
            supersteps.append(SuperstepTrace(
                index=index, active_vertices=len(frontier),
                edges_processed=edge_count, messages=edge_count))
            index += 1
            frontiers.append(sorted(next_frontier))
            level += 1
        delta = np.zeros(graph.num_vertices)
        for frontier in reversed(frontiers[:-1]):
            edge_count = 0
            for v in frontier:
                neighbours = graph.neighbors(v)
                edge_count += len(neighbours)
                for t in neighbours:
                    t = int(t)
                    if levels[t] == levels[v] + 1 and sigma[t] > 0:
                        delta[v] += sigma[v] / sigma[t] * (1.0 + delta[t])
            supersteps.append(SuperstepTrace(
                index=index, active_vertices=len(frontier),
                edges_processed=edge_count, messages=edge_count))
            index += 1
        delta[s] = 0.0
        centrality += delta
    return BSPRun(values={"centrality": centrality}, supersteps=supersteps)


#: Algorithm registry: name -> trace function.
TRACERS = {
    "BFS": trace_bfs,
    "PageRank": trace_pagerank,
    "SSSP": trace_sssp,
    "CC": trace_wcc,
    "BC": trace_bc,
}

_TRACE_CACHE = weakref.WeakKeyDictionary()


def cached_trace(graph, algorithm, **params):
    """Run (or reuse) an algorithm trace for ``graph``.

    Every baseline engine executes the same algorithm on the same graph;
    caching the trace per graph object means a Figure 6-style sweep runs
    the algorithm once and prices it five different ways.  The cache is
    weak-keyed so dropping the graph frees its traces.
    """
    per_graph = _TRACE_CACHE.setdefault(graph, {})
    key = (algorithm, tuple(sorted(params.items())))
    if key not in per_graph:
        per_graph[key] = TRACERS[algorithm](graph, **params)
    return per_graph[key]
