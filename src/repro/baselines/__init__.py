"""Baseline systems the paper compares GTS against (Section 7).

* :mod:`~repro.baselines.reference` — plain NumPy implementations of the
  algorithms, used as correctness ground truth by tests.
* :mod:`~repro.baselines.distributed` — GraphX, Giraph, PowerGraph and
  Naiad: BSP/GAS engines that execute the real algorithms and cost their
  supersteps on a simulated 31-node cluster (Figure 6).
* :mod:`~repro.baselines.cpu` — MTGL, Galois, Ligra and Ligra+:
  shared-memory frontier engines on the simulated workstation's CPUs
  (Figure 7).
* :mod:`~repro.baselines.gpu` — TOTEM (the hybrid CPU+GPU partitioned
  engine), CuSha and MapGraph (GPU-memory-only engines) (Figure 8).

All baselines run the real algorithm on the real (scaled) graph; only
*time* is simulated, from measured per-superstep work volumes fed through
each system's cost model — and *memory* is accounted from each system's
real data-structure footprints, which is what produces the paper's
``O.O.M.`` outcomes.
"""

from repro.baselines import reference
from repro.baselines.distributed import (
    DistributedEngine,
    GiraphEngine,
    GraphXEngine,
    PowerGraphEngine,
    NaiadEngine,
    ClusterSpec,
    paper_cluster,
)
from repro.baselines.cpu import (
    CPUEngine,
    MTGLEngine,
    GaloisEngine,
    LigraEngine,
    LigraPlusEngine,
    CPUHostSpec,
    paper_cpu_host,
)
from repro.baselines.gpu import (
    TotemEngine,
    CuShaEngine,
    MapGraphEngine,
)
from repro.baselines.outofcore import GraphChiEngine, XStreamEngine

__all__ = [
    "reference",
    "DistributedEngine",
    "GiraphEngine",
    "GraphXEngine",
    "PowerGraphEngine",
    "NaiadEngine",
    "ClusterSpec",
    "paper_cluster",
    "CPUEngine",
    "MTGLEngine",
    "GaloisEngine",
    "LigraEngine",
    "LigraPlusEngine",
    "CPUHostSpec",
    "paper_cpu_host",
    "TotemEngine",
    "CuShaEngine",
    "MapGraphEngine",
    "XStreamEngine",
    "GraphChiEngine",
]
