"""Write-ahead log for update batches (crash-durable mutations).

FlashGraph-style durability for the dynamic layer: every
:class:`~repro.dynamic.batch.UpdateBatch` is appended to
``<prefix>.wal`` *before* it mutates the in-memory delta state, so a
crash at any point loses at most the batch being written — never a
committed one.

On-disk layout::

    +----------+------------------------------------------+
    | header   | b"GTSWAL02" (8 bytes) | epoch (8 B LE)   |
    +----------+------------------------------------------+
    | record 0 | LEN (4 B LE) | CRC32 (4 B LE) | payload  |
    | record 1 | ...                                      |
    +----------+------------------------------------------+

``payload`` is the UTF-8 JSON of ``UpdateBatch.to_dict()`` and ``CRC32``
is :func:`zlib.crc32` over it.  Append is ``write + flush + fsync``.

``epoch`` pairs the log with the base database it was written against:
:func:`~repro.format.io.save_database` stamps the same number into the
base metadata, and compaction bumps it — the new base is saved with the
bumped epoch *before* the log is reset to match.  A log whose epoch is
*behind* its base is therefore a stale pre-compaction log (the crash hit
between the base save and the WAL reset) whose batches are already
folded into the base pages; :func:`~repro.dynamic.delta.open_dynamic_database`
discards it instead of replaying, because replay is **not** idempotent
(re-applied inserts duplicate parallel edges and re-applied deletes of
folded edges fail validation).

Recovery (:meth:`WriteAheadLog.replay`) reads records until the file
ends.  A record whose length field, payload, or checksum cannot be read
*at the tail* is a **torn tail** — the half-written victim of a crash —
and replay stops cleanly before it (optionally truncating the file back
to the last good record).  A bad checksum *followed by further intact
bytes* means real corruption, which raises
:class:`~repro.errors.WALError` instead of silently dropping data.
"""

import json
import os
import struct
import zlib

from repro.dynamic.batch import UpdateBatch
from repro.errors import WALError

#: File magic; bump the trailing digits when the layout changes.
WAL_MAGIC = b"GTSWAL02"

_FILE_HEADER = struct.Struct("<8sQ")  # magic, base epoch
_HEADER = struct.Struct("<II")        # LEN, CRC32

#: Size of the file header (magic + epoch) preceding the records.
WAL_HEADER_BYTES = _FILE_HEADER.size

#: Refuse absurd record lengths (a corrupt LEN field would otherwise
#: make replay attempt a multi-gigabyte read).
MAX_RECORD_BYTES = 64 * 1024 * 1024


class ReplayReport:
    """What :meth:`WriteAheadLog.replay` found in the log."""

    def __init__(self):
        self.batches = []
        self.good_bytes = WAL_HEADER_BYTES
        self.torn_bytes = 0
        self.truncated = False

    @property
    def num_batches(self):
        return len(self.batches)

    def __iter__(self):
        return iter(self.batches)


class WriteAheadLog:
    """Append-only, checksummed log of update batches.

    Parameters
    ----------
    path:
        The log file; created (with its magic header) if missing.
    fsync:
        Issue ``os.fsync`` after every append (durable by default;
        tests may disable it for speed).
    recorder:
        Optional :class:`~repro.obs.events.TraceRecorder`; appends,
        replays and truncations become instants on the ``host``/``wal``
        lane when one is attached.
    epoch:
        Epoch stamped into the header when *creating* a fresh log (the
        base database's ``wal_epoch``); ignored for an existing file,
        whose header already records the epoch it was written under.
    """

    def __init__(self, path, fsync=True, recorder=None, epoch=0):
        self.path = path
        self.fsync = fsync
        self.recorder = recorder
        self.records_appended = 0
        self.bytes_appended = 0
        self.replays = 0
        self.torn_tail_truncations = 0
        if not os.path.exists(path):
            self.epoch = epoch
            self._write_header(epoch)
        else:
            with open(path, "rb") as handle:
                header = handle.read(_FILE_HEADER.size)
            if (len(header) < _FILE_HEADER.size
                    or header[:len(WAL_MAGIC)] != WAL_MAGIC):
                raise WALError("%s: not a GTS WAL (bad magic %r)"
                               % (path, header[:len(WAL_MAGIC)]))
            self.epoch = _FILE_HEADER.unpack(header)[1]

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    @staticmethod
    def encode_record(batch):
        """Serialize one batch to its framed record bytes."""
        payload = json.dumps(batch.to_dict(),
                             separators=(",", ":")).encode("utf-8")
        return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload

    def append(self, batch):
        """Durably append ``batch``; returns its record index (LSN)."""
        record = self.encode_record(batch)
        with open(self.path, "ab") as handle:
            handle.write(record)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        lsn = self.records_appended
        self.records_appended += 1
        self.bytes_appended += len(record)
        self._instant("wal_append", lsn=lsn, bytes=len(record))
        return lsn

    # ------------------------------------------------------------------
    # Recovery path
    # ------------------------------------------------------------------
    def replay(self, repair=False):
        """Read back every committed batch; returns a :class:`ReplayReport`.

        A torn tail (crash mid-append) ends replay at the last good
        record; with ``repair=True`` the file is truncated back to that
        point so later appends continue from a clean tail.  Corruption
        *before* the tail raises :class:`~repro.errors.WALError`.
        """
        report = ReplayReport()
        with open(self.path, "rb") as handle:
            data = handle.read()
        if (len(data) < _FILE_HEADER.size
                or data[:len(WAL_MAGIC)] != WAL_MAGIC):
            raise WALError("%s: not a GTS WAL" % self.path)
        offset = _FILE_HEADER.size
        total = len(data)
        while offset < total:
            tail = self._decode_at(data, offset, report)
            if tail is None:
                break
            offset = tail
        report.torn_bytes = total - report.good_bytes
        if report.torn_bytes and repair:
            self._truncate_to(report.good_bytes)
            report.truncated = True
            self.torn_tail_truncations += 1
        self.replays += 1
        self._instant("wal_replay", batches=report.num_batches,
                      torn_bytes=report.torn_bytes)
        return report

    def _decode_at(self, data, offset, report):
        """Decode one record; returns the next offset or None on a torn
        tail.  Raises :class:`WALError` for mid-log corruption."""
        header = data[offset:offset + _HEADER.size]
        if len(header) < _HEADER.size:
            return None  # torn tail: partial header
        length, checksum = _HEADER.unpack(header)
        if length > MAX_RECORD_BYTES:
            if offset + _HEADER.size == len(data):
                return None  # garbage header right at the tail
            raise WALError(
                "%s: record at byte %d claims %d bytes"
                % (self.path, offset, length))
        start = offset + _HEADER.size
        payload = data[start:start + length]
        if len(payload) < length:
            return None  # torn tail: partial payload
        if zlib.crc32(payload) != checksum:
            if start + length == len(data):
                return None  # torn tail: payload half-flushed
            raise WALError(
                "%s: checksum mismatch at byte %d (mid-log corruption)"
                % (self.path, offset))
        try:
            batch = UpdateBatch.from_dict(json.loads(payload))
        except (ValueError, KeyError) as error:
            raise WALError(
                "%s: undecodable record at byte %d: %s"
                % (self.path, offset, error))
        report.batches.append(batch)
        report.good_bytes = start + length
        return start + length

    def _truncate_to(self, good_bytes):
        with open(self.path, "r+b") as handle:
            handle.truncate(good_bytes)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def reset(self, epoch=None):
        """Empty the log (called after compaction folds it into the base).

        ``epoch`` stamps the fresh header (compaction passes the new
        base's bumped epoch); ``None`` keeps the current one.  The new
        header goes to a temp file and atomically replaces the log, so a
        crash during reset leaves either the old or the new log — never
        a headerless file.
        """
        if epoch is not None:
            self.epoch = epoch
        self._write_header(self.epoch)
        self._instant("wal_reset", epoch=self.epoch)

    def _write_header(self, epoch):
        """Atomically (re)write the file as just a header: temp +
        ``os.replace``, so a crash never leaves a torn header."""
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(_FILE_HEADER.pack(WAL_MAGIC, epoch))
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def size_bytes(self):
        """Current on-disk size of the log."""
        return os.path.getsize(self.path)

    def _instant(self, name, **args):
        if self.recorder is not None:
            self.recorder.instant(name, "host", "wal",
                                  0.0, path=self.path, **args)

    def __repr__(self):
        return "WriteAheadLog(%r, %d appended)" % (
            self.path, self.records_appended)
