"""Delta pages: a mutable overlay over an immutable slotted-page base.

The GTS builder produces a read-only database; this module makes it
*behave* mutable without rewriting base pages.  A
:class:`DynamicGraphDatabase` wraps any base database (eager or
file-backed) and keeps three overlay structures, in the spirit of the
delta-update designs for GPU-resident topologies (Sha et al.):

* **delta adjacency** — per-vertex lists of inserted neighbours, merged
  into the vertex's page at serve time;
* **tombstones** — per-vertex sets of deleted neighbours, filtered out
  of base-page records at serve time;
* **extension pages** — fresh slotted pages appended after the base
  pages, holding the records of vertices added after the build (their
  VIDs stay consecutive per page, so RVT translation works unchanged).

``page(pid)`` transparently returns the *merged* page — base records
minus tombstones plus delta entries — so the engine and every kernel
see the up-to-date adjacency with zero code changes.  Merged pages are
cached per PID and invalidated when a batch touches their vertices (the
"cache invalidation of updated PIDs" the engine relies on; the GPU-side
:class:`~repro.core.cache.PageCache` needs no equivalent because the
engine builds fresh per-run caches, so no GPU-resident copy survives a
mutation).

Durability is layered in front: when a :class:`~repro.dynamic.wal.WriteAheadLog`
is attached, :meth:`DynamicGraphDatabase.apply` appends the batch to the
log (fsync) *before* mutating the overlays, and
:func:`open_dynamic_database` replays the log over a freshly loaded base
on startup — crash recovery is just "load + replay".  The WAL *epoch*
(see :mod:`repro.dynamic.wal`) guards the one ordering this cannot
cover: a crash mid-compaction, after the folded base reached disk but
before the WAL reset, leaves a log whose batches are already in the
base pages; :func:`open_dynamic_database` detects the stale epoch and
discards that log instead of double-applying it.

Snapshot isolation (MVCC)
-------------------------
Every committed batch produces a new ``topology_version``, and the
overlay state that *serves* each version is immutable once the next
batch commits: :meth:`DynamicGraphDatabase.apply` clones the mutable
overlay structures (copy-on-write) before touching them, freezes the
result as a :class:`_VersionState`, and registers it in a per-database
version chain.  Readers call :meth:`DynamicGraphDatabase.pin` to get a
:class:`Snapshot` — a read-only :class:`~repro.format.database.GraphDatabase`
view of one version — and run entire queries against it while writers
keep committing; ``page(pid, version=...)`` resolves a single page as
of any retained version.  Reclamation is epoch-style: a version is
dropped as soon as it is neither the head nor pinned by any live
snapshot (checked at every commit and every release), and retired
file-backed bases left behind by an in-place compaction are closed once
the last snapshot over them goes away.  Pins are in-memory only —
crash recovery never has to honour them, so the WAL epoch protocol
above is untouched.

Concurrency contract: writers are serialised by a per-database commit
lock; concurrent readers must go through :meth:`~DynamicGraphDatabase.pin`
(or an already-pinned :class:`Snapshot`) — reading the *head* object
while a batch is mid-apply is as unsynchronised as it always was.
"""

import dataclasses
import threading

import numpy as np

from repro.dynamic.batch import OP_DELETE, OP_INSERT, OP_VERTICES, UpdateBatch
from repro.dynamic.wal import WriteAheadLog
from repro.errors import FormatError, UpdateError, WALError
from repro.format.database import GraphDatabase, PageDirectoryEntry
from repro.format.io import FileBackedDatabase, load_database
from repro.format.page import LargePage, SmallPage
from repro.format.rvt import RecordVertexTable


@dataclasses.dataclass
class ApplyReport:
    """What one :meth:`DynamicGraphDatabase.apply` call did."""

    lsn: object              # WAL record index, or None when not logged
    affected_pids: np.ndarray
    inserted_edges: int = 0
    deleted_edges: int = 0
    added_vertices: int = 0
    topology_version: int = 0


class _VersionState:
    """The frozen overlay state serving one committed topology version.

    Freezing is O(1): the state holds *references* to the working
    structures of the head at commit time, and the next
    :meth:`DynamicGraphDatabase.apply` clones those structures before
    mutating them (copy-on-write), so a registered state never changes
    after the version it describes stops being the head.  The
    ``merged`` memo is the one deliberately shared mutable member:
    snapshots lazily park merged pages in it, which is safe because
    merged pages are immutable and deterministic — concurrent inserters
    can only write identical values.
    """

    __slots__ = ("version", "base", "base_pages", "base_vertices",
                 "extras", "dead", "merged", "lp_runs", "directory",
                 "num_pages", "rvt", "vertex_page", "out_degrees",
                 "num_vertices", "num_edges", "_server")

    def __init__(self, version, base, base_pages, base_vertices, extras,
                 dead, merged, lp_runs, directory, num_pages, rvt,
                 vertex_page, out_degrees, num_vertices, num_edges):
        self.version = version
        self.base = base
        self.base_pages = base_pages
        self.base_vertices = base_vertices
        self.extras = extras
        self.dead = dead
        self.merged = merged
        self.lp_runs = lp_runs
        self.directory = directory
        self.num_pages = num_pages
        self.rvt = rvt
        self.vertex_page = vertex_page
        self.out_degrees = out_degrees
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self._server = None

    def server(self, owner):
        """A memoised unpinned :class:`Snapshot` serving this state
        (the ``page(pid, version=...)`` path; pins get fresh handles)."""
        srv = self._server
        if srv is None:
            srv = Snapshot(owner, self, pinned=False)
            self._server = srv
        return srv


class DynamicGraphDatabase(GraphDatabase):
    """A :class:`~repro.format.database.GraphDatabase` that accepts updates.

    Parameters
    ----------
    base:
        The immutable base database (eager or
        :class:`~repro.format.io.FileBackedDatabase`).
    wal:
        Optional :class:`~repro.dynamic.wal.WriteAheadLog`; when present,
        every applied batch is durably logged before the overlay mutates.
    recorder:
        Optional :class:`~repro.obs.events.TraceRecorder` for
        ``delta_apply`` / ``compaction`` instants.
    """

    def __init__(self, base, wal=None, recorder=None):
        self.wal = wal
        self.recorder = recorder
        #: Epoch of the base pages (see :mod:`repro.dynamic.wal`); a
        #: durable compaction bumps it in lockstep with the WAL header.
        self.base_epoch = getattr(base, "wal_epoch", 0)
        # Cumulative counters (survive compaction; feed repro.obs).
        self.applied_batches = 0
        self.inserted_edges = 0
        self.deleted_edges = 0
        self.added_vertices = 0
        self.compactions = 0
        self.compaction_folded_bytes = 0
        # MVCC: the version chain, its pins, and reclamation accounting.
        # ``_commit_lock`` serialises writers (apply / compaction);
        # ``_version_lock`` guards the chain + pin map and is the only
        # lock readers ever take (at pin / release, never per page).
        self._commit_lock = threading.RLock()
        self._version_lock = threading.Lock()
        self._versions = {}      # topology_version -> _VersionState
        self._pins = {}          # topology_version -> live pin count
        self._retired_bases = []
        self._owns_base = False  # open_dynamic_database() sets True
        self.reclaimed_versions = 0
        self.snapshots_pinned_total = 0
        self._adopt_base(base)
        super().__init__(
            pages=[None] * base.num_pages,
            directory=list(base.directory),
            rvt=RecordVertexTable(base.rvt.start_vids.copy(),
                                  base.rvt.lp_ranges.copy()),
            config=base.config,
            num_vertices=base.num_vertices,
            num_edges=base.num_edges,
            out_degrees=base.out_degrees.copy(),
            vertex_page=base.vertex_page.copy(),
            name=base.name,
        )
        # Register version 0 so queries can pin before any batch lands.
        self._versions[0] = self._freeze_state()

    def _adopt_base(self, base):
        """(Re)point the overlay at a base database; resets delta state."""
        self._base = base
        self._base_pages = base.num_pages
        self._base_vertices = base.num_vertices
        self._extras = {}      # vid -> ([targets], [weights])
        self._dead = {}        # vid -> set of deleted base neighbours
        self._merged = {}      # pid -> merged page cache
        self._overlaid_pids = set()
        self._open_ext = None  # pid of the extension page being filled
        self.tombstoned_edges = 0
        self.delta_bytes = 0
        self._lp_runs = self._index_lp_runs(base)

    @staticmethod
    def _index_lp_runs(base):
        """vid -> sorted array of the vertex's large-page run PIDs."""
        runs = {}
        lp_ranges = base.rvt.lp_ranges
        for pid in base.large_page_ids():
            vid = int(base.rvt.start_vids[pid])
            runs.setdefault(vid, []).append(int(pid))
        return {vid: np.asarray(sorted(pids), dtype=np.int64)
                for vid, pids in runs.items()}

    # ------------------------------------------------------------------
    # Page serving (the engine's view)
    # ------------------------------------------------------------------
    def page(self, page_id, version=None):
        """The merged page — of the head, or as of a retained version.

        ``version`` selects a committed topology version still in the
        chain (the head, or any version a live snapshot pins); pages of
        reclaimed versions are gone and raise
        :class:`~repro.errors.UpdateError`.
        """
        if version is not None and version != self.topology_version:
            return self._version_view(version).page(page_id)
        return self._serve_page(page_id)

    def _serve_page(self, page_id):
        if page_id < 0 or page_id >= len(self.directory):
            raise FormatError("unknown page ID %d" % page_id)
        page = self._merged.get(page_id)
        if page is not None:
            return page
        if page_id >= self._base_pages:
            page = self._materialise(page_id)
            self._merged[page_id] = page
            return page
        # Untouched base pages are never memoised here: parking them in
        # this unbounded dict would shadow the base handle's bounded
        # page pool (and any attached cross-query shared cache), so only
        # overlay-merged pages stay resident on the wrapper.
        base_page = self._base.page(page_id)
        page = self._merge_base(page_id, base_page)
        if page is not base_page:
            self._merged[page_id] = page
        return page

    def is_small(self, page_id):
        return self.directory[page_id].kind == "SP"

    # The base pool's counters surface through the dynamic wrapper so the
    # engine's page-pool accounting keeps working over mutated databases.
    @property
    def pool_hits(self):
        return getattr(self._base, "pool_hits", 0)

    @property
    def pool_misses(self):
        return getattr(self._base, "pool_misses", 0)

    def _materialise(self, pid):
        if pid >= self._base_pages:
            return self._extension_page(pid)
        return self._merge_base(pid, self._base.page(pid))

    def _merge_base(self, pid, base_page):
        """The overlay-merged view of a base page (``base_page`` itself
        when none of its vertices carry deltas)."""
        if not self._extras and not self._dead:
            return base_page
        vids = (range(base_page.start_vid,
                      base_page.start_vid + base_page.num_records)
                if base_page.kind.value == "SP" else (base_page.vid,))
        if not any(v in self._extras or v in self._dead for v in vids):
            return base_page
        if base_page.kind.value == "SP":
            return self._merge_small(pid, base_page)
        return self._merge_large(pid, base_page)

    def _physical_ids(self, targets):
        """Physical ``(pid, slot)`` halves for logical neighbour IDs."""
        targets = np.asarray(targets, dtype=np.int64)
        pids = self.vertex_page[targets]
        slots = targets - self.rvt.start_vids[pids]
        return pids, slots

    def _merge_small(self, pid, base_page):
        weighted = base_page.adj_weights is not None
        indptr = [0]
        vid_parts, pid_parts, slot_parts, weight_parts = [], [], [], []
        for i in range(base_page.num_records):
            vid = base_page.start_vid + i
            lo = int(base_page.adj_indptr[i])
            hi = int(base_page.adj_indptr[i + 1])
            t = base_page.adj_vids[lo:hi]
            p = base_page.adj_pids[lo:hi]
            s = base_page.adj_slots[lo:hi]
            w = base_page.adj_weights[lo:hi] if weighted else None
            dead = self._dead.get(vid)
            if dead:
                keep = ~np.isin(t, np.fromiter(dead, dtype=np.int64))
                t, p, s = t[keep], p[keep], s[keep]
                if weighted:
                    w = w[keep]
            vid_parts.append(t)
            pid_parts.append(p)
            slot_parts.append(s)
            if weighted:
                weight_parts.append(w)
            extras = self._extras.get(vid)
            if extras and extras[0]:
                et = np.asarray(extras[0], dtype=np.int64)
                ep, es = self._physical_ids(et)
                vid_parts.append(et)
                pid_parts.append(ep)
                slot_parts.append(es)
                if weighted:
                    weight_parts.append(
                        np.asarray(extras[1], dtype=np.float32))
            indptr.append(sum(len(part) for part in vid_parts))
        merged_vids = np.concatenate(vid_parts) if vid_parts else \
            np.empty(0, dtype=np.int64)
        merged_pids = np.concatenate(pid_parts) if pid_parts else \
            np.empty(0, dtype=np.int64)
        merged_slots = np.concatenate(slot_parts) if slot_parts else \
            np.empty(0, dtype=np.int64)
        merged_weights = (np.concatenate(weight_parts)
                          if weighted and weight_parts else None)
        return SmallPage(pid, base_page.start_vid, indptr, merged_pids,
                         merged_slots, merged_vids, self.config,
                         adj_weights=merged_weights)

    def _merge_large(self, pid, base_page):
        vid = base_page.vid
        weighted = base_page.adj_weights is not None
        t = base_page.adj_vids
        p = base_page.adj_pids
        s = base_page.adj_slots
        w = base_page.adj_weights if weighted else None
        dead = self._dead.get(vid)
        if dead:
            keep = ~np.isin(t, np.fromiter(dead, dtype=np.int64))
            t, p, s = t[keep], p[keep], s[keep]
            if weighted:
                w = w[keep]
        run = self._lp_runs[vid]
        extras = self._extras.get(vid)
        if extras and extras[0] and pid == int(run[-1]):
            # New adjacency entries ride on the run's last chunk.
            et = np.asarray(extras[0], dtype=np.int64)
            ep, es = self._physical_ids(et)
            t = np.concatenate([t, et])
            p = np.concatenate([p, ep])
            s = np.concatenate([s, es])
            if weighted:
                w = np.concatenate(
                    [w, np.asarray(extras[1], dtype=np.float32)])
        return LargePage(pid, vid, base_page.chunk_index, p, s, t,
                         self.config, adj_weights=w,
                         total_degree=int(self.out_degrees[vid]))

    def _extension_page(self, pid):
        """Synthesize the slotted page of post-build vertices."""
        entry = self.directory[pid]
        weighted = self.config.weight_bytes > 0
        indptr = [0]
        vid_parts, pid_parts, slot_parts, weight_parts = [], [], [], []
        for i in range(entry.num_records):
            vid = entry.start_vid + i
            extras = self._extras.get(vid)
            if extras and extras[0]:
                et = np.asarray(extras[0], dtype=np.int64)
                ep, es = self._physical_ids(et)
                vid_parts.append(et)
                pid_parts.append(ep)
                slot_parts.append(es)
                if weighted:
                    weight_parts.append(
                        np.asarray(extras[1], dtype=np.float32))
            indptr.append(sum(len(part) for part in vid_parts))
        merged_vids = (np.concatenate(vid_parts) if vid_parts
                       else np.empty(0, dtype=np.int64))
        merged_pids = (np.concatenate(pid_parts) if pid_parts
                       else np.empty(0, dtype=np.int64))
        merged_slots = (np.concatenate(slot_parts) if slot_parts
                        else np.empty(0, dtype=np.int64))
        merged_weights = (np.concatenate(weight_parts)
                          if weighted and weight_parts else
                          (np.empty(0, dtype=np.float32) if weighted
                           else None))
        return SmallPage(pid, entry.start_vid, indptr, merged_pids,
                         merged_slots, merged_vids, self.config,
                         adj_weights=merged_weights)

    # ------------------------------------------------------------------
    # Base adjacency probes (validation and tombstone accounting)
    # ------------------------------------------------------------------
    def _base_targets(self, vid):
        """The vertex's neighbour VIDs in the immutable base pages."""
        if vid >= self._base_vertices:
            return np.empty(0, dtype=np.int64)
        run = self._lp_runs.get(vid)
        if run is not None:
            return np.concatenate(
                [self._base.page(int(pid)).adj_vids for pid in run])
        page = self._base.page(self._base.page_for_vertex(vid))
        slot = vid - page.start_vid
        lo = int(page.adj_indptr[slot])
        hi = int(page.adj_indptr[slot + 1])
        return page.adj_vids[lo:hi]

    def _committed_copies(self, src, dst):
        """Copies of ``src -> dst`` in the committed effective adjacency."""
        count = 0
        if src < self.num_vertices:
            dead = self._dead.get(src)
            if not (dead and dst in dead):
                count += int(np.count_nonzero(
                    self._base_targets(src) == dst))
            extras = self._extras.get(src)
            if extras:
                count += extras[0].count(dst)
        return count

    def effective_neighbors(self, vid):
        """The vertex's current neighbour VIDs (base − dead + delta)."""
        if vid < 0 or vid >= self.num_vertices:
            raise UpdateError("vertex %d outside database of %d vertices"
                              % (vid, self.num_vertices))
        targets = self._base_targets(vid)
        dead = self._dead.get(vid)
        if dead:
            targets = targets[~np.isin(
                targets, np.fromiter(dead, dtype=np.int64))]
        extras = self._extras.get(vid)
        if extras and extras[0]:
            targets = np.concatenate(
                [targets, np.asarray(extras[0], dtype=np.int64)])
        return targets

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply(self, batch, log=True):
        """Validate, durably log, then apply one batch atomically.

        Returns an :class:`ApplyReport`.  Validation happens *before*
        the WAL append, so the log only ever contains applicable
        batches (replay cannot fail on a committed record).

        Commits never block readers: pinned snapshots keep serving the
        overlay structures this call clones before mutating, and the
        new version becomes pinnable atomically with the version bump.
        """
        if not isinstance(batch, UpdateBatch):
            raise UpdateError("apply() expects an UpdateBatch")
        with self._commit_lock:
            self._check_batch(batch)
            lsn = None
            if log and self.wal is not None:
                lsn = self.wal.append(batch)
            self._unshare()
            report = self._apply_ops(batch)
            report.lsn = lsn
            self.applied_batches += 1
            with self._version_lock:
                self.topology_version += 1
                report.topology_version = self.topology_version
                self._versions[self.topology_version] = \
                    self._freeze_state()
                self._reclaim_locked()
        if self.recorder is not None:
            self.recorder.instant(
                "delta_apply", "host", "dynamic", 0.0,
                inserted=report.inserted_edges,
                deleted=report.deleted_edges,
                vertices=report.added_vertices,
                pages=len(report.affected_pids),
                version=report.topology_version)
        return report

    def _unshare(self):
        """Copy-on-write step: clone every overlay structure the frozen
        head state shares before this apply mutates it.  ``_lp_runs``,
        ``rvt`` and ``vertex_page`` are exempt — mutation only ever
        *rebinds* them (``np.concatenate``), never edits in place."""
        self._extras = {vid: (list(t), list(w))
                        for vid, (t, w) in self._extras.items()}
        self._dead = {vid: set(s) for vid, s in self._dead.items()}
        self._merged = dict(self._merged)
        self.directory = list(self.directory)
        self.out_degrees = self.out_degrees.copy()

    def _freeze_state(self):
        """Freeze the current head as an immutable :class:`_VersionState`
        (O(1): shares the working structures; see :meth:`_unshare`)."""
        return _VersionState(
            version=self.topology_version,
            base=self._base,
            base_pages=self._base_pages,
            base_vertices=self._base_vertices,
            extras=self._extras,
            dead=self._dead,
            merged=self._merged,
            lp_runs=self._lp_runs,
            directory=self.directory,
            num_pages=len(self.directory),
            rvt=self.rvt,
            vertex_page=self.vertex_page,
            out_degrees=self.out_degrees,
            num_vertices=self.num_vertices,
            num_edges=self.num_edges,
        )

    def _check_batch(self, batch):
        """Trial-run the batch without mutating state; raises on the
        first invalid op."""
        v_count = self.num_vertices
        copies = {}  # (src, dst) -> copies present at this point
        for op in batch.ops:
            if op[0] == OP_VERTICES:
                v_count += op[1]
                continue
            src, dst = op[1], op[2]
            if src >= v_count or dst >= v_count:
                raise UpdateError(
                    "edge (%d, %d) references a vertex outside the "
                    "database of %d vertices" % (src, dst, v_count))
            key = (src, dst)
            if key not in copies:
                copies[key] = self._committed_copies(src, dst)
            if op[0] == OP_INSERT:
                copies[key] += 1
            else:
                if copies[key] == 0:
                    raise UpdateError(
                        "cannot delete missing edge (%d, %d)"
                        % (src, dst))
                copies[key] = 0

    def _apply_ops(self, batch):
        affected = set()
        report = ApplyReport(lsn=None,
                             affected_pids=np.empty(0, dtype=np.int64))
        pages_added = False
        for op in batch.ops:
            if op[0] == OP_INSERT:
                self._do_insert(op[1], op[2], op[3], affected)
                report.inserted_edges += 1
            elif op[0] == OP_DELETE:
                report.deleted_edges += self._do_delete(
                    op[1], op[2], affected)
            else:
                pages_added |= self._do_add_vertices(op[1], affected)
                report.added_vertices += op[1]
        self.inserted_edges += report.inserted_edges
        self.deleted_edges += report.deleted_edges
        self.added_vertices += report.added_vertices
        if pages_added:
            self._refresh_page_index()
        self._refresh_pages(affected)
        report.affected_pids = np.asarray(sorted(affected), dtype=np.int64)
        return report

    def _pids_of_vertex(self, vid):
        run = self._lp_runs.get(vid)
        if run is not None:
            return [int(pid) for pid in run]
        return [int(self.vertex_page[vid])]

    def _do_insert(self, src, dst, weight, affected):
        extras = self._extras.setdefault(src, ([], []))
        extras[0].append(dst)
        extras[1].append(1.0 if weight is None else float(weight))
        self.out_degrees[src] += 1
        self.num_edges += 1
        self.delta_bytes += self.config.adjacency_entry_bytes
        affected.update(self._pids_of_vertex(src))

    def _do_delete(self, src, dst, affected):
        removed = 0
        extras = self._extras.get(src)
        if extras:
            removed += extras[0].count(dst)
            if removed:
                keep = [i for i, t in enumerate(extras[0]) if t != dst]
                extras[0][:] = [extras[0][i] for i in keep]
                extras[1][:] = [extras[1][i] for i in keep]
                self.delta_bytes -= removed * self.config.adjacency_entry_bytes
        dead = self._dead.get(src)
        if not (dead and dst in dead):
            in_base = int(np.count_nonzero(self._base_targets(src) == dst))
            if in_base:
                self._dead.setdefault(src, set()).add(dst)
                self.tombstoned_edges += 1
                self.delta_bytes += self.config.record_id_bytes
                removed += in_base
        if removed == 0:
            raise UpdateError(
                "cannot delete missing edge (%d, %d)" % (src, dst))
        self.out_degrees[src] -= removed
        self.num_edges -= removed
        affected.update(self._pids_of_vertex(src))
        return removed

    def _ext_capacity(self):
        """Records one extension page may hold (slot- and byte-bounded)."""
        by_bytes = self.config.page_size // self.config.vertex_bytes(0)
        return max(1, min(self.config.max_slot_number, by_bytes))

    def _do_add_vertices(self, count, affected):
        # Accumulate per-vertex state in lists and concatenate once at
        # the end — per-vertex np.append/RVT rebuilds would make large
        # vertex batches quadratic.
        pages_added = False
        capacity = self._ext_capacity()
        new_start_vids = []
        new_vertex_pages = []
        vid = self.num_vertices
        remaining = count
        while remaining:
            entry = (self.directory[self._open_ext]
                     if self._open_ext is not None else None)
            if entry is None or entry.num_records >= capacity:
                pid = len(self.directory)
                self.directory.append(PageDirectoryEntry(
                    page_id=pid, kind="SP", start_vid=vid,
                    num_records=0, num_edges=0, used_bytes=0))
                self.pages.append(None)
                new_start_vids.append(vid)
                self._open_ext = pid
                entry = self.directory[pid]
                pages_added = True
            take = min(remaining, capacity - entry.num_records)
            pid = self._open_ext
            self.directory[pid] = dataclasses.replace(
                entry, num_records=entry.num_records + take)
            new_vertex_pages.append(
                np.full(take, pid, dtype=np.int64))
            affected.add(pid)
            vid += take
            remaining -= take
        self.vertex_page = np.concatenate(
            [self.vertex_page] + new_vertex_pages)
        if new_start_vids:
            self.rvt = RecordVertexTable(
                np.concatenate([
                    self.rvt.start_vids,
                    np.asarray(new_start_vids,
                               dtype=self.rvt.start_vids.dtype)]),
                np.concatenate([
                    self.rvt.lp_ranges,
                    np.full(len(new_start_vids), -1,
                            dtype=self.rvt.lp_ranges.dtype)]))
        self.num_vertices += count
        self.delta_bytes += count * self.config.slot_entry_bytes
        self.out_degrees = np.concatenate(
            [self.out_degrees, np.zeros(count, dtype=np.int64)])
        return pages_added

    def _refresh_pages(self, pids):
        """Re-materialise updated pages and sync their directory rows —
        the per-PID merged-page cache invalidation the engine sees."""
        for pid in pids:
            self._merged.pop(pid, None)
            page = self._materialise(pid)
            self._merged[pid] = page
            self.directory[pid] = dataclasses.replace(
                self.directory[pid], num_edges=page.num_edges,
                used_bytes=page.used_bytes())
            if page is not self._base_page_or_none(pid):
                self._overlaid_pids.add(pid)

    def _base_page_or_none(self, pid):
        if pid < self._base_pages:
            return self._base.page(pid)
        return None

    def _refresh_page_index(self):
        self._small_page_ids = np.asarray(
            [e.page_id for e in self.directory if e.kind == "SP"],
            dtype=np.int64)
        self._large_page_ids = np.asarray(
            [e.page_id for e in self.directory if e.kind == "LP"],
            dtype=np.int64)

    # ------------------------------------------------------------------
    # MVCC: pinning, version resolution, reclamation
    # ------------------------------------------------------------------
    def pin(self):
        """Pin the current head and return a read-only :class:`Snapshot`.

        The pinned version is retained — immune to reclamation and to
        compaction folding — until :meth:`Snapshot.release`.  Pinning
        is wait-free with respect to writers: it takes only the version
        lock, which commits hold for a dict insert, never for I/O.
        """
        with self._version_lock:
            state = self._versions[self.topology_version]
            self._pins[state.version] = self._pins.get(state.version,
                                                       0) + 1
            self.snapshots_pinned_total += 1
            pins = self._pins[state.version]
        if self.recorder is not None:
            self.recorder.instant("snapshot_pin", "host", "snapshot",
                                  0.0, version=state.version, pins=pins)
        return Snapshot(self, state, pinned=True)

    def _release_pin(self, version):
        """Drop one pin on ``version`` and reclaim whatever that frees."""
        with self._version_lock:
            count = self._pins.get(version, 0) - 1
            if count > 0:
                self._pins[version] = count
            else:
                self._pins.pop(version, None)
            self._reclaim_locked()
        if self.recorder is not None:
            self.recorder.instant("snapshot_release", "host", "snapshot",
                                  0.0, version=version,
                                  pins=max(0, count))

    def _version_view(self, version):
        """The memoised read-only view serving a retained ``version``."""
        with self._version_lock:
            state = self._versions.get(version)
            retained = sorted(self._versions)
        if state is None:
            raise UpdateError(
                "topology version %d is not retained (head %d, "
                "retained: %s)" % (version, self.topology_version,
                                   retained))
        return state.server(self)

    def snapshot(self, version=None):
        """An *unpinned* read-only view of a retained version (the head
        by default).  Unlike :meth:`pin` it does not protect the
        version from reclamation — use it for one-off reads."""
        if version is None:
            version = self.topology_version
        return self._version_view(version)

    def pinned_versions(self):
        """Sorted topology versions live snapshots currently pin."""
        with self._version_lock:
            return sorted(self._pins)

    def live_versions(self):
        """Pinned versions plus the head — everything reclamation must
        keep (the :class:`~repro.core.parallel.WorkerPoolRegistry`
        eviction hook)."""
        with self._version_lock:
            live = set(self._pins)
            live.add(self.topology_version)
            return sorted(live)

    def _reclaim_locked(self):
        """Drop versions that are neither head nor pinned (epoch-based
        reclamation); prune their scatter entries and retire bases no
        retained state references.  Caller holds ``_version_lock``."""
        head = self.topology_version
        dead = [v for v in self._versions
                if v != head and v not in self._pins]
        if not dead:
            return 0
        for v in dead:
            del self._versions[v]
        self.reclaimed_versions += len(dead)
        for v in dead:
            self.drop_scatter_version(v)
        self._retire_bases_locked()
        if self.recorder is not None:
            self.recorder.instant(
                "snapshot_reclaim", "host", "snapshot", 0.0,
                versions=len(dead), oldest=min(dead),
                chain=len(self._versions))
        return len(dead)

    def _retire_bases_locked(self):
        """Close retired (pre-compaction) bases once no retained state
        serves from them, and evict their shared-cache entries."""
        if not self._retired_bases:
            return
        live = {id(self._base)}
        live.update(id(s.base) for s in self._versions.values())
        still_referenced = []
        for base in self._retired_bases:
            if id(base) in live:
                still_referenced.append(base)
                continue
            shared = getattr(base, "shared_cache", None)
            if shared is not None and hasattr(shared, "drop_version"):
                shared.drop_version(getattr(base, "topology_version", 0))
            if self._owns_base:
                close = getattr(base, "close", None)
                if close is not None:
                    close()
        self._retired_bases = still_referenced

    def mvcc_stats(self):
        """Snapshot-isolation health counters (service `/stats`,
        ``collect_dynamic_metrics``)."""
        with self._version_lock:
            pins = dict(self._pins)
            chain = len(self._versions)
            head = self.topology_version
        oldest = min(pins) if pins else None
        return {
            "pinned_snapshots": sum(pins.values()),
            "pinned_versions": len(pins),
            "oldest_pinned_version": oldest,
            "oldest_pinned_lag": (head - oldest
                                  if oldest is not None else 0),
            "version_chain_length": chain,
            "reclaimed_versions": self.reclaimed_versions,
            "snapshots_pinned_total": self.snapshots_pinned_total,
        }

    # ------------------------------------------------------------------
    # Delta accounting (compaction trigger + repro.obs)
    # ------------------------------------------------------------------
    @property
    def num_delta_pages(self):
        """Pages whose served form differs from the base (overflow +
        extension pages) — the dynamic analogue of #SP/#LP."""
        return len(self._overlaid_pids)

    @property
    def num_extension_pages(self):
        return len(self.directory) - self._base_pages

    def dynamic_stats(self):
        """Counter snapshot consumed by ``repro.obs`` and the CLI."""
        stats = self.mvcc_stats()
        stats.update({
            "topology_version": self.topology_version,
            "base_epoch": self.base_epoch,
            "applied_batches": self.applied_batches,
            "inserted_edges": self.inserted_edges,
            "deleted_edges": self.deleted_edges,
            "added_vertices": self.added_vertices,
            "tombstoned_edges": self.tombstoned_edges,
            "delta_bytes": self.delta_bytes,
            "delta_pages": self.num_delta_pages,
            "extension_pages": self.num_extension_pages,
            "compactions": self.compactions,
            "compaction_folded_bytes": self.compaction_folded_bytes,
            "wal_records_appended": (self.wal.records_appended
                                     if self.wal else 0),
            "wal_bytes_appended": (self.wal.bytes_appended
                                   if self.wal else 0),
        })
        return stats

    # ------------------------------------------------------------------
    # Base swap (compaction commits through here)
    # ------------------------------------------------------------------
    def swap_base(self, new_base, folded_bytes=0, new_epoch=None):
        """Replace the base database after compaction folded the deltas.

        Resets every overlay structure and bumps the topology version so
        engines re-index their page runs.  ``new_epoch`` is set only
        when the folded base was durably saved under the WAL's prefix:
        then the log is reset (its batches are in the on-disk pages) and
        stamped with the new epoch.  Without it the WAL is left intact —
        the on-disk base still predates the deltas, so the log's records
        remain the only durable copy of the folded batches.

        MVCC-safe: versions pinned by live snapshots keep serving from
        the *old* base (a file-backed old base holds its file
        descriptor, so even an in-place durable compaction cannot
        corrupt them — the replaced inode lives until close).  The old
        base is retired and closed only when its last retained version
        is reclaimed.
        """
        old_base = self._base
        new_head = self.topology_version + 1
        # The folded base gets the new head as its cache-version tag so
        # (page_id, version) keys in a shared cache and scatter cache
        # can never collide with entries of the base it replaces.
        if getattr(new_base, "topology_version", 0) != new_head:
            new_base.topology_version = new_head
        shared = getattr(old_base, "shared_cache", None)
        if shared is not None and hasattr(new_base, "attach_shared_cache"):
            new_base.attach_shared_cache(shared)
        self._adopt_base(new_base)
        self.pages = [None] * new_base.num_pages
        self.directory = list(new_base.directory)
        self.rvt = RecordVertexTable(new_base.rvt.start_vids.copy(),
                                     new_base.rvt.lp_ranges.copy())
        self.num_vertices = new_base.num_vertices
        self.num_edges = new_base.num_edges
        self.out_degrees = new_base.out_degrees.copy()
        self.vertex_page = new_base.vertex_page.copy()
        self._refresh_page_index()
        self.compactions += 1
        self.compaction_folded_bytes += folded_bytes
        with self._version_lock:
            self.topology_version = new_head
            self._versions[new_head] = self._freeze_state()
            if old_base is not new_base:
                self._retired_bases.append(old_base)
            self._reclaim_locked()
        if new_epoch is not None:
            self.base_epoch = new_epoch
            if self.wal is not None:
                self.wal.reset(epoch=new_epoch)
        if self.recorder is not None:
            self.recorder.instant("compaction", "host", "dynamic", 0.0,
                                  folded_bytes=folded_bytes,
                                  pages=new_base.num_pages,
                                  epoch=self.base_epoch)

    # ------------------------------------------------------------------
    # Validation (overrides the base's pages-list walk)
    # ------------------------------------------------------------------
    def validate(self):
        """Check overlay invariants through the serving path."""
        covered = 0
        total_edges = 0
        for entry in self.directory:
            page = self.page(entry.page_id)
            if entry.kind == "SP":
                covered += entry.num_records
            elif page.chunk_index == 0:
                covered += 1
            if entry.num_edges != page.num_edges:
                raise FormatError(
                    "directory says %d edges in page %d, merged page "
                    "holds %d" % (entry.num_edges, entry.page_id,
                                  page.num_edges))
            total_edges += page.num_edges
            translated = self.rvt.translate(page.adj_pids, page.adj_slots)
            if not np.array_equal(translated, page.adj_vids):
                raise FormatError(
                    "RVT translation mismatch in page %d" % entry.page_id)
        if covered != self.num_vertices:
            raise FormatError("pages cover %d vertices, expected %d"
                              % (covered, self.num_vertices))
        if total_edges != self.num_edges:
            raise FormatError("pages hold %d edges, expected %d"
                              % (total_edges, self.num_edges))
        if int(self.out_degrees.sum()) != self.num_edges:
            raise FormatError("degree sum disagrees with edge count")
        return True

    def __repr__(self):
        return ("DynamicGraphDatabase(%s: V=%d, E=%d, +%d -%d, "
                "delta=%dB over %d page(s))"
                % (self.name, self.num_vertices, self.num_edges,
                   self.inserted_edges, self.deleted_edges,
                   self.delta_bytes, self.num_delta_pages))


class Snapshot(GraphDatabase):
    """A read-only view of one retained topology version.

    Returned by :meth:`DynamicGraphDatabase.pin` (a *pinned* handle
    that must be :meth:`release`-d, also usable as a context manager)
    and by :meth:`DynamicGraphDatabase.snapshot` (unpinned, for one-off
    reads).  It is a full :class:`~repro.format.database.GraphDatabase`:
    the engine runs whole queries against it exactly as against the
    head, and its ``topology_version`` is the pinned version, so every
    version-keyed cache in the stack (shared page cache, round-plan
    cache, scatter indexes, worker pools) serves versions side by side.

    The view holds *references* into the owner's frozen
    :class:`_VersionState` — construction copies nothing but a
    page-count-sized placeholder list — and shares the owner's scatter
    cache (entries are ``(page_id, version)``-keyed).
    """

    # Page merging is identical to the head's — same overlay attribute
    # names, frozen contents — so the serving methods are shared with
    # DynamicGraphDatabase rather than duplicated.
    _serve_page = DynamicGraphDatabase._serve_page
    _materialise = DynamicGraphDatabase._materialise
    _merge_base = DynamicGraphDatabase._merge_base
    _merge_small = DynamicGraphDatabase._merge_small
    _merge_large = DynamicGraphDatabase._merge_large
    _extension_page = DynamicGraphDatabase._extension_page
    _physical_ids = DynamicGraphDatabase._physical_ids
    _base_targets = DynamicGraphDatabase._base_targets
    effective_neighbors = DynamicGraphDatabase.effective_neighbors
    is_small = DynamicGraphDatabase.is_small
    validate = DynamicGraphDatabase.validate
    pool_hits = DynamicGraphDatabase.pool_hits
    pool_misses = DynamicGraphDatabase.pool_misses

    def __init__(self, owner, state, pinned=True):
        self._owner = owner
        self._state = state
        self._pinned = pinned
        self._released = False
        self._base = state.base
        self._base_pages = state.base_pages
        self._base_vertices = state.base_vertices
        self._extras = state.extras
        self._dead = state.dead
        self._merged = state.merged
        self._lp_runs = state.lp_runs
        super().__init__(
            pages=[None] * state.num_pages,
            directory=state.directory,
            rvt=state.rvt,
            config=owner.config,
            num_vertices=state.num_vertices,
            num_edges=state.num_edges,
            out_degrees=state.out_degrees,
            vertex_page=state.vertex_page,
            name=owner.name,
        )
        self.topology_version = state.version
        # One scatter cache per database, shared across versions.
        self._scatter_cache = owner._scatter_cache
        self._scatter_lock = owner._scatter_lock

    @property
    def version(self):
        """The topology version this snapshot serves."""
        return self._state.version

    @property
    def released(self):
        return self._released

    def page(self, page_id, version=None):
        if version is not None and version != self.topology_version:
            return self._owner.page(page_id, version=version)
        return self._serve_page(page_id)

    def pinned_versions(self):
        return self._owner.pinned_versions()

    def live_versions(self):
        return self._owner.live_versions()

    def release(self):
        """Drop this snapshot's pin (idempotent; no-op when unpinned).

        After the last pin on a version goes away the owner may reclaim
        it — keep no references to pages served from a released
        snapshot's version if you need them to stay consistent."""
        if self._pinned and not self._released:
            self._released = True
            self._owner._release_pin(self._state.version)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def __repr__(self):
        return ("Snapshot(%s@v%d: V=%d, E=%d%s)"
                % (self.name, self._state.version, self.num_vertices,
                   self.num_edges,
                   ", pinned" if self._pinned and not self._released
                   else ""))


def open_dynamic_database(prefix, pool_pages=None, fsync=True,
                          recorder=None, store_mode="copy"):
    """Open ``<prefix>``'s base + WAL and replay committed batches.

    This is the crash-recovery entry point: the base pages come from
    ``<prefix>.meta.json`` / ``<prefix>.pages`` (lazily when
    ``pool_pages`` is given), the log from ``<prefix>.wal``, and every
    committed batch is re-applied in order — a torn tail from a crash
    mid-append is detected via checksums and truncated away.  A log
    whose epoch is *behind* the base's is a pre-compaction leftover (the
    crash hit after the folded base was saved but before the WAL reset);
    its batches are already in the base pages, so it is discarded
    instead of replayed.  A log *ahead* of its base cannot arise from
    any crash ordering and raises :class:`~repro.errors.WALError`.

    ``store_mode="mmap"`` (with ``pool_pages``) serves base pages
    zero-copy from the mapped pages file; WAL deltas overlay on top as
    usual, since the overlay rebuilds its own page objects.
    """
    if pool_pages is not None:
        base = FileBackedDatabase(prefix, pool_pages=pool_pages,
                                  mode=store_mode)
    else:
        base = load_database(prefix)
    base_epoch = getattr(base, "wal_epoch", 0)
    wal = WriteAheadLog(prefix + ".wal", fsync=fsync, recorder=recorder,
                        epoch=base_epoch)
    db = DynamicGraphDatabase(base, wal=wal, recorder=recorder)
    db._owns_base = True
    # Recovery outcomes go through the structured logger (silent until
    # repro.obs.telemetry.configure_logging installs a sink): library
    # code must never write ad-hoc lines to stderr, but a stale-log
    # discard or a torn-tail repair is exactly what an operator wants
    # in the log pipeline after an unclean shutdown.
    from repro.obs.telemetry import get_logger
    log = get_logger("repro.dynamic")
    if wal.epoch < base_epoch:
        # Pre-compaction leftover; its batches are already folded into
        # the base pages.
        log.log("wal_stale_discarded", prefix=prefix,
                log_epoch=wal.epoch, base_epoch=base_epoch)
        wal.reset(epoch=base_epoch)
    elif wal.epoch > base_epoch:
        raise WALError(
            "%s.wal: log epoch %d is ahead of base epoch %d — these "
            "base files do not match this log (compacted to a "
            "different prefix?)" % (prefix, wal.epoch, base_epoch))
    else:
        report = wal.replay(repair=True)
        if report.truncated:
            log.log("wal_torn_tail_repaired", prefix=prefix,
                    torn_bytes=report.torn_bytes,
                    batches_recovered=report.num_batches)
        for batch in report:
            db.apply(batch, log=False)
    return db
