"""Incremental recomputation: restream only the pages a batch dirtied.

After a mutation batch, rerunning BFS or WCC from scratch restreams the
whole topology even though most results cannot have changed.  For
*insert-only* batches both algorithms are monotone: a new edge can only
lower a BFS level or a WCC label downstream of its source.  So instead
of restarting, we seed the engine's existing traversal machinery — the
``nextPIDSet`` path that already powers level-synchronous BFS — with the
pages of the inserted edges' sources, carry the previous run's result
vector as the starting state, and relax to a fixpoint.  Only pages
reachable from the batch restream; a batch touching <10 % of vertices
streams strictly fewer pages than a full rerun (the bench asserts this).

Deletions are not monotone (removing an edge can *raise* levels
downstream, which relaxation cannot express), so batches containing
deletes are rejected with :class:`~repro.errors.UpdateError` — callers
fall back to a full rerun, matching the classification in "Accelerating
Dynamic Graph Analytics on GPUs" (Sha et al.).

Both kernels speak the ordinary :class:`~repro.core.kernels.base.Kernel`
protocol, so they run unmodified on :class:`~repro.core.engine.GTSEngine`
with all its caching, scheduling and observability intact.
"""

import numpy as np

from repro.core.kernels.base import Kernel, PageWork, RoundPlan, edge_expand
from repro.core.kernels.bfs import UNVISITED
from repro.errors import UpdateError
from repro.format.page import PageKind


def insert_seeds(batches):
    """Sources of all inserted edges across ``batches`` (deduplicated).

    Raises :class:`UpdateError` when any batch contains deletions —
    incremental relaxation only supports monotone (insert-only) batches.
    """
    seeds = []
    for batch in batches:
        if batch.has_deletes:
            raise UpdateError(
                "incremental recomputation requires insert-only batches; "
                "rerun from scratch after deletions")
        seeds.extend(op[1] for op in batch.ops if op[0] == "+")
    return np.unique(np.asarray(seeds, dtype=np.int64))


def _record_vids(page, sources_idx):
    """Logical VIDs of per-edge source records."""
    if page.kind is PageKind.SMALL:
        return page.start_vid + sources_idx
    return np.full(len(sources_idx), page.vid, dtype=np.int64)


class _RelaxState:
    """Shared state for monotone relaxation from a seed set."""

    def __init__(self, db, values, seeds):
        self.db = db
        self.values = values
        self.pending = np.zeros(db.num_vertices, dtype=bool)
        self.next_pending = np.zeros(db.num_vertices, dtype=bool)
        self.round_index = 0
        live = seeds[seeds < db.num_vertices]
        self.pending[live] = True
        if len(live):
            self.frontier_pids = np.unique(db.vertex_page[live])
        else:
            self.frontier_pids = np.empty(0, dtype=np.int64)


class _IncrementalRelaxKernel(Kernel):
    """Monotone min-relaxation seeded from a batch's insert sources.

    Subclasses define how a source's value propagates along an edge
    (``_candidates``) and which sources can relax at all
    (``_can_relax``).
    """

    traversal = True

    def __init__(self, prior, seeds):
        self.prior = np.asarray(prior)
        self.seeds = np.asarray(seeds, dtype=np.int64)

    # -- subclass hooks ------------------------------------------------
    def _initial_values(self, db):
        raise NotImplementedError

    def _candidates(self, source_values):
        raise NotImplementedError

    def _can_relax(self, values):
        return np.ones(len(values), dtype=bool)

    # -- kernel protocol ----------------------------------------------
    def init_state(self, db):
        return _RelaxState(db, self._initial_values(db), self.seeds)

    def next_round(self, state):
        if len(state.frontier_pids) == 0:
            return None
        return RoundPlan(pids=state.frontier_pids,
                         description="relax round %d" % state.round_index)

    def finish_round(self, state, merged_next_pids):
        state.round_index += 1
        state.pending, state.next_pending = (
            state.next_pending, state.pending)
        state.next_pending[:] = False
        if merged_next_pids is None:
            merged_next_pids = np.empty(0, dtype=np.int64)
        state.frontier_pids = merged_next_pids

    def _relax(self, page, state, ctx, active_mask):
        targets, target_pids, _, sources_idx = edge_expand(
            page, active_mask)
        src_vids = _record_vids(page, sources_idx)
        candidates = self._candidates(state.values[src_vids])
        improved = candidates < state.values[targets]
        hit_targets = targets[improved]
        np.minimum.at(state.values, hit_targets, candidates[improved])
        state.next_pending[hit_targets] = True
        next_pids = np.unique(target_pids[improved])
        return PageWork(
            num_records=page.num_records,
            active_vertices=int(active_mask.sum()),
            edges_traversed=int(len(targets)),
            lane_steps=ctx.lane_steps(page.degrees(), active_mask),
            next_pids=next_pids,
        )

    def process_sp(self, page, state, ctx):
        active = (state.pending[page.vids()]
                  & self._can_relax(state.values[page.vids()]))
        return self._relax(page, state, ctx, active)

    def process_lp(self, page, state, ctx):
        active = (state.pending[page.vid:page.vid + 1]
                  & self._can_relax(state.values[page.vid:page.vid + 1]))
        return self._relax(page, state, ctx, active)


class IncrementalBFSKernel(_IncrementalRelaxKernel):
    """Continue a BFS after edge inserts, relaxing only dirtied pages.

    ``prior`` is the previous run's ``level`` vector (``UNVISITED`` for
    unreached vertices); ``seeds`` the inserted edges' sources (see
    :func:`insert_seeds`).  Results carry the same ``level`` key as
    :class:`~repro.core.kernels.bfs.BFSKernel`, so equivalence checks
    compare directly.
    """

    name = "BFS (incremental)"
    wa_bytes_per_vertex = 2
    cycles_per_lane_step = 32.0

    #: Internal "unreached" distance; any reachable level is smaller.
    _INF = np.int64(2) ** 40

    def _initial_values(self, db):
        values = np.full(db.num_vertices, self._INF, dtype=np.int64)
        reached = self.prior != UNVISITED
        values[:len(self.prior)][reached] = self.prior[reached]
        return values

    def _candidates(self, source_values):
        return source_values + 1

    def _can_relax(self, values):
        # An unreached source has nothing to propagate.
        return values < self._INF

    def results(self, state):
        level = np.full(state.db.num_vertices, UNVISITED, dtype=np.int32)
        reached = state.values < self._INF
        level[reached] = state.values[reached].astype(np.int32)
        return {"level": level}


class IncrementalWCCKernel(_IncrementalRelaxKernel):
    """Continue min-label propagation after edge inserts.

    ``prior`` is the previous run's ``component`` vector; vertices added
    since then start with their own ID as label.  Labels flow along
    directed edges exactly as in
    :class:`~repro.core.kernels.wcc.WCCKernel`, so symmetrised inputs
    need both edge directions inserted.
    """

    name = "CC (incremental)"
    wa_bytes_per_vertex = 8
    cycles_per_lane_step = 28.0

    def _initial_values(self, db):
        values = np.arange(db.num_vertices, dtype=np.int64)
        values[:len(self.prior)] = self.prior
        return values

    def _candidates(self, source_values):
        return source_values

    def results(self, state):
        return {"component": state.values.copy()}


def incremental_bfs(db, prior_levels, batches):
    """An engine-ready kernel continuing ``prior_levels`` after ``batches``."""
    return IncrementalBFSKernel(prior_levels, insert_seeds(batches))


def incremental_wcc(db, prior_labels, batches):
    """An engine-ready kernel continuing ``prior_labels`` after ``batches``."""
    return IncrementalWCCKernel(prior_labels, insert_seeds(batches))
