"""Compaction: fold delta pages + WAL back into a clean base database.

Delta overlays keep updates cheap, but they are not free at read time —
every overlaid page pays a merge, tombstones waste base slots, and the
WAL grows without bound.  Once the accumulated delta bytes exceed a
threshold, :func:`compact` materialises the *effective* graph from the
merged pages, rebuilds a pristine slotted-page database with the
original :func:`~repro.format.builder.build_database` (same
:class:`~repro.format.config.PageFormatConfig`), and swaps it in as the
new base.  The WAL is truncated afterwards: its batches are now part of
the base pages.

Crash ordering matters when the database lives on disk, and WAL replay
is **not** idempotent (re-applied inserts duplicate parallel edges;
re-applied deletes of already-folded edges fail validation), so the
two steps are sequenced through a *WAL epoch*: compaction bumps the
epoch, saves the new base (atomically, via
:func:`~repro.format.io.save_database`'s temp-file + ``os.replace``
protocol) with the bumped epoch in its metadata, and only then resets
the WAL, stamping the same epoch into the fresh header.  A crash
between the two steps leaves a new base whose epoch is ahead of the
stale log; :func:`~repro.dynamic.delta.open_dynamic_database` sees the
mismatch and discards the log instead of replaying batches the base
already contains.  A crash before the save leaves the old base with
the old-epoch WAL, which replays normally.  Compacting *without* a
``save_prefix`` leaves the WAL untouched: the on-disk base still
predates the deltas, so the log's records remain the only durable copy
of the folded batches.

Compaction and MVCC: :func:`compact` runs under the database's commit
lock (writers are excluded; the head it materialises cannot move) but
never blocks readers — pinned snapshots keep serving their versions
throughout, and the subsequent :meth:`~repro.dynamic.delta
.DynamicGraphDatabase.swap_base` reclaims only versions no live query
pins.  Pins are in-memory, so a crash mid-reclaim degenerates to the
plain crash-mid-compaction orderings above: recovery replays (or
epoch-discards) the WAL and owes nothing to the dead process's pins.
"""

import contextlib
import dataclasses

import numpy as np

from repro.format.builder import build_database
from repro.format.io import save_database
from repro.graphgen.graph import Graph

#: Default delta-byte budget before :func:`maybe_compact` folds
#: (deliberately small: one base page's worth of delta is already a
#: measurable merge tax at serve time).
DEFAULT_THRESHOLD_BYTES = 1 << 20


@dataclasses.dataclass(frozen=True)
class CompactionReport:
    """What one compaction folded."""

    folded_bytes: int
    folded_batches: int
    num_vertices: int
    num_edges: int
    num_pages_before: int
    num_pages_after: int
    saved_prefix: object = None
    #: Versions still retained after the swap because live queries pin
    #: them (0 on a quiescent database: only the new head survives).
    retained_versions: int = 0

    def summary(self):
        return ("compaction: folded %dB of delta from %d batch(es) -> "
                "%d pages (%d before), V=%d E=%d, %d pinned version(s) "
                "retained"
                % (self.folded_bytes, self.folded_batches,
                   self.num_pages_after, self.num_pages_before,
                   self.num_vertices, self.num_edges,
                   self.retained_versions))


def materialise_graph(db):
    """The database's *effective* edge list as an immutable CSR graph.

    Walks the page directory through the serving path, so tombstones,
    delta adjacency and extension pages are all reflected.  Works on any
    :class:`~repro.format.database.GraphDatabase`, dynamic or not.
    """
    sources, targets, weights = [], [], []
    for entry in db.directory:
        page = db.page(entry.page_id)
        if entry.kind == "SP":
            degrees = np.diff(page.adj_indptr)
            vids = np.arange(page.start_vid,
                             page.start_vid + page.num_records,
                             dtype=np.int64)
            sources.append(np.repeat(vids, degrees))
        else:
            sources.append(np.full(page.num_edges, page.vid,
                                   dtype=np.int64))
        targets.append(page.adj_vids)
        if page.adj_weights is not None:
            weights.append(page.adj_weights)
    all_sources = (np.concatenate(sources) if sources
                   else np.empty(0, dtype=np.int64))
    all_targets = (np.concatenate(targets) if targets
                   else np.empty(0, dtype=np.int64))
    all_weights = np.concatenate(weights) if weights else None
    if all_weights is not None and len(all_weights) != len(all_targets):
        # Mixed weighted/unweighted pages cannot round-trip faithfully;
        # drop the partial weights rather than misalign them.
        all_weights = None
    return Graph.from_edges(db.num_vertices, all_sources, all_targets,
                            weights=all_weights)


def compact(db, save_prefix=None):
    """Fold ``db``'s deltas into a fresh base; returns a report.

    When ``save_prefix`` is given the new base is persisted there
    (atomically) with a bumped WAL epoch before the in-memory swap
    resets the WAL — see the module docstring for why that order is
    crash-safe.  ``save_prefix`` must be the prefix whose WAL ``db``
    has attached (they commit as a pair); without one, the WAL is kept.
    """
    # Exclude concurrent writers while the head is materialised and
    # swapped; readers (pinned snapshots) are never blocked.
    commit_lock = getattr(db, "_commit_lock", None)
    with (commit_lock if commit_lock is not None
          else contextlib.nullcontext()):
        folded_bytes = db.delta_bytes
        folded_batches = db.applied_batches
        pages_before = len(db.directory)
        graph = materialise_graph(db)
        new_base = build_database(graph, db.config, name=db.name)
        new_epoch = None
        if save_prefix is not None:
            new_epoch = getattr(db, "base_epoch", 0) + 1
            new_base.wal_epoch = new_epoch
            save_database(new_base, save_prefix, wal_epoch=new_epoch)
        db.swap_base(new_base, folded_bytes=folded_bytes,
                     new_epoch=new_epoch)
        pinned = getattr(db, "pinned_versions", None)
        retained = len(pinned()) if callable(pinned) else 0
    return CompactionReport(
        folded_bytes=folded_bytes,
        folded_batches=folded_batches,
        num_vertices=new_base.num_vertices,
        num_edges=new_base.num_edges,
        num_pages_before=pages_before,
        num_pages_after=new_base.num_pages,
        saved_prefix=save_prefix,
        retained_versions=retained,
    )


def maybe_compact(db, threshold_bytes=DEFAULT_THRESHOLD_BYTES,
                  save_prefix=None):
    """Compact when the delta overlay exceeds ``threshold_bytes``.

    Returns the :class:`CompactionReport`, or None when below threshold.
    """
    if db.delta_bytes < threshold_bytes:
        return None
    return compact(db, save_prefix=save_prefix)
