"""Dynamic graph updates for the slotted-page database.

GTS builds its topology once; this package makes it live.  The pieces,
in the order a mutation flows through them:

* :mod:`repro.dynamic.batch` — :class:`UpdateBatch`, the atomic unit of
  mutation (edge inserts/deletes, vertex adds);
* :mod:`repro.dynamic.wal` — :class:`WriteAheadLog`, checksummed durable
  logging with torn-tail crash recovery;
* :mod:`repro.dynamic.delta` — :class:`DynamicGraphDatabase`, the delta
  page/tombstone overlay the engine reads through transparently, plus
  MVCC snapshot isolation (:class:`Snapshot`, pin/release, version
  reclamation) so queries run while batches commit;
* :mod:`repro.dynamic.compact` — folding deltas back into a clean base
  with the original builder;
* :mod:`repro.dynamic.incremental` — restreaming only dirtied pages
  after insert-only batches via the engine's ``nextPIDSet`` path.

Recovery-time events (stale pre-compaction log discarded, torn tail
repaired) are reported through the ``repro.dynamic`` structured logger
(:func:`repro.obs.telemetry.get_logger`) — silent until the process
installs a sink via :func:`repro.obs.telemetry.configure_logging`, so
library code never writes ad hoc to stderr.
"""

from repro.dynamic.batch import UpdateBatch, parse_batch_file
from repro.dynamic.compact import (
    DEFAULT_THRESHOLD_BYTES,
    CompactionReport,
    compact,
    materialise_graph,
    maybe_compact,
)
from repro.dynamic.delta import (
    ApplyReport,
    DynamicGraphDatabase,
    Snapshot,
    open_dynamic_database,
)
from repro.dynamic.incremental import (
    IncrementalBFSKernel,
    IncrementalWCCKernel,
    incremental_bfs,
    incremental_wcc,
    insert_seeds,
)
from repro.dynamic.wal import (
    WAL_HEADER_BYTES,
    WAL_MAGIC,
    ReplayReport,
    WriteAheadLog,
)

__all__ = [
    "UpdateBatch",
    "parse_batch_file",
    "WriteAheadLog",
    "ReplayReport",
    "WAL_MAGIC",
    "WAL_HEADER_BYTES",
    "DynamicGraphDatabase",
    "Snapshot",
    "ApplyReport",
    "open_dynamic_database",
    "compact",
    "maybe_compact",
    "materialise_graph",
    "CompactionReport",
    "DEFAULT_THRESHOLD_BYTES",
    "IncrementalBFSKernel",
    "IncrementalWCCKernel",
    "incremental_bfs",
    "incremental_wcc",
    "insert_seeds",
]
