"""Update batches: the unit of mutation for a slotted-page database.

A batch is an *ordered* list of operations — edge inserts, edge deletes
and vertex additions — applied atomically by
:meth:`~repro.dynamic.delta.DynamicGraphDatabase.apply`.  Order matters
within a batch (a vertex must be added before edges reference it; an
edge must exist before it can be deleted), so batches round-trip through
the WAL as the exact op sequence the caller issued.

Semantics
---------
* ``insert_edge(u, v)`` appends **one** copy of the directed edge
  ``u -> v``; parallel edges are permitted, matching the base builder
  (R-MAT inputs contain duplicates).
* ``delete_edge(u, v)`` removes **all** parallel copies of ``u -> v``
  present at that point; deleting a non-existent edge is an
  :class:`~repro.errors.UpdateError`.
* ``add_vertices(n)`` appends ``n`` fresh vertices with consecutive IDs
  starting at the current vertex count.

Batches serialize to plain JSON dicts (:meth:`UpdateBatch.to_dict`) —
that is the payload the WAL checksums and replays.
"""

from repro.errors import UpdateError

#: Op tags used in the serialized form (stable WAL identifiers).
OP_INSERT = "+"
OP_DELETE = "-"
OP_VERTICES = "v"


class UpdateBatch:
    """An ordered sequence of graph mutations applied atomically."""

    def __init__(self, ops=None):
        self.ops = list(ops or [])

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def insert_edge(self, src, dst, weight=None):
        """Append one copy of the directed edge ``src -> dst``."""
        src, dst = int(src), int(dst)
        if src < 0 or dst < 0:
            raise UpdateError("edge endpoints must be nonnegative")
        self.ops.append((OP_INSERT, src, dst,
                         None if weight is None else float(weight)))
        return self

    def delete_edge(self, src, dst):
        """Remove every parallel copy of the directed edge ``src -> dst``."""
        src, dst = int(src), int(dst)
        if src < 0 or dst < 0:
            raise UpdateError("edge endpoints must be nonnegative")
        self.ops.append((OP_DELETE, src, dst))
        return self

    def add_vertices(self, count=1):
        """Append ``count`` fresh vertices with consecutive IDs."""
        count = int(count)
        if count < 1:
            raise UpdateError("must add at least one vertex")
        self.ops.append((OP_VERTICES, count))
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self):
        return len(self.ops)

    def __bool__(self):
        return bool(self.ops)

    @property
    def num_inserts(self):
        return sum(1 for op in self.ops if op[0] == OP_INSERT)

    @property
    def num_deletes(self):
        return sum(1 for op in self.ops if op[0] == OP_DELETE)

    @property
    def num_new_vertices(self):
        return sum(op[1] for op in self.ops if op[0] == OP_VERTICES)

    @property
    def has_deletes(self):
        return any(op[0] == OP_DELETE for op in self.ops)

    def touched_vertices(self):
        """Endpoints named by edge operations, in first-touch order."""
        seen = []
        member = set()
        for op in self.ops:
            if op[0] in (OP_INSERT, OP_DELETE):
                for vid in op[1:3]:
                    if vid not in member:
                        member.add(vid)
                        seen.append(vid)
        return seen

    # ------------------------------------------------------------------
    # Serialization (the WAL payload)
    # ------------------------------------------------------------------
    def to_dict(self):
        """JSON-ready form: ``{"ops": [[tag, ...], ...]}``."""
        return {"ops": [list(op) for op in self.ops]}

    @classmethod
    def from_dict(cls, payload):
        """Inverse of :meth:`to_dict`; validates op tags and arity."""
        batch = cls()
        for op in payload.get("ops", []):
            tag = op[0]
            if tag == OP_INSERT and len(op) == 4:
                batch.insert_edge(op[1], op[2], op[3])
            elif tag == OP_DELETE and len(op) == 3:
                batch.delete_edge(op[1], op[2])
            elif tag == OP_VERTICES and len(op) == 2:
                batch.add_vertices(op[1])
            else:
                raise UpdateError("malformed batch op %r" % (op,))
        return batch

    def __repr__(self):
        return "UpdateBatch(+%d -%d v%d)" % (
            self.num_inserts, self.num_deletes, self.num_new_vertices)


def parse_batch_file(path):
    """Read a batch from a text file (the CLI ``update --batch`` format).

    One op per line: ``add U V [W]``, ``del U V`` or ``vertex [N]``;
    blank lines and ``#`` comments are skipped.
    """
    batch = UpdateBatch()
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                if parts[0] == "add" and len(parts) in (3, 4):
                    weight = float(parts[3]) if len(parts) == 4 else None
                    batch.insert_edge(int(parts[1]), int(parts[2]), weight)
                elif parts[0] == "del" and len(parts) == 3:
                    batch.delete_edge(int(parts[1]), int(parts[2]))
                elif parts[0] == "vertex" and len(parts) in (1, 2):
                    batch.add_vertices(int(parts[1]) if len(parts) == 2
                                       else 1)
                else:
                    raise ValueError
            except ValueError:
                raise UpdateError(
                    "%s:%d: malformed batch line %r" % (path, lineno, line))
    return batch
