"""The GTS engine: streaming graph topology to (simulated) GPUs.

This package is the paper's primary contribution:

* :class:`~repro.core.engine.GTSEngine` — the Algorithm 1 framework:
  level-by-level (BFS-like) or whole-graph (PageRank-like) rounds,
  ``nextPIDSet`` / ``cachedPIDMap`` / ``bufferPIDMap`` management,
  asynchronous multi-stream transfer scheduling, and WA synchronisation.
* :mod:`~repro.core.strategies` — Strategy-P (performance: replicate WA,
  partition the page stream) and Strategy-S (scalability: partition WA,
  replicate the page stream), Section 4.
* :mod:`~repro.core.kernels` — the graph algorithms, each as a pair of
  GPU kernels (small-page and large-page variants, Appendix B).
* :mod:`~repro.core.micro` — micro-level parallelisation models
  (vertex-centric, edge-centric/VWC, hybrid), Section 6.2.
* :mod:`~repro.core.cost_model` — the analytic cost models of Section 5.
"""

from repro.core.engine import GTSEngine
from repro.core.result import RunResult, RoundStats
from repro.core.strategies import (
    PerformanceStrategy,
    ScalabilityStrategy,
    make_strategy,
)
from repro.core.micro import MicroTechnique
from repro.core.kernels import (
    BFSKernel,
    PageRankKernel,
    SSSPKernel,
    WCCKernel,
    BCKernel,
    RWRKernel,
    DegreeKernel,
    KCoreKernel,
    NeighborhoodKernel,
    CrossEdgesKernel,
    RadiusKernel,
    InducedSubgraphKernel,
    EgonetKernel,
)

__all__ = [
    "GTSEngine",
    "RunResult",
    "RoundStats",
    "PerformanceStrategy",
    "ScalabilityStrategy",
    "make_strategy",
    "MicroTechnique",
    "BFSKernel",
    "PageRankKernel",
    "SSSPKernel",
    "WCCKernel",
    "BCKernel",
    "RWRKernel",
    "DegreeKernel",
    "KCoreKernel",
    "NeighborhoodKernel",
    "CrossEdgesKernel",
    "RadiusKernel",
    "InducedSubgraphKernel",
    "EgonetKernel",
]
