"""The GTS engine: Algorithm 1's framework over the simulated machine.

One :class:`GTSEngine` ties together every piece the paper describes:

* a :class:`~repro.format.database.GraphDatabase` of slotted pages as the
  streamed topology, with ``nextPIDSet`` steering which pages each round
  touches (all of them for PageRank-like kernels, the frontier's pages for
  BFS-like kernels);
* a :class:`~repro.hardware.specs.MachineSpec` instantiated into per-run
  resource timelines — SSD channels, the main-memory buffer
  (``bufferPIDMap``), per-GPU copy engines and stream slots, and per-GPU
  page caches (``cachedPIDMap``);
* a multi-GPU :class:`~repro.core.strategies.Strategy` deciding page
  placement (``h(j)``), WA residency, and synchronisation;
* a :class:`~repro.core.kernels.base.Kernel` executed **for real** in
  NumPy page-by-page, with each invocation's measured work driving the
  simulated kernel duration.

Every page dispatch follows Algorithm 1's three-way branch: GPU cache hit
(kernel only) → main-memory buffer hit (stream copy + kernel) → storage
fetch (SSD read + stream copy + kernel).  Copies serialize on the GPU's
copy engine; kernels run concurrently on up to ``min(streams, 32)``
stream slots; pages are assigned to streams round-robin as in Figure 3.
"""

import time as _time

import numpy as np

from repro.core.cache import PageCache
from repro.core.kernels.base import ALL_PAGES, KernelContext
from repro.core.micro import MicroTechnique
from repro.core.plan import RoundPlanCache
from repro.core.result import RoundStats, RunResult
from repro.core.strategies import make_strategy
from repro.core.streams import StreamScheduler
from repro.errors import (CapacityError, ConfigurationError,
                          DeadlineError, DeviceLostError, SimulationError)
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.hardware.machine import MachineRuntime

#: Valid values of the ``execution`` knob.
EXECUTION_MODES = ("auto", "paged", "batched")

#: Valid values of the ``backend`` knob (host compute only; every
#: backend produces bit-identical values and simulated times).
BACKENDS = ("serial", "process")


class GTSEngine:
    """Run graph-algorithm kernels by streaming topology to GPUs.

    Parameters
    ----------
    db:
        The slotted-page graph database.
    machine:
        A :class:`~repro.hardware.specs.MachineSpec`; fresh resource
        timelines are created for every :meth:`run`.
    strategy:
        ``"performance"`` (Strategy-P) or ``"scalability"`` (Strategy-S),
        or a :class:`~repro.core.strategies.Strategy` instance.
    num_streams:
        GPU streams per device (Figure 10 sweeps 1–32; CUDA caps
        concurrent kernel execution at 32).
    micro_technique:
        Intra-page parallelisation model: ``"edge"`` (VWC, the default),
        ``"vertex"`` or ``"hybrid"`` (Section 6.2).
    enable_caching:
        Cache streamed pages in spare device memory (Section 3.3).
    cache_bytes:
        Per-GPU cache size; ``None`` means "all free device memory after
        the four buffers" (the paper's default behaviour).
    cache_policy:
        Page-cache replacement policy: ``"lru"`` (the paper's default),
        ``"fifo"``, ``"clock"`` or ``"pin"`` (Section 3.3 allows
        alternatives to LRU).
    mm_buffer_bytes:
        Main-memory page-buffer size; ``None`` applies the paper's
        policy — the whole graph when it fits in main memory, otherwise
        ``buffer_fraction`` (20 %) of the graph size.
    tracing:
        Record every copy and kernel interval and attach a Figure
        4-style ASCII stream timeline to the result.
    validate_simulation:
        Audit the finished schedule against the DES invariants (no
        resource overlap, accounting, concurrency caps); implies
        ``tracing``.  Raises :class:`~repro.errors.SimulationError` on
        any violation.
    execution:
        ``"auto"`` (default) runs the vectorized batched path for
        kernels that implement :meth:`Kernel.process_batch` and falls
        back to the per-page loop otherwise; ``"paged"`` forces the
        legacy per-page loop; ``"batched"`` forces the fast path and
        raises :class:`~repro.errors.ConfigurationError` for kernels
        without a batched implementation.  Both paths produce identical
        algorithm outputs and identical simulated timings — the knob
        trades host wall-clock only.
    faults:
        Optional :class:`~repro.faults.FaultPlan` (or its dict form)
        injected into every run.  Recoverable faults cost simulated
        time but leave algorithm outputs bit-identical to the
        fault-free run; unrecoverable ones raise a typed
        :class:`~repro.errors.GTSError` subclass — never a wrong
        answer.  A batched run degrades any faulted round to the paged
        path (where per-page injection and retry live) and continues.
    fault_seed:
        Overrides the plan's seed (the CLI's ``--fault-seed``), letting
        one plan file drive a whole matrix of chaos runs.
    retry_policy:
        Overrides the plan's :class:`~repro.faults.RetryPolicy` for
        transient-fault recovery.
    host_profile:
        ``True`` records a host-runtime profile of every run — nested
        wall-clock phase spans through setup, plan build, page parsing,
        kernels and dispatch, plus tracemalloc peak and real I/O
        counters — attached as ``RunResult.host_profile``.  Pass a
        :class:`~repro.obs.host.HostProfiler` instance to share one
        measurement across load + run (the CLI does); the engine then
        snapshots without finishing it.  ``False`` (default) keeps the
        host hot paths free of any profiling work.
    plan_cache:
        Optional :class:`~repro.core.plan.RoundPlanCache` to share
        across engines (the service keys one per database so every
        query reuses one plan build per topology version); ``None``
        gives this engine a private cache, as before.
    shared_cache:
        Optional :class:`~repro.core.cache.SharedPageCache` attached to
        the database for the duration of each run (and detached after,
        unless the database already carries one).  Strictly host-side:
        warm hits skip disk reads and parses, while simulated timings
        and outputs stay bit-identical to uncached runs; the run books
        its ``shared_hits`` / ``shared_misses`` deltas into the result.
    backend:
        Host execution backend for batched kernel compute.  ``"serial"``
        (default) runs in-process; ``"process"`` shards each full-scan
        round's segment ranges across a persistent ``multiprocessing``
        worker pool (shared-memory WA vectors, workers inheriting the
        page store's mmap read-only through fork).  Strictly host-side:
        values AND simulated times stay bit-identical to serial — the
        per-segment ``reduceat`` sums are computed independently per
        shard and applied by the parent in the exact serial order.
        Rounds a kernel cannot shard (or non-full batches) fall back to
        in-process compute transparently.
    backend_workers:
        Worker-process count for ``backend="process"``; ``None`` sizes
        the pool to the machine's CPU count (minus one for the parent,
        capped at 8).
    io_merge:
        ``True`` models FlashGraph-style merged ranged I/O: every page a
        round touches is made main-memory-resident up front, with runs
        of adjacent pages per device booked as single ranged fetches
        (:meth:`~repro.hardware.StorageArray.fetch_range`) and the
        file-backed read path coalescing the same runs into single
        ``pread`` calls.  This changes the *simulated* I/O model (fewer,
        larger storage bookings), so it defaults to off; paged, batched
        and every ``backend`` see identical simulated times under the
        same ``io_merge`` setting.  Fault-injected and fully-preloaded
        runs skip the merge (per-read injection semantics and the
        paper's in-memory path are preserved).
    """

    def __init__(self, db, machine, strategy="performance", num_streams=16,
                 micro_technique=MicroTechnique.EDGE_CENTRIC,
                 enable_caching=True, cache_bytes=None, cache_policy="lru",
                 mm_buffer_bytes=None, tracing=False,
                 validate_simulation=False, execution="auto",
                 faults=None, fault_seed=None, retry_policy=None,
                 host_profile=False, plan_cache=None, shared_cache=None,
                 backend="serial", backend_workers=None, io_merge=False,
                 worker_pools=None):
        if num_streams < 1:
            raise ConfigurationError("need at least one stream")
        if execution not in EXECUTION_MODES:
            raise ConfigurationError(
                "unknown execution mode %r (expected one of %s)"
                % (execution, ", ".join(EXECUTION_MODES)))
        if backend not in BACKENDS:
            raise ConfigurationError(
                "unknown backend %r (expected one of %s)"
                % (backend, ", ".join(BACKENDS)))
        if backend_workers is not None and backend_workers < 1:
            raise ConfigurationError("backend_workers must be >= 1")
        if faults is not None and not isinstance(faults, FaultPlan):
            faults = FaultPlan.from_dict(faults)
        if retry_policy is not None and not isinstance(retry_policy,
                                                       RetryPolicy):
            retry_policy = RetryPolicy.from_dict(retry_policy)
        self.faults = faults
        self.fault_seed = fault_seed
        self.retry_policy = retry_policy
        self.db = db
        self.machine = machine
        self.strategy = make_strategy(strategy)
        self.num_streams = num_streams
        self.micro_technique = MicroTechnique.parse(micro_technique)
        self.enable_caching = enable_caching
        self.cache_bytes = cache_bytes
        self.cache_policy = cache_policy
        self.mm_buffer_bytes = mm_buffer_bytes
        self.validate_simulation = validate_simulation
        self.tracing = tracing or validate_simulation
        self.execution = execution
        self.host_profile = host_profile
        self.shared_cache = shared_cache
        self.backend = backend
        self.backend_workers = backend_workers
        self.io_merge = bool(io_merge)
        #: Worker-pool registry for ``backend="process"``: either the
        #: service's per-database registry (shared across queries) or a
        #: private one created lazily on first parallel round.  Pools
        #: persist across runs and are released by :meth:`close`.
        self._worker_pools = worker_pools
        self._owns_worker_pools = worker_pools is None
        self._plan_cache = (plan_cache if plan_cache is not None
                            else RoundPlanCache())
        self._lp_runs = self._index_large_page_runs()
        self._db_topology_version = getattr(db, "topology_version", 0)

    def close(self):
        """Release resources this engine owns (its private worker pools).

        Service-injected pool registries are left alone — their
        lifecycle belongs to the database handle that owns them.
        """
        if self._owns_worker_pools and self._worker_pools is not None:
            self._worker_pools.shutdown()
            self._worker_pools = None

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _index_large_page_runs(self):
        """Map each first-chunk LP page ID to its vertex's full run.

        Adjacency entries always address a large vertex through its first
        large page (slot 0); streaming that vertex requires the whole
        consecutive run, which the RVT's LP_RANGE column delimits.
        """
        lp = np.asarray(self.db.large_page_ids(), dtype=np.int64)
        if len(lp) == 0:
            return {}
        # A run occupies consecutive pids with chunk indexes 0..k, so
        # ``pid - LP_RANGE(pid)`` is constant across the run, and with
        # ``lp`` ascending the groups come out already sorted.
        firsts = lp - self.db.rvt.lp_ranges[lp]
        uniques, starts = np.unique(firsts, return_index=True)
        groups = np.split(lp, starts[1:])
        return {int(first): group
                for first, group in zip(uniques, groups)}

    def _expand_pids(self, pids):
        """Normalise a round's page set: dedupe, expand LP runs, and
        split into (small, large) in the SP-first order the paper uses to
        avoid kernel switching."""
        pids = np.unique(np.asarray(pids, dtype=np.int64))
        lp_ranges = self.db.rvt.lp_ranges
        is_lp = lp_ranges[pids] >= 0
        small = pids[~is_lp]
        large_entries = pids[is_lp]
        if len(large_entries):
            firsts = large_entries - lp_ranges[large_entries]
            expanded = [self._lp_runs[int(first)]
                        for first in np.unique(firsts)]
            large = np.unique(np.concatenate(expanded))
        else:
            large = large_entries
        return small, large

    def _resolve_execution(self, kernel):
        """Pick the execution path for ``kernel`` under the knob."""
        supported = kernel.supports_batch()
        if self.execution == "batched":
            if not supported:
                raise ConfigurationError(
                    "kernel %s does not implement process_batch; use "
                    "execution='paged' or 'auto' to run it page-by-page"
                    % kernel.name)
            return True
        if self.execution == "paged":
            return False
        return supported

    @staticmethod
    def _integrity_retries(db):
        """Host-read integrity retries seen so far by ``db`` (and its
        base database, for dynamic overlays)."""
        total = getattr(db, "integrity_retries", 0)
        base = getattr(db, "_base", None)
        if base is not None:
            total += getattr(base, "integrity_retries", 0)
        return total

    def _round_assignments(self, pids_round, runtime, dead_gpus):
        """Per-page GPU assignments for a round, with dead GPUs' pages
        redistributed to survivors (Strategy-P degradation)."""
        assignments = self.strategy.assign_batch(pids_round,
                                                 runtime.num_gpus)
        if not dead_gpus:
            return assignments
        survivors = [g for g in range(runtime.num_gpus)
                     if g not in dead_gpus]
        cache = {}
        remapped = []
        for gpus in assignments:
            out = cache.get(gpus)
            if out is None:
                out = tuple(dict.fromkeys(
                    g if g not in dead_gpus
                    else survivors[g % len(survivors)]
                    for g in gpus))
                cache[gpus] = out
            remapped.append(out)
        return remapped

    def _absorb_gpu_losses(self, runtime, injector, dead_gpus, recorder):
        """Handle GPUs whose scheduled loss time has passed.

        Loss is detected at round boundaries: a GPU finishes (drains)
        the round in flight and disappears before the next one.  Under
        Strategy-P every survivor holds the full WA, so the dead GPU's
        share of the page stream is simply redistributed and the run
        continues — slower, but with bit-identical algorithm output.
        Under Strategy-S the dead GPU owned an unrecoverable WA chunk,
        so the run fails with a typed error rather than a wrong answer.
        Returns True when the dead set grew (cached assignments must be
        rebuilt).
        """
        lost = [g for g in injector.gpu_losses_by(runtime.now)
                if g not in dead_gpus and 0 <= g < runtime.num_gpus]
        if not lost:
            return False
        for g in lost:
            dead_gpus.add(g)
            injector.note_device_lost()
            if recorder is not None:
                recorder.instant(
                    "device_lost", runtime.gpus[g].lane, "copy engine",
                    runtime.now, gpu=g,
                    lost_at=injector.plan.gpu_loss[g])
        if not self.strategy.wa_replicated:
            raise DeviceLostError(
                "GPU %d was lost at simulated time %.6f under the %s "
                "strategy; its partitioned WA chunk is gone and cannot "
                "be recovered" % (lost[0], runtime.now,
                                  self.strategy.name),
                device="gpu:%d" % lost[0], lost_at=runtime.now)
        if len(dead_gpus) >= runtime.num_gpus:
            raise DeviceLostError(
                "all %d GPU(s) lost by simulated time %.6f; no device "
                "remains to stream the topology to"
                % (runtime.num_gpus, runtime.now),
                device="gpu:%d" % lost[-1], lost_at=runtime.now)
        return True

    def _mm_buffer_capacity(self):
        topology = self.db.topology_bytes()
        if self.mm_buffer_bytes is not None:
            return min(self.mm_buffer_bytes, self.machine.main_memory)
        if topology <= self.machine.main_memory:
            return topology
        return min(int(self.machine.main_memory),
                   max(self.db.page_bytes(),
                       int(topology * self.machine.buffer_fraction)))

    def _allocate_device_buffers(self, runtime, kernel):
        """Size and allocate WABuf/RABuf/SPBuf/LPBuf per GPU; whatever
        device memory remains becomes the page cache.  Raises the
        paper's O.O.M. when WA cannot fit."""
        db = self.db
        wa_total = kernel.wa_bytes(db.num_vertices)
        wa_gpu = self.strategy.wa_gpu_bytes(wa_total, runtime.num_gpus)
        max_records = max((e.num_records for e in db.directory), default=0)
        ra_buf = (self.num_streams * max_records
                  * kernel.ra_bytes_per_vertex)
        sp_buf = (self.num_streams * db.config.page_size
                  if db.num_small_pages else 0)
        lp_buf = (self.num_streams * db.config.page_size
                  if db.num_large_pages else 0)
        caches = []
        for gpu in runtime.gpus:
            gpu.allocate(wa_gpu, "WABuf")
            gpu.allocate(ra_buf, "RABuf")
            gpu.allocate(sp_buf, "SPBuf")
            gpu.allocate(lp_buf, "LPBuf")
            if self.enable_caching:
                budget = gpu.free_device_memory()
                if self.cache_bytes is not None:
                    budget = min(budget, self.cache_bytes)
                capacity_pages = int(budget // db.config.page_size)
                gpu.allocate(capacity_pages * db.config.page_size,
                             "page cache")
            else:
                capacity_pages = 0
            caches.append(PageCache(capacity_pages,
                                    policy=self.cache_policy,
                                    recorder=runtime.recorder,
                                    gpu_index=gpu.index))
        return wa_total, caches

    # ------------------------------------------------------------------
    # The run loop (Algorithm 1)
    # ------------------------------------------------------------------
    def run(self, kernel, dataset_name=None, query_id=None,
            deadline=None, timeout_ms=None, round_observer=None):
        """Execute ``kernel`` over the database; returns a
        :class:`~repro.core.result.RunResult` with the algorithm output
        and the simulated performance counters.

        When the engine was built with a fault plan, a fresh
        :class:`~repro.faults.FaultInjector` scopes this run's faults
        and is attached to the database's host read path (file-backed
        databases verify checksums against it) for the duration of the
        run only.

        ``query_id`` tags the result (and the service's traces and
        metrics) with the caller's identifier; ``None`` leaves the
        one-shot behaviour unchanged.  When the engine was built with a
        ``shared_cache``, it is attached to the database for this run
        and detached after — unless the database already carries one
        (the service attaches it persistently), which is left alone.

        ``deadline`` (absolute ``time.perf_counter()`` seconds) arms a
        cooperative cancellation check between execution rounds: the
        first round boundary past the deadline raises
        :class:`~repro.errors.DeadlineError` instead of finishing the
        run, so a timed-out query releases its gate slot and snapshot
        pin promptly.  ``timeout_ms`` only annotates that error with
        the caller's configured budget.

        ``round_observer`` (service telemetry) is called with the
        1-based round index after each completed round; ``None`` (the
        default) costs the loop one pointer comparison and no host
        clock reads — the same pay-for-use contract as
        ``host_profile``.
        """
        injector = None
        attached = []
        shared_attached = []
        if self.shared_cache is not None:
            for candidate in (self.db, getattr(self.db, "_base", None)):
                if (candidate is not None
                        and hasattr(candidate, "attach_shared_cache")
                        and getattr(candidate, "shared_cache",
                                    None) is None):
                    candidate.attach_shared_cache(self.shared_cache)
                    shared_attached.append(candidate)
        if self.faults is not None and self.faults.active:
            injector = FaultInjector(self.faults, seed=self.fault_seed,
                                     retry=self.retry_policy)
            for candidate in (self.db, getattr(self.db, "_base", None)):
                if candidate is not None and hasattr(
                        candidate, "attach_fault_injector"):
                    candidate.attach_fault_injector(injector)
                    attached.append(candidate)
        hp = None
        owns_profiler = False
        hp_hosts = []
        if self.host_profile:
            from repro.obs.host import HostProfiler
            if isinstance(self.host_profile, HostProfiler):
                hp = self.host_profile
            else:
                hp = HostProfiler()
                owns_profiler = True
            # Attach to the database (and its base, for dynamic
            # overlays) so page parsing and scatter-index builds report
            # into the same span stack — scoped to this run only.
            for candidate in (self.db, getattr(self.db, "_base", None)):
                if candidate is not None and hasattr(
                        candidate, "host_profiler"):
                    candidate.host_profiler = hp
                    hp_hosts.append(candidate)
        try:
            return self._run(kernel, dataset_name, injector, hp,
                             owns_profiler, query_id=query_id,
                             deadline=deadline, timeout_ms=timeout_ms,
                             round_observer=round_observer)
        finally:
            for candidate in attached:
                candidate.detach_fault_injector()
            for candidate in hp_hosts:
                candidate.host_profiler = None
            for candidate in shared_attached:
                candidate.detach_shared_cache()

    @staticmethod
    def _host_io_counters(db):
        """Real file-I/O counters seen so far by ``db`` (and its base
        database, for dynamic overlays): bytes read, reads issued,
        adjacent-read opportunities."""
        totals = [0, 0, 0]
        for candidate in (db, getattr(db, "_base", None)):
            if candidate is None:
                continue
            totals[0] += getattr(candidate, "host_bytes_read", 0)
            totals[1] += getattr(candidate, "host_reads", 0)
            totals[2] += getattr(candidate, "host_adjacent_reads", 0)
        return totals

    @staticmethod
    def _mmap_counters(db):
        """Zero-copy store counters seen so far by ``db`` (and its base
        database, for dynamic overlays)."""
        hits = misses = 0
        for candidate in (db, getattr(db, "_base", None)):
            if candidate is not None:
                hits += getattr(candidate, "mmap_hits", 0)
                misses += getattr(candidate, "mmap_misses", 0)
        return hits, misses

    @staticmethod
    def _shared_cache_of(db, fallback=None):
        """The shared page cache a run reads its counters from: the
        database's attached one (the service case), the base database's
        (dynamic overlays), or the engine's own ``fallback``."""
        shared = getattr(db, "shared_cache", None)
        if shared is None:
            base = getattr(db, "_base", None)
            if base is not None:
                shared = getattr(base, "shared_cache", None)
        return shared if shared is not None else fallback

    def _run(self, kernel, dataset_name, injector, hp=None,
             owns_profiler=False, query_id=None, deadline=None,
             timeout_ms=None, round_observer=None):
        wall_start = _time.perf_counter()
        db = self.db
        if hp is not None:
            host_io_start = self._host_io_counters(db)
            hp.push("run")
            hp.push("setup")
        # A mutated topology (dynamic updates, compaction) invalidates
        # the large-page run index built at construction time.
        version = getattr(db, "topology_version", 0)
        if version != self._db_topology_version:
            self._lp_runs = self._index_large_page_runs()
            self._db_topology_version = version
        pool_hits_start = getattr(db, "pool_hits", 0)
        pool_misses_start = getattr(db, "pool_misses", 0)
        mmap_hits_start, mmap_misses_start = self._mmap_counters(db)
        integrity_retries_start = self._integrity_retries(db)
        scatter_hits_start = getattr(db, "scatter_hits", 0)
        scatter_misses_start = getattr(db, "scatter_misses", 0)
        # Shared-cache deltas are exact for serial runs; under the
        # service's concurrency they attribute the whole interval's
        # traffic to this run (the cache is one ledger for all queries).
        shared = self._shared_cache_of(db, self.shared_cache)
        shared_hits_start = shared.hits if shared is not None else 0
        shared_misses_start = shared.misses if shared is not None else 0
        use_batched = self._resolve_execution(kernel)
        topology = db.topology_bytes()
        recorder = None
        if self.tracing:
            from repro.obs.events import TraceRecorder
            recorder = TraceRecorder()
        runtime = MachineRuntime(
            self.machine, num_streams=self.num_streams,
            page_bytes=db.config.page_size,
            mm_buffer_bytes=self._mm_buffer_capacity(),
            tracing=self.tracing, recorder=recorder)
        if runtime.storage is not None:
            runtime.storage.check_fits(topology)
            runtime.storage.fault_injector = injector
        elif topology > runtime.mm_buffer.capacity_bytes:
            raise CapacityError(
                "graph of %d bytes exceeds main memory %d and the machine "
                "has no secondary storage" % (
                    topology, runtime.mm_buffer.capacity_bytes),
                required_bytes=topology,
                available_bytes=runtime.mm_buffer.capacity_bytes)

        wa_total, caches = self._allocate_device_buffers(runtime, kernel)
        state = kernel.init_state(db)
        ctx = KernelContext(db, self.micro_technique)

        plan_arrays = None
        copy_bytes_all = None
        if use_batched:
            # Built once per topology version (one pass over the pages
            # plus one global scatter argsort); every later round gathers
            # flat array views from it.
            plan_arrays = self._plan_cache.get(db, host_profiler=hp)
            copy_bytes_all = plan_arrays.copy_bytes(
                kernel.ra_bytes_per_vertex)

        # |G| < MMBuf: load the graph up front (Algorithm 1 lines 9-10).
        preloaded = False
        if topology <= runtime.mm_buffer.capacity_bytes:
            runtime.mm_buffer.preload(range(db.num_pages))
            preloaded = True

        # Merged ranged I/O applies when rounds actually hit storage and
        # no fault injector needs per-read injection points.
        io_merge_active = (self.io_merge and not preloaded
                           and injector is None
                           and runtime.storage is not None)
        # The process backend shards full-scan segment reductions; other
        # rounds fall back to the serial batched path transparently.
        use_process = (self.backend == "process" and use_batched
                       and kernel.supports_shard())

        # Step 1: copy WA chunks to the GPUs.
        wa_ready = self.strategy.book_wa_broadcast(runtime, wa_total)
        if hp is not None:
            hp.pop()  # setup

        rounds = []
        scheduler = StreamScheduler(runtime, fault_injector=injector,
                                    host_profiler=hp)
        total_edges = 0
        fetch_ready = {}
        full_assignments = None
        dead_gpus = set()

        round_index = 0
        while True:
            if deadline is not None:
                now = _time.perf_counter()
                if now > deadline:
                    if timeout_ms is not None:
                        elapsed = now - (deadline - timeout_ms / 1000.0)
                    else:
                        elapsed = now - wall_start
                    raise DeadlineError(
                        "query exceeded its deadline after %.1f ms "
                        "(%d round(s) completed)"
                        % (elapsed * 1000.0, round_index),
                        timeout_ms=timeout_ms,
                        elapsed_seconds=elapsed,
                        rounds_completed=round_index)
            if hp is not None:
                hp.push("frontier")
                plan = kernel.next_round(state)
                hp.pop()
                if plan is not None:
                    hp.push("round")
            else:
                plan = kernel.next_round(state)
            if plan is None:
                break
            if isinstance(plan.pids, str) and plan.pids == ALL_PAGES:
                small = db.small_page_ids()
                large = db.large_page_ids()
            else:
                small, large = self._expand_pids(plan.pids)
            stats = RoundStats(round_index=round_index,
                               description=plan.description,
                               start_time=runtime.now)
            next_pid_chunks = []
            fetch_ready.clear()
            round_start = runtime.now
            fetch = self._make_fetch(runtime, fetch_ready, round_start,
                                     stats, host_profiler=hp,
                                     force_generic=io_merge_active)
            if injector is not None:
                injector.begin_round(round_index)
                if injector.plan.gpu_loss and self._absorb_gpu_losses(
                        runtime, injector, dead_gpus, recorder):
                    # The survivor set changed; cached full-scan
                    # assignments no longer reflect it.
                    full_assignments = None
            pids_round = np.concatenate([small, large])
            # SPs first, then LPs (reduces kernel switching, Section 3.2).
            run_batched = use_batched
            assignments = None
            if use_batched or dead_gpus:
                if use_batched and len(pids_round) == plan_arrays.num_pages:
                    # Full-scan rounds dispatch the same SP-first page
                    # sequence every time; compute its assignment once.
                    if full_assignments is None:
                        full_assignments = self._round_assignments(
                            pids_round, runtime, dead_gpus)
                    assignments = full_assignments
                else:
                    assignments = self._round_assignments(
                        pids_round, runtime, dead_gpus)
            if io_merge_active:
                self._merge_round_io(runtime, pids_round, assignments,
                                     caches, fetch_ready, round_start,
                                     stats)
            if (run_batched and injector is not None
                    and injector.plan.any_rates
                    and injector.round_faulted(pids_round, assignments)):
                # Graceful degradation: a fault will fire somewhere in
                # this round, so take the paged path — where per-page
                # injection, retry and backoff live — for this round
                # only.  Clean rounds keep the batched fast path, which
                # books bit-identically.
                run_batched = False
                injector.note_fallback()
                if recorder is not None:
                    recorder.instant("fallback", "engine", "rounds",
                                     round_start, round=round_index)
            if run_batched:
                if hp is not None:
                    hp.push("gather")
                    batch = plan_arrays.round_batch(pids_round)
                    hp.pop()
                else:
                    batch = plan_arrays.round_batch(pids_round)
                # Process backend: wake the forked workers on the round's
                # segment reduction *first*, overlap the parent's own
                # simulated-time booking with their compute, and apply
                # their partials with the serial path's ordered update —
                # same bytes in the state vector, same simulated times.
                job = None
                if (use_process and batch.num_segments
                        and len(pids_round) == plan_arrays.num_pages):
                    pool = self._pool_registry().get(
                        db, kernel, state, batch,
                        workers=self.backend_workers)
                    job = pool.start_round(kernel.round_vector(state))
                try:
                    if hp is not None:
                        hp.push("kernel")
                    if job is not None:
                        work = kernel.batch_work(batch, ctx)
                    else:
                        work = kernel.process_batch(batch, state, ctx)
                    if hp is not None:
                        hp.pop()
                    stats.pages_dispatched += batch.num_pages
                    round_edges = int(work.edges_traversed.sum())
                    stats.edges_traversed += round_edges
                    stats.active_vertices += int(
                        work.active_vertices.sum())
                    total_edges += round_edges
                    if work.next_pids is not None and len(work.next_pids):
                        next_pid_chunks.append(work.next_pids)
                    scheduler.dispatch_round(
                        pids_round, assignments,
                        copy_bytes_all[pids_round], work.lane_steps,
                        kernel.cycles_per_lane_step, caches, wa_ready,
                        round_start, fetch, stats)
                except BaseException:
                    # Leave the pool round-less before propagating so
                    # later queries sharing it don't block on our
                    # abandoned round.
                    if job is not None:
                        try:
                            job.collect()
                        except Exception:
                            pass
                    raise
                if job is not None:
                    if hp is not None:
                        hp.push("kernel")
                    kernel.apply_segment_results(batch, state,
                                                 job.collect())
                    if hp is not None:
                        hp.pop()
            else:
                # Merged host I/O: warm the page pool in pool-sized
                # chunks so consecutive pages coalesce into ranged
                # preads instead of one read per page() call.
                db_prefetch = (getattr(db, "prefetch", None)
                               if io_merge_active else None)
                chunk = max(1, min(64, getattr(db, "pool_capacity", 64)))
                for i, pid in enumerate(pids_round):
                    pid = int(pid)
                    if db_prefetch is not None and i % chunk == 0:
                        db_prefetch(
                            [int(p) for p in pids_round[i:i + chunk]])
                    page = db.page(pid)
                    if hp is not None:
                        hp.push("kernel")
                        work = kernel.process_page(page, state, ctx)
                        hp.pop()
                    else:
                        work = kernel.process_page(page, state, ctx)
                    stats.pages_dispatched += 1
                    stats.edges_traversed += work.edges_traversed
                    stats.active_vertices += work.active_vertices
                    total_edges += work.edges_traversed
                    if work.next_pids is not None and len(work.next_pids):
                        next_pid_chunks.append(work.next_pids)
                    ra_bytes = db.ra_subvector_bytes(
                        pid, kernel.ra_bytes_per_vertex)
                    gpus = (assignments[i] if assignments is not None
                            else self.strategy.assign(pid,
                                                      runtime.num_gpus))
                    for g in gpus:
                        earliest = max(round_start, wa_ready[g])
                        if caches[g].lookup(pid, ts=earliest):
                            stats.pages_from_cache += 1
                            scheduler.dispatch_cached(
                                g, earliest,
                                work.lane_steps,
                                kernel.cycles_per_lane_step,
                                page_id=pid)
                        else:
                            ready = fetch(pid)
                            copy_bytes = db.page_bytes(pid) + ra_bytes
                            stats.bytes_streamed += copy_bytes
                            scheduler.dispatch_streamed(
                                g, max(ready, wa_ready[g]), copy_bytes,
                                work.lane_steps,
                                kernel.cycles_per_lane_step,
                                page_id=pid)
                            caches[g].admit(pid, ts=earliest)

            # Lines 27-30: barrier, WA sync, nextPIDSet merge.
            if hp is not None:
                hp.push("sync")
            barrier = max(gpu.done_at() for gpu in runtime.gpus)
            sync_end = self.strategy.book_sync(
                runtime, wa_total, barrier,
                sync_full_wa=not kernel.traversal)
            runtime.now = max(barrier, sync_end)
            for gpu in runtime.gpus:
                gpu.advance_to(runtime.now)
            merged = None
            if kernel.traversal:
                merged = (np.unique(np.concatenate(next_pid_chunks))
                          if next_pid_chunks else np.empty(0, dtype=np.int64))
            kernel.finish_round(state, merged)
            if hp is not None:
                hp.pop()  # sync
            stats.end_time = runtime.now
            if recorder is not None:
                recorder.instant(
                    "round_barrier", "engine", "rounds", barrier,
                    round=round_index)
                recorder.interval(
                    "round", "engine", "rounds",
                    stats.start_time, stats.end_time,
                    round=round_index, description=plan.description,
                    execution="batched" if run_batched else "paged",
                    pages=stats.pages_dispatched,
                    bytes=stats.bytes_streamed)
            rounds.append(stats)
            round_index += 1
            # Service telemetry's per-round marks.  Disabled runs pay
            # one `is None` branch here and zero clock reads — the
            # observer, not the engine, owns the host clock.
            if round_observer is not None:
                round_observer(round_index)
            if hp is not None:
                hp.pop()  # round

        if hp is not None:
            hp.push("finalize")
        values = kernel.results(state)
        fault_stats = None
        if injector is not None:
            fault_stats = injector.stats()
            fault_stats["dead_gpus"] = sorted(dead_gpus)
            fault_stats["integrity_retries"] = (
                self._integrity_retries(db) - integrity_retries_start)
            if runtime.storage is not None:
                fault_stats["fetch_retries"] = list(
                    runtime.storage.fetch_retries)
                fault_stats["device_faults"] = list(
                    runtime.storage.faults_injected)
        if self.validate_simulation:
            from repro.hardware.validation import check_runtime
            check_runtime(runtime)
        timeline = None
        if self.tracing:
            from repro.hardware.trace import render_gpu_timeline
            timeline = "\n\n".join(
                render_gpu_timeline(gpu, 0.0, runtime.now)
                for gpu in runtime.gpus)
        wall = _time.perf_counter() - wall_start
        host_profile = None
        if hp is not None:
            hp.pop()  # finalize
            hp.pop()  # run
            io_now = self._host_io_counters(db)
            hp.add_counter("io.file_bytes_read",
                           io_now[0] - host_io_start[0])
            hp.add_counter("io.file_reads",
                           io_now[1] - host_io_start[1])
            hp.add_counter("io.file_adjacent_reads",
                           io_now[2] - host_io_start[2])
            if runtime.storage is not None:
                hp.add_counter("io.sim_pages_fetched",
                               runtime.storage.pages_fetched)
                hp.add_counter("io.sim_bytes_read",
                               runtime.storage.bytes_read)
                hp.add_counter("io.sim_adjacent_fetches",
                               runtime.storage.adjacent_fetches)
            # An engine-created profiler is finished here (releasing
            # tracemalloc); an externally-owned one is snapshotted
            # non-destructively so its owner can keep measuring.
            host_profile = (hp.finish() if owns_profiler
                            else hp.profile())
        mmap_hits_now, mmap_misses_now = self._mmap_counters(db)
        return RunResult(
            algorithm=kernel.name,
            dataset=dataset_name or db.name,
            values=values,
            elapsed_seconds=runtime.now,
            wall_seconds=wall,
            num_rounds=round_index,
            rounds=rounds,
            pages_streamed=sum(r.pages_dispatched for r in rounds),
            bytes_streamed=sum(r.bytes_streamed for r in rounds),
            storage_bytes_read=(runtime.storage.bytes_read
                                if runtime.storage else 0),
            cache_hits=sum(c.hits for c in caches),
            cache_misses=sum(c.misses for c in caches),
            mm_buffer_hits=runtime.mm_buffer.hits,
            mm_buffer_misses=runtime.mm_buffer.misses,
            pool_hits=getattr(db, "pool_hits", 0) - pool_hits_start,
            pool_misses=getattr(db, "pool_misses", 0) - pool_misses_start,
            scatter_hits=getattr(db, "scatter_hits", 0)
            - scatter_hits_start,
            scatter_misses=getattr(db, "scatter_misses", 0)
            - scatter_misses_start,
            shared_hits=(shared.hits - shared_hits_start
                         if shared is not None else 0),
            shared_misses=(shared.misses - shared_misses_start
                           if shared is not None else 0),
            mmap_hits=mmap_hits_now - mmap_hits_start,
            mmap_misses=mmap_misses_now - mmap_misses_start,
            transfer_busy_seconds=sum(
                g.copy_engine.busy_time for g in runtime.gpus),
            kernel_busy_seconds=sum(
                g.kernel_busy_time for g in runtime.gpus),
            kernel_stream_seconds=sum(
                g.kernel_stream_time for g in runtime.gpus),
            kernel_invocations=sum(
                g.kernel_invocations for g in runtime.gpus),
            edges_traversed=total_edges,
            num_gpus=runtime.num_gpus,
            num_streams=self.num_streams,
            strategy=self.strategy.name,
            cache_policy=self.cache_policy,
            execution="batched" if use_batched else "paged",
            backend=self.backend,
            notes="preloaded" if preloaded else "cold storage",
            timeline=timeline,
            trace=recorder,
            fault_stats=fault_stats,
            host_profile=host_profile,
            query_id=query_id,
            snapshot_version=getattr(db, "topology_version", 0),
        )

    # ------------------------------------------------------------------
    def _pool_registry(self):
        """The worker-pool registry for ``backend="process"`` (built
        lazily when the engine owns it; the service injects a shared
        per-database one via ``worker_pools=``)."""
        if self._worker_pools is None:
            from repro.core.parallel import WorkerPoolRegistry
            self._worker_pools = WorkerPoolRegistry()
        return self._worker_pools

    def _merge_round_io(self, runtime, pids_round, assignments, caches,
                        fetch_ready, round_start, stats):
        """Issue the round's storage misses as merged ranged reads.

        The lazy fetch path reads one page per :meth:`StorageArray.fetch`
        command; with ``io_merge`` the engine resolves the round's I/O
        plan up front — every page some assigned GPU will actually have
        to stream and the MM buffer does not hold — and books it through
        :meth:`StorageArray.fetch_range`, which coalesces adjacent pages
        per device into single ranged commands.  Ready times land in
        ``fetch_ready``, which the per-round fetch closure consults
        first, so dispatch proceeds unchanged.

        The predicted miss set is exact for pages absent from a GPU
        cache at round start (a page is probed once per round, so
        nothing can admit it earlier); a page evicted between this scan
        and its probe simply falls back to a lazy single-page fetch.
        """
        num_gpus = runtime.num_gpus
        mm_buffer = runtime.mm_buffer
        misses = []
        for i, pid in enumerate(pids_round.tolist()):
            gpus = (assignments[i] if assignments is not None
                    else self.strategy.assign(pid, num_gpus))
            if all(pid in caches[g] for g in gpus):
                continue
            if mm_buffer.lookup(pid, ts=round_start):
                stats.pages_from_buffer += 1
                fetch_ready[pid] = round_start
            else:
                stats.pages_from_storage += 1
                misses.append(pid)
        if not misses:
            return
        times = runtime.storage.fetch_range(
            misses, self.db.page_bytes(), round_start)
        for pid in misses:
            mm_buffer.admit(pid)
            fetch_ready[pid] = times[pid][1]

    def _fetch(self, runtime, fetch_ready, pid, round_start, stats):
        """Make a page available in main memory; returns its ready time.

        Memoised per round so Strategy-S's replicated dispatch fetches a
        page from storage only once (both GPUs then copy it from MMBuf).
        """
        if pid in fetch_ready:
            return fetch_ready[pid]
        if runtime.mm_buffer.lookup(pid, ts=round_start):
            stats.pages_from_buffer += 1
            ready = round_start
        else:
            stats.pages_from_storage += 1
            _, ready = runtime.storage.fetch(
                pid, self.db.page_bytes(pid), round_start)
            runtime.mm_buffer.admit(pid)
        fetch_ready[pid] = ready
        return ready

    def _make_fetch(self, runtime, fetch_ready, round_start, stats,
                    host_profiler=None, force_generic=False):
        """Build one round's ``fetch(pid) -> ready time`` closure.

        Untraced runs with the default pinned MM buffer get an inlined
        variant of :meth:`_fetch` — the same lookups, channel bookings
        and counters without the per-page method-call chain, so a round
        that misses the buffer thousands of times does not pay Python
        dispatch for every miss.  Traced, LRU-buffered, fault-injected
        or host-profiled runs (and machines without storage) use the
        generic method, whose :meth:`StorageArray.fetch` call is where
        SSD fault injection and adjacent-fetch accounting live.  Both
        variants book identical simulated times.
        """
        # ``force_generic`` (io_merge rounds): the inlined closure's
        # ``bulk_ready`` replays misses against storage without checking
        # ``fetch_ready`` first, which would double-book reads the merge
        # pass already issued — the generic method honours the memo.
        if (force_generic
                or runtime.recorder is not None or runtime.storage is None
                or runtime.storage.fault_injector is not None
                or host_profiler is not None
                or runtime.mm_buffer.policy != "pin"):
            return lambda pid: self._fetch(runtime, fetch_ready, pid,
                                           round_start, stats)
        mm_buffer = runtime.mm_buffer
        mm_pages = mm_buffer._pages
        mm_capacity = mm_buffer.capacity_pages
        storage = runtime.storage
        hash_function = storage._hash
        default_striping = getattr(storage, "default_striping", False)
        specs = storage.specs
        channels = storage.channels
        num_devices = len(specs)
        page_bytes = self.db.page_bytes
        read_times = {}

        def fetch(pid):
            ready = fetch_ready.get(pid)
            if ready is not None:
                return ready
            if pid in mm_pages:
                mm_buffer.hits += 1
                stats.pages_from_buffer += 1
                ready = round_start
            else:
                mm_buffer.misses += 1
                stats.pages_from_storage += 1
                if default_striping:
                    device = pid % num_devices
                else:
                    device = hash_function(pid)
                    if device < 0 or device >= num_devices:
                        raise SimulationError(
                            "hash function returned bad device index")
                num_bytes = page_bytes(pid)
                key = (device, num_bytes)
                duration = read_times.get(key)
                if duration is None:
                    duration = specs[device].read_time(num_bytes)
                    read_times[key] = duration
                channel = channels[device]
                available = channel.available_at
                start = (round_start if round_start > available
                         else available)
                ready = start + duration
                channel.available_at = ready
                channel.busy_time += duration
                channel.num_activities += 1
                storage.bytes_read += num_bytes
                storage.pages_fetched += 1
                # MM-buffer admit, pin policy: pages past capacity pass
                # through unbuffered.
                if mm_capacity and len(mm_pages) < mm_capacity:
                    mm_pages[pid] = None
            fetch_ready[pid] = ready
            return ready

        num_bytes = page_bytes()  # all pages are fixed-size
        durations = [spec.read_time(num_bytes) for spec in specs]
        num_db_pages = self.db.num_pages

        def bulk_ready(miss_pids):
            """Vectorized replay of ``fetch`` over one round's first-miss
            pages, given in page (dispatch) order.

            Returns their ready times as a float64 array, or ``None``
            when the closed form doesn't apply.  It applies when the
            pinned buffer is in steady state (at capacity, so admits are
            no-ops and the resident set is frozen) and pages stripe with
            the default mod function: each channel then books its misses
            back to back, ``end_i = max(seed, end_{i-1}) + duration``
            with a constant duration, which ``np.add.accumulate``
            reproduces with the exact floating-point fold of the
            per-call loop.
            """
            if not default_striping:
                return None
            if mm_capacity and len(mm_pages) < mm_capacity:
                return None  # still filling: admits would shift residency
            miss_pids = np.asarray(miss_pids, dtype=np.int64)
            resident = np.zeros(num_db_pages, dtype=bool)
            if mm_pages:
                resident[np.fromiter(mm_pages, dtype=np.int64,
                                     count=len(mm_pages))] = True
            in_buffer = resident[miss_pids]
            storage_pids = miss_pids[~in_buffer]
            buffered = len(miss_pids) - len(storage_pids)
            mm_buffer.hits += buffered
            mm_buffer.misses += len(storage_pids)
            stats.pages_from_buffer += buffered
            stats.pages_from_storage += len(storage_pids)
            ready = np.full(len(miss_pids), round_start, dtype=np.float64)
            if len(storage_pids):
                devices = storage_pids % num_devices
                ends_all = np.empty(len(storage_pids), dtype=np.float64)
                for device in range(num_devices):
                    selected = devices == device
                    count = int(selected.sum())
                    if not count:
                        continue
                    channel = channels[device]
                    duration = durations[device]
                    available = channel.available_at
                    chain = np.full(count + 1, duration, dtype=np.float64)
                    chain[0] = (round_start if round_start > available
                                else available)
                    ends = np.add.accumulate(chain)[1:]
                    ends_all[selected] = ends
                    channel.available_at = float(ends[-1])
                    chain[0] = channel.busy_time
                    channel.busy_time = float(
                        np.add.accumulate(chain)[-1])
                    channel.num_activities += count
                storage.bytes_read += num_bytes * len(storage_pids)
                storage.pages_fetched += len(storage_pids)
                ready[~in_buffer] = ends_all
            fetch_ready.update(zip(miss_pids.tolist(), ready.tolist()))
            return ready

        fetch.bulk_ready = bulk_ready
        return fetch
