"""Per-run page plans: precomputed arrays for vectorized round execution.

The engine's per-page path re-derives everything it needs from the page
objects on every dispatch — ``page.degrees()``, RA sizing, the sorted
scatter index — so host wall-clock scales with *page count* rather than
with NumPy throughput.  This module hoists all of that page-shaped
metadata into flat, page-major arrays built **once** per topology:

* :class:`PagePlan` — the concatenated view of the whole database:
  per-record degrees and vertex IDs, the global adjacency CSR
  (``adj_vids`` / ``adj_pids`` / optional weights), and a *global
  sorted-scatter index* (the per-page stable argsorts of
  :func:`repro.format.page.sorted_scatter_index`, concatenated) so
  full-scan kernels run ``np.add.reduceat`` / ``np.minimum.reduceat``
  over the entire round in a handful of calls instead of once per page.
* :class:`RoundBatch` — the slice of the plan covering one round's page
  set, gathered with vectorized range concatenation (no per-page Python
  loop), in the exact SP-first order the engine dispatches.
* :class:`RoundPlanCache` — keyed by the database's
  ``topology_version`` so dynamic updates (WAL batches, compaction)
  invalidate the plan and the next run rebuilds it.

Everything here is *derived* data: the plan never mutates kernel state
and holds only references/copies of arrays the pages already carry, so
building it costs one pass over the pages plus one global argsort and
roughly doubles the resident topology footprint — the classic
space-for-time trade behind GTS's own "prepare once, stream many
times" design.
"""

import dataclasses
from typing import Optional

import numpy as np

from repro.concurrency import InstrumentedLock
from repro.format.page import PageKind, sorted_scatter_index


def take_ranges(starts, counts):
    """Concatenate ``arange(starts[i], starts[i] + counts[i])`` for all
    ``i`` without a Python loop (the standard repeat/cumsum trick)."""
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    offsets = np.repeat(starts - (ends - counts), counts)
    return offsets + np.arange(total, dtype=np.int64)


def _indptr(counts):
    out = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out


@dataclasses.dataclass
class RoundBatch:
    """One round's pages as flat page-major arrays.

    Segment boundaries (``rec_indptr`` / ``edge_indptr`` /
    ``seg_indptr``) are local to the batch; ``scatter_order`` and
    ``seg_starts`` index into the batch's edge space.  A *segment* is
    one ``(page, target vertex)`` group of edges — exactly the segments
    :func:`repro.core.kernels.base.page_scatter_index` produces per
    page, so segment-wise reductions reproduce the per-page path's
    arithmetic bit for bit.
    """

    pids: np.ndarray
    #: Record space: ``rec_indptr`` (len pages+1) delimits each page's
    #: records; ``degrees`` / ``rec_vids`` / ``rec_divisor`` are per
    #: record (``rec_divisor`` is the PageRank divisor: the record's
    #: degree for SP records, the vertex's *total* degree for LP
    #: chunks).
    rec_indptr: np.ndarray
    degrees: np.ndarray
    rec_vids: np.ndarray
    rec_divisor: np.ndarray
    #: Edge space: ``edge_indptr`` (len pages+1) delimits each page's
    #: adjacency entries; ``edge_rec`` maps every edge to its record
    #: index *within the batch*.
    edge_indptr: np.ndarray
    edge_rec: np.ndarray
    adj_vids: np.ndarray
    adj_pids: np.ndarray
    adj_weights: Optional[np.ndarray]
    #: Scatter space: ``scatter_order`` permutes the batch's edges into
    #: per-page stable target order; ``seg_starts`` delimits the
    #: (page, target) segments inside that permutation; ``seg_targets``
    #: / ``seg_pids`` give each segment's target VID and the physical
    #: page addressing it; ``seg_indptr`` (len pages+1) delimits each
    #: page's segments.
    scatter_order: np.ndarray
    seg_starts: np.ndarray
    seg_targets: np.ndarray
    seg_pids: np.ndarray
    seg_indptr: np.ndarray

    @property
    def num_pages(self):
        return len(self.pids)

    @property
    def num_records(self):
        return len(self.degrees)

    @property
    def num_edges(self):
        return len(self.adj_vids)

    @property
    def num_segments(self):
        return len(self.seg_targets)

    def scatter_rec(self):
        """Record index feeding each scatter-ordered edge (the memoised
        composition ``edge_rec[scatter_order]``; gathering through it is
        exactly ``x[edge_rec][scatter_order]`` with one gather).

        Concurrent callers may race on the memo, but both compute the
        same array from immutable inputs and attribute assignment is
        atomic, so the worst case is one duplicated gather — never a
        wrong or torn value.
        """
        cached = getattr(self, "_scatter_rec", None)
        if cached is None:
            cached = self.edge_rec[self.scatter_order]
            self._scatter_rec = cached
        return cached

    def scatter_vids(self):
        """Source VID of each scatter-ordered edge (memoised)."""
        cached = getattr(self, "_scatter_vids", None)
        if cached is None:
            cached = self.rec_vids[self.scatter_rec()]
            self._scatter_vids = cached
        return cached

    def records_per_page(self):
        return np.diff(self.rec_indptr)

    def edges_per_page(self):
        return np.diff(self.edge_indptr)

    def segment_sum(self, per_record_values, dtype=np.int64):
        """Per-page sums of a per-record vector (``reduceat`` with
        empty-segment handling)."""
        return segment_sum(per_record_values, self.rec_indptr, dtype)

    def edge_segment_sum(self, per_edge_values, dtype=np.int64):
        """Per-page sums of a per-edge vector."""
        return segment_sum(per_edge_values, self.edge_indptr, dtype)


def segment_sum(values, indptr, dtype=np.int64):
    """Sum ``values`` over the segments delimited by ``indptr``.

    Unlike raw ``np.add.reduceat`` this returns 0 for empty segments
    (reduceat would return ``values[start]`` instead).
    """
    values = np.asarray(values)
    if values.dtype == bool:
        # reduceat on bools computes logical-or, not a count.
        values = values.astype(np.int64)
    counts = np.diff(indptr)
    out = np.zeros(len(counts), dtype=dtype)
    nonempty = counts > 0
    if values.size and nonempty.any():
        starts = indptr[:-1][nonempty]
        out[nonempty] = np.add.reduceat(values, starts).astype(
            dtype, copy=False)
    return out


class PagePlan:
    """Flat page-major arrays for one topology snapshot of a database."""

    def __init__(self, db, host_profiler=None):
        self.topology_version = getattr(db, "topology_version", 0)
        self.num_pages = db.num_pages
        self.page_size = db.page_bytes()
        if host_profiler is not None:
            host_profiler.push("plan_scan")
        #: Directory record counts drive RA-subvector sizing (must match
        #: ``db.ra_subvector_bytes`` exactly, which reads the directory,
        #: not the served page).
        self.dir_records = np.asarray(
            [entry.num_records for entry in db.directory], dtype=np.int64)
        self._full_order = np.concatenate(
            [np.asarray(db.small_page_ids(), dtype=np.int64),
             np.asarray(db.large_page_ids(), dtype=np.int64)])

        deg_parts, vid_parts, div_parts = [], [], []
        avid_parts, apid_parts, weight_parts = [], [], []
        rec_counts = np.zeros(self.num_pages, dtype=np.int64)
        edge_counts = np.zeros(self.num_pages, dtype=np.int64)
        any_weights = False
        # File-backed stores expose prefetch(): warm the pool ahead of
        # the scan in pool-sized chunks so runs of consecutive pages
        # coalesce into single ranged reads instead of one pread each.
        prefetch = getattr(db, "prefetch", None)
        chunk = max(1, min(64, getattr(db, "pool_capacity", 64)))
        for pid in range(self.num_pages):
            if prefetch is not None and pid % chunk == 0:
                prefetch(range(pid, min(pid + chunk, self.num_pages)))
            page = db.page(pid)
            degrees = page.degrees()
            deg_parts.append(degrees)
            vid_parts.append(page.vids())
            if page.kind is PageKind.SMALL:
                div_parts.append(degrees)
            else:
                div_parts.append(np.asarray([page.total_degree],
                                            dtype=np.int64))
            avid_parts.append(page.adj_vids)
            apid_parts.append(page.adj_pids)
            if page.adj_weights is not None:
                any_weights = True
                weight_parts.append(page.adj_weights)
            else:
                weight_parts.append(None)
            rec_counts[pid] = page.num_records
            edge_counts[pid] = page.num_edges

        def _concat(parts, dtype):
            if not parts:
                return np.empty(0, dtype=dtype)
            return np.concatenate(parts).astype(dtype, copy=False)

        self.rec_indptr = _indptr(rec_counts)
        self.edge_indptr = _indptr(edge_counts)
        self.rec_counts = rec_counts
        self.edge_counts = edge_counts
        self.degrees = _concat(deg_parts, np.int64)
        self.rec_vids = _concat(vid_parts, np.int64)
        self.rec_divisor = _concat(div_parts, np.int64)
        self.adj_vids = _concat(avid_parts, np.int64)
        self.adj_pids = _concat(apid_parts, np.int64)
        if any_weights:
            # A weight-less page among weighted ones contributes unit
            # weights, mirroring the per-page kernels' fallback.
            self.adj_weights = np.concatenate([
                part if part is not None
                else np.ones(int(edge_counts[pid]), dtype=np.float32)
                for pid, part in enumerate(weight_parts)
            ]).astype(np.float32, copy=False)
        else:
            self.adj_weights = None
        if host_profiler is not None:
            host_profiler.pop()  # plan_scan
            host_profiler.push("plan_scatter")
            self._build_scatter(db)
            host_profiler.pop()
        else:
            self._build_scatter(db)
        self._full_batch = None
        self._copy_bytes = {}
        # Memoisation guard: concurrent queries share one plan, and the
        # full-database batch / copy-bytes tables are built lazily on
        # first use.  The arrays themselves are immutable once built.
        self._memo_lock = InstrumentedLock()

    def _build_scatter(self, db):
        """Derive the global sorted-scatter index.

        One stable argsort of the combined ``page * V + target`` key
        yields, inside each page's block, exactly the permutation of the
        page's own stable target argsort (same ties, same order), so the
        result is bit-for-bit the concatenation of
        :func:`repro.format.page.sorted_scatter_index` over all pages —
        without the tens of thousands of per-page sorts.
        """
        num_vertices = int(db.num_vertices)
        edge_starts = self.edge_indptr[:-1]
        combined_ok = (self.num_pages == 0 or num_vertices == 0
                       or self.num_pages < (1 << 62) // num_vertices)
        if combined_ok:
            edge_page = np.repeat(
                np.arange(self.num_pages, dtype=np.int64),
                self.edge_counts)
            key = edge_page * max(num_vertices, 1) + self.adj_vids
            order_global = np.argsort(key, kind="stable").astype(
                np.int64, copy=False)
            self.order_local = order_global - np.repeat(
                edge_starts, self.edge_counts)
            num_edges = len(key)
            if num_edges:
                sorted_key = key[order_global]
                change = np.empty(num_edges, dtype=bool)
                change[0] = True
                np.not_equal(sorted_key[1:], sorted_key[:-1],
                             out=change[1:])
                seg_global = np.nonzero(change)[0].astype(
                    np.int64, copy=False)
            else:
                seg_global = np.empty(0, dtype=np.int64)
            seg_page = np.searchsorted(self.edge_indptr, seg_global,
                                       side="right") - 1
            self.seg_counts = np.bincount(
                seg_page, minlength=self.num_pages).astype(np.int64)
            self.seg_starts_local = seg_global - edge_starts[seg_page]
            first_edges = order_global[seg_global]
            self.seg_targets = self.adj_vids[first_edges]
            self.seg_pids = self.adj_pids[first_edges]
        else:
            # Combined key would overflow int64: sort page by page.
            order_parts, segs_parts = [], []
            segt_parts, segp_parts = [], []
            seg_counts = np.zeros(self.num_pages, dtype=np.int64)
            for pid in range(self.num_pages):
                lo, hi = self.edge_indptr[pid], self.edge_indptr[pid + 1]
                adj_vids = self.adj_vids[lo:hi]
                order, _, starts = sorted_scatter_index(adj_vids)
                order_parts.append(order)
                segs_parts.append(starts)
                first = order[starts]
                segt_parts.append(adj_vids[first])
                segp_parts.append(self.adj_pids[lo:hi][first])
                seg_counts[pid] = len(starts)
            self.seg_counts = seg_counts

            def _concat(parts, dtype):
                if not parts:
                    return np.empty(0, dtype=dtype)
                return np.concatenate(parts).astype(dtype, copy=False)

            self.order_local = _concat(order_parts, np.int64)
            self.seg_starts_local = _concat(segs_parts, np.int64)
            self.seg_targets = _concat(segt_parts, np.int64)
            self.seg_pids = _concat(segp_parts, np.int64)
        self.seg_indptr = _indptr(self.seg_counts)

    # ------------------------------------------------------------------
    def copy_bytes(self, ra_bytes_per_vertex):
        """Per-page PCI-E copy size: page bytes + the RA subvector
        (``db.page_bytes(pid) + db.ra_subvector_bytes(pid, b)``)."""
        cached = self._copy_bytes.get(ra_bytes_per_vertex)
        if cached is None:
            with self._memo_lock:
                cached = self._copy_bytes.get(ra_bytes_per_vertex)
                if cached is None:
                    cached = (self.page_size
                              + self.dir_records * ra_bytes_per_vertex)
                    self._copy_bytes[ra_bytes_per_vertex] = cached
        return cached

    def round_batch(self, pids):
        """Gather the batch for one round's page set (SP-first order).

        A round covering every page reuses one cached full-database
        batch (the PageRank/WCC steady state, where gathering again
        every iteration would dominate the fast path).
        """
        pids = np.asarray(pids, dtype=np.int64)
        if len(pids) == self.num_pages:
            return self.full_batch()
        return self._gather(pids)

    def full_batch(self):
        batch = self._full_batch
        if batch is None:
            with self._memo_lock:
                batch = self._full_batch
                if batch is None:
                    order = self._full_order
                    if np.array_equal(
                            order,
                            np.arange(self.num_pages, dtype=np.int64)):
                        # SP-first dispatch order coincides with pid
                        # order (the builder numbers small pages before
                        # large ones), so the full-database batch is the
                        # plan's own arrays — no multi-million-element
                        # gather needed.
                        batch = self._identity_batch()
                    else:
                        batch = self._gather(order)
                    self._full_batch = batch
        return batch

    def _identity_batch(self):
        edge_starts = self.edge_indptr[:-1]
        return RoundBatch(
            pids=self._full_order,
            rec_indptr=self.rec_indptr,
            degrees=self.degrees,
            rec_vids=self.rec_vids,
            rec_divisor=self.rec_divisor,
            edge_indptr=self.edge_indptr,
            edge_rec=np.repeat(
                np.arange(len(self.degrees), dtype=np.int64),
                self.degrees),
            adj_vids=self.adj_vids,
            adj_pids=self.adj_pids,
            adj_weights=self.adj_weights,
            scatter_order=(self.order_local
                           + np.repeat(edge_starts, self.edge_counts)),
            seg_starts=(self.seg_starts_local
                        + np.repeat(edge_starts, self.seg_counts)),
            seg_targets=self.seg_targets,
            seg_pids=self.seg_pids,
            seg_indptr=self.seg_indptr,
        )

    def _gather(self, pids):
        rec_counts = self.rec_counts[pids]
        edge_counts = self.edge_counts[pids]
        seg_counts = self.seg_counts[pids]
        rec_sel = take_ranges(self.rec_indptr[pids], rec_counts)
        edge_sel = take_ranges(self.edge_indptr[pids], edge_counts)
        seg_sel = take_ranges(self.seg_indptr[pids], seg_counts)
        rec_indptr = _indptr(rec_counts)
        edge_indptr = _indptr(edge_counts)
        seg_indptr = _indptr(seg_counts)
        degrees = self.degrees[rec_sel]
        edge_rec = np.repeat(
            np.arange(len(rec_sel), dtype=np.int64), degrees)
        return RoundBatch(
            pids=pids,
            rec_indptr=rec_indptr,
            degrees=degrees,
            rec_vids=self.rec_vids[rec_sel],
            rec_divisor=self.rec_divisor[rec_sel],
            edge_indptr=edge_indptr,
            edge_rec=edge_rec,
            adj_vids=self.adj_vids[edge_sel],
            adj_pids=self.adj_pids[edge_sel],
            adj_weights=(self.adj_weights[edge_sel]
                         if self.adj_weights is not None else None),
            scatter_order=(self.order_local[edge_sel]
                           + np.repeat(edge_indptr[:-1], edge_counts)),
            seg_starts=(self.seg_starts_local[seg_sel]
                        + np.repeat(edge_indptr[:-1], seg_counts)),
            seg_targets=self.seg_targets[seg_sel],
            seg_pids=self.seg_pids[seg_sel],
            seg_indptr=seg_indptr,
        )


class RoundPlanCache:
    """Cache of :class:`PagePlan` keyed by the topology version.

    Historically one engine owned one cache; the service layer now
    shares a single instance across every query on a database (injected
    via ``GTSEngine(plan_cache=...)``), so :meth:`get` is thread-safe: a
    build holds the cache lock, concurrent warm getters take a lock-free
    fast path on an already-built plan, and ``contended``/``hits``/
    ``builds`` feed the service's shared-cache accounting.

    MVCC makes the cache multi-version: queries pinned at an older
    snapshot run side by side with queries on the post-update head, so
    the cache keeps up to ``max_plans`` versions at once (evicting the
    oldest-inserted beyond that) instead of thrashing on every
    alternation.  Plans are immutable after build, so a plan for a
    reclaimed version is merely dead weight until evicted — never
    wrong.
    """

    def __init__(self, max_plans=4):
        self._plans = {}            # topology_version -> PagePlan
        self._order = []            # insertion order, oldest first
        self._lock = InstrumentedLock()
        self.max_plans = max(1, int(max_plans))
        self.builds = 0
        self.hits = 0

    @property
    def contended(self):
        """Lock acquisitions that had to wait (build-vs-build races)."""
        return self._lock.contended

    def get(self, db, host_profiler=None):
        """The plan for ``db``'s current topology (built on miss).

        The fast path reads the per-version dict without taking the
        lock — dict probes are atomic under the GIL, entries are
        assigned whole, and plans are immutable-after-build — so warm
        concurrent queries never serialise here.  ``hits`` uses a racy
        increment on that path, which can undercount by a handful under
        heavy threading; the service treats it as an aggregate rate,
        not a ledger.
        """
        version = getattr(db, "topology_version", 0)
        plan = self._plans.get(version)
        if plan is not None:
            self.hits += 1
            return plan
        with self._lock:
            plan = self._plans.get(version)
            if plan is not None:
                self.hits += 1
                return plan
            if host_profiler is not None:
                host_profiler.push("plan")
                try:
                    plan = PagePlan(db, host_profiler=host_profiler)
                finally:
                    host_profiler.pop()
            else:
                plan = PagePlan(db)
            self._plans[version] = plan
            self._order.append(version)
            while len(self._order) > self.max_plans:
                self._plans.pop(self._order.pop(0), None)
            self.builds += 1
        return plan

    def stats(self):
        """JSON-ready counter snapshot for the service stats endpoint."""
        total = self.hits + self.builds
        return {
            "hits": self.hits,
            "builds": self.builds,
            "hit_rate": self.hits / total if total else 0.0,
            "cached_plans": len(self._plans),
            "lock": self._lock.stats(),
        }

    def invalidate(self):
        """Drop every cached plan (the next :meth:`get` rebuilds)."""
        with self._lock:
            self._plans = {}
            self._order = []
