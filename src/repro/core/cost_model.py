"""Analytic cost models of Section 5.

These closed-form estimates mirror the paper's Equations 1 and 2 and serve
two purposes here: they sanity-check the discrete-event engine (tests
assert the DES lands near the analytic estimate in regimes where the
equations hold), and they support cost-based reasoning in examples.

Equation 1 (PageRank-like, Strategy-P, no storage I/O)::

    2|WA|/c1 + (|RA| + |SP| + |LP|) / (c2 * N)
      + t_call((S + L) / N) + t_kernel(SP_1 + LP_1) + t_sync(N)

Equation 2 (BFS-like)::

    2|WA|/c1 + sum over levels l of (
        (|RA_l| + |SP_l| + |LP_l|) / (c2 * N * d_skew) * (1 - r_hit)
        + t_call((S_l + L_l) / (N * d_skew)) )

``d_skew`` is the per-level workload balance across GPUs (1 = balanced,
1/N = all pages on one GPU) and ``r_hit`` the page-cache hit rate.
"""

import dataclasses
from typing import Sequence

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class CostInputs:
    """Hardware and workload quantities shared by both models."""

    wa_bytes: int
    ra_bytes: int
    sp_bytes: int
    lp_bytes: int
    num_sp: int
    num_lp: int
    num_gpus: int
    chunk_bandwidth: float      # c1
    stream_bandwidth: float     # c2
    kernel_launch_overhead: float
    #: Simulated execution time of one average page kernel (used for the
    #: Eq. 1 pipeline-drain term t_kernel(SP_1 + LP_1)).
    page_kernel_seconds: float = 0.0
    #: Per-GPU synchronisation overhead t_sync (Eq. 1); grows with N.
    sync_seconds_per_gpu: float = 0.0

    def __post_init__(self):
        if self.num_gpus < 1:
            raise ConfigurationError("need at least one GPU")


def pagerank_like_cost(inputs, iterations=1):
    """Equation 1, optionally multiplied out over ``iterations``.

    WA is copied in and out once per iteration (nextPR must return to the
    host for the prevPR swap), matching Algorithm 1's per-round sync.
    """
    n = inputs.num_gpus
    wa_term = 2.0 * inputs.wa_bytes / inputs.chunk_bandwidth
    stream_term = ((inputs.ra_bytes + inputs.sp_bytes + inputs.lp_bytes)
                   / (inputs.stream_bandwidth * n))
    call_term = (inputs.kernel_launch_overhead
                 * (inputs.num_sp + inputs.num_lp) / n)
    drain_term = inputs.page_kernel_seconds
    sync_term = inputs.sync_seconds_per_gpu * n
    per_iteration = wa_term + stream_term + call_term + drain_term + sync_term
    return per_iteration * iterations


@dataclasses.dataclass(frozen=True)
class LevelWork:
    """Per-level workload of a BFS-like run (one entry per level)."""

    ra_bytes: int
    sp_bytes: int
    lp_bytes: int
    num_sp: int
    num_lp: int


def bfs_like_cost(inputs, levels, d_skew=1.0, hit_rate=0.0):
    """Equation 2 over a sequence of :class:`LevelWork` entries."""
    if not 0.0 < d_skew <= 1.0:
        raise ConfigurationError("d_skew must be in (0, 1]")
    if not 0.0 <= hit_rate <= 1.0:
        raise ConfigurationError("hit_rate must be in [0, 1]")
    n = inputs.num_gpus
    total = 2.0 * inputs.wa_bytes / inputs.chunk_bandwidth
    for level in _as_levels(levels):
        transfer = ((level.ra_bytes + level.sp_bytes + level.lp_bytes)
                    / (inputs.stream_bandwidth * n * d_skew))
        total += transfer * (1.0 - hit_rate)
        total += (inputs.kernel_launch_overhead
                  * (level.num_sp + level.num_lp) / (n * d_skew))
    return total


def _as_levels(levels):
    if isinstance(levels, LevelWork):
        return (levels,)
    return tuple(levels)


def inputs_from_run(db, machine, kernel, num_gpus=None,
                    page_kernel_seconds=0.0, sync_seconds_per_gpu=0.0):
    """Build :class:`CostInputs` from a database, machine spec and kernel.

    A convenience for tests and examples: pulls |WA|, |RA|, |SP|, |LP|
    and the hardware rates from the same objects the engine uses.
    """
    page_size = db.config.page_size
    return CostInputs(
        wa_bytes=kernel.wa_bytes(db.num_vertices),
        ra_bytes=kernel.ra_bytes(db.num_vertices),
        sp_bytes=db.num_small_pages * page_size,
        lp_bytes=db.num_large_pages * page_size,
        num_sp=db.num_small_pages,
        num_lp=db.num_large_pages,
        num_gpus=num_gpus or machine.num_gpus,
        chunk_bandwidth=machine.pcie.chunk_bandwidth,
        stream_bandwidth=machine.pcie.stream_bandwidth,
        kernel_launch_overhead=machine.gpus[0].kernel_launch_overhead,
        page_kernel_seconds=page_kernel_seconds,
        sync_seconds_per_gpu=sync_seconds_per_gpu,
    )
