"""Multi-GPU strategies: Strategy-P and Strategy-S (Section 4).

* **Strategy-P (performance)** replicates WA on every GPU and hash-
  partitions the page stream across them (``h(j) = j mod N``).  Every GPU
  sees ``1/N`` of the topology, so streaming and kernel work scale with
  ``N`` — but WA must fit in a *single* GPU's device memory.
  Synchronisation exploits peer-to-peer copies: worker GPUs merge their
  WA into the master GPU, which then writes the result to main memory.
* **Strategy-S (scalability)** partitions WA across GPUs (each owns a
  ``1/N`` chunk) and replicates the page stream to all of them.  The
  processable WA grows linearly with ``N`` — this is how RMAT32's 16 GB
  PageRank WA fits two 12 GB GPUs — but elapsed time does not improve
  with more GPUs because every GPU still streams the whole topology.
  Synchronisation is the naive one: ``N`` sequential GPU-to-host copies
  (disjoint chunks cannot use the peer-to-peer merge).

A strategy answers three questions for the engine: which GPU(s) receive a
page, how much WA each GPU must allocate, and how WA synchronisation is
booked on the simulated resources at the end of a round.
"""

from repro.errors import ConfigurationError


def _record(runtime, name, process, thread, start, end, **args):
    """Emit a trace interval when the runtime carries a recorder."""
    if runtime.recorder is not None:
        runtime.recorder.interval(name, process, thread, start, end, **args)


class Strategy:
    """Interface shared by the two multi-GPU strategies."""

    name = "abstract"
    #: True when every GPU holds the complete WA.  Decides whether a GPU
    #: lost mid-run is survivable: replicated WA (Strategy-P) lets the
    #: engine redistribute the dead GPU's page stream to survivors, a
    #: partitioned WA (Strategy-S) dies with its chunk.
    wa_replicated = False

    def assign(self, page_id, num_gpus):
        """GPU indices that must receive page ``page_id`` (the paper's
        ``h(j)``: one index for Strategy-P, all of them for Strategy-S)."""
        raise NotImplementedError

    def assign_batch(self, page_ids, num_gpus):
        """Per-page GPU assignments for a whole round (a list aligned
        with ``page_ids``).  The default delegates to :meth:`assign`;
        the built-in strategies override it with vectorized versions for
        the engine's batched dispatch path."""
        return [self.assign(int(pid), num_gpus) for pid in page_ids]

    def wa_gpu_bytes(self, wa_total_bytes, num_gpus):
        """WA bytes each GPU must hold resident."""
        raise NotImplementedError

    def book_wa_broadcast(self, runtime, wa_total_bytes):
        """Book the initial WA copies (Algorithm 1 line 11 / Step 1);
        returns per-GPU ready times."""
        raise NotImplementedError

    def book_sync(self, runtime, wa_total_bytes, earliest, sync_full_wa):
        """Book end-of-round WA synchronisation; returns completion time.

        ``sync_full_wa`` is False for traversal kernels, whose WA deltas
        are negligible (the Section 5.2 cost model has no sync term); only
        per-GPU control traffic (nextPIDSet, cachedPIDMap) is booked then.
        """
        raise NotImplementedError


class PerformanceStrategy(Strategy):
    """Strategy-P: replicate WA, partition the page stream."""

    name = "performance"
    wa_replicated = True

    def assign(self, page_id, num_gpus):
        return (page_id % num_gpus,)

    def assign_batch(self, page_ids, num_gpus):
        return [(int(pid) % num_gpus,) for pid in page_ids]

    def wa_gpu_bytes(self, wa_total_bytes, num_gpus):
        return wa_total_bytes

    def book_wa_broadcast(self, runtime, wa_total_bytes):
        ready = []
        duration = runtime.pcie.chunk_copy_time(wa_total_bytes)
        for gpu in runtime.gpus:
            start, end = gpu.copy_engine.book(runtime.now, duration)
            _record(runtime, "wa_broadcast", gpu.lane, "copy engine",
                    start, end, bytes=wa_total_bytes)
            ready.append(end)
        return ready

    def book_sync(self, runtime, wa_total_bytes, earliest, sync_full_wa):
        pcie = runtime.pcie
        if not sync_full_wa:
            # Control traffic only: one small transfer per GPU.
            end = earliest
            for _ in runtime.gpus:
                start, end = runtime.host_bus.book(end, pcie.latency)
                _record(runtime, "wa_sync", "host", "bus", start, end,
                        kind="control")
            return end
        # Steps 3-4 of Figure 5(a): peer-to-peer merge into the master
        # GPU, then one chunk copy of the merged WA to main memory.
        master = runtime.gpus[0]
        end = earliest
        for gpu in runtime.gpus[1:]:
            start, end = master.copy_engine.book(
                end, pcie.p2p_copy_time(wa_total_bytes))
            _record(runtime, "wa_sync", master.lane, "copy engine",
                    start, end, kind="p2p_merge", source=gpu.index)
        start, end = runtime.host_bus.book(
            end, pcie.chunk_copy_time(wa_total_bytes))
        _record(runtime, "wa_sync", "host", "bus", start, end,
                kind="chunk_copy", bytes=wa_total_bytes)
        return end


class ScalabilityStrategy(Strategy):
    """Strategy-S: partition WA, replicate the page stream."""

    name = "scalability"

    def assign(self, page_id, num_gpus):
        return tuple(range(num_gpus))

    def assign_batch(self, page_ids, num_gpus):
        replicate = tuple(range(num_gpus))
        return [replicate] * len(page_ids)

    def wa_gpu_bytes(self, wa_total_bytes, num_gpus):
        return -(-wa_total_bytes // num_gpus)  # ceil division

    def book_wa_broadcast(self, runtime, wa_total_bytes):
        ready = []
        chunk = self.wa_gpu_bytes(wa_total_bytes, runtime.num_gpus)
        duration = runtime.pcie.chunk_copy_time(chunk)
        for gpu in runtime.gpus:
            start, end = gpu.copy_engine.book(runtime.now, duration)
            _record(runtime, "wa_broadcast", gpu.lane, "copy engine",
                    start, end, bytes=chunk)
            ready.append(end)
        return ready

    def book_sync(self, runtime, wa_total_bytes, earliest, sync_full_wa):
        pcie = runtime.pcie
        if not sync_full_wa:
            end = earliest
            for _ in runtime.gpus:
                start, end = runtime.host_bus.book(end, pcie.latency)
                _record(runtime, "wa_sync", "host", "bus", start, end,
                        kind="control")
            return end
        # Naive sync: N sequential chunk copies straight to main memory
        # (disjoint WA chunks cannot use the peer-to-peer merge).
        chunk = self.wa_gpu_bytes(wa_total_bytes, runtime.num_gpus)
        end = earliest
        for gpu in runtime.gpus:
            start, end = runtime.host_bus.book(
                end, pcie.chunk_copy_time(chunk))
            _record(runtime, "wa_sync", "host", "bus", start, end,
                    kind="chunk_copy", bytes=chunk, source=gpu.index)
        return end


_STRATEGIES = {
    PerformanceStrategy.name: PerformanceStrategy,
    "P": PerformanceStrategy,
    ScalabilityStrategy.name: ScalabilityStrategy,
    "S": ScalabilityStrategy,
}


def make_strategy(name_or_strategy):
    """Resolve ``"performance"`` / ``"scalability"`` (or ``"P"`` / ``"S"``,
    or an already-built :class:`Strategy`) to a strategy instance."""
    if isinstance(name_or_strategy, Strategy):
        return name_or_strategy
    try:
        return _STRATEGIES[name_or_strategy]()
    except KeyError:
        raise ConfigurationError(
            "unknown strategy %r (expected 'performance' or 'scalability')"
            % (name_or_strategy,)) from None
