"""Page caches: the per-run GPU ``cachedPIDMap`` and the cross-query
shared host cache.

After WABuf / RABuf / SPBuf / LPBuf are allocated, leftover device memory
caches topology pages so BFS-like algorithms that revisit pages across
levels skip the PCI-E copy.  The paper's naive hit-rate approximation for
a cache of ``B`` pages over ``S + L`` total pages is ``B / (S + L)``
(random-graph assumption); Figure 11 sweeps the cache size.

"GTS basically adopts the LRU algorithm for the caching algorithm, but
other algorithms can be used as well" (Section 3.3) — so the replacement
policy is pluggable here:

* ``"lru"`` (default) — least recently used.
* ``"fifo"`` — evict in admission order; cheaper bookkeeping on a GPU.
* ``"clock"`` — the classic second-chance approximation of LRU.
* ``"pin"`` — first-streamed pages stay resident (scan-resistant: a
  level-synchronous sweep in ascending page order floods LRU/FIFO).

Two cache classes live here, on opposite sides of the simulation/host
split:

* :class:`PageCache` is the **simulated** per-GPU cache.  Its hit/miss
  decisions depend only on the probe order and the policy, never on
  wall-clock or on other runs — which is exactly what makes engine runs
  deterministic.  Every run builds fresh instances.
* :class:`SharedPageCache` is the **host-side** cross-query cache the
  service layer (:mod:`repro.service`) keeps alive between queries: a
  thread-safe LRU of *decoded page objects* keyed by
  ``(page_id, topology_version)``.  It sits behind
  :meth:`repro.format.io.FileBackedDatabase.page` — a warm query skips
  the disk read and the byte-level parse, not any simulated work — so
  sharing it across queries changes host wall-clock and the shared
  hit-rate counters *only*.  Simulated timings and algorithm outputs of
  a warm run stay bit-identical to a cold one-shot run; that
  determinism contract is what lets the service hand one cache to
  thousands of concurrent queries.
"""

from collections import OrderedDict

from repro.concurrency import InstrumentedLock
from repro.errors import ConfigurationError

_POLICIES = ("lru", "fifo", "clock", "pin")


class PageCache:
    """A fixed-capacity page cache for one GPU (``cachedPIDMap_i``)."""

    def __init__(self, capacity_pages, policy="lru", recorder=None,
                 gpu_index=None):
        if capacity_pages < 0:
            raise ConfigurationError("cache capacity cannot be negative")
        if policy not in _POLICIES:
            raise ConfigurationError(
                "unknown cache policy %r (expected one of %s)"
                % (policy, ", ".join(_POLICIES)))
        self.capacity_pages = capacity_pages
        self.policy = policy
        #: Optional TraceRecorder; probes and admissions carrying a
        #: simulated time become cache_hit/miss/admit/evict instants on
        #: this GPU's "page cache" lane.
        self.recorder = recorder
        self.lane = "gpu%d" % gpu_index if gpu_index is not None else "gpu"
        self._pages = OrderedDict()   # page_id -> referenced bit
        self.hits = 0
        self.misses = 0

    def __contains__(self, page_id):
        return page_id in self._pages

    def __len__(self):
        return len(self._pages)

    def lookup(self, page_id, ts=None):
        """Probe the cache (Algorithm 1 line 16); counts hits/misses.

        ``ts`` is the simulated time of the probe, used only to
        timestamp trace instants when a recorder is attached.
        """
        if self.capacity_pages == 0:
            self.misses += 1
            self._instant("cache_miss", page_id, ts)
            return False
        if page_id in self._pages:
            if self.policy == "lru":
                self._pages.move_to_end(page_id)
            elif self.policy == "clock":
                self._pages[page_id] = True  # referenced bit
            self.hits += 1
            self._instant("cache_hit", page_id, ts)
            return True
        self.misses += 1
        self._instant("cache_miss", page_id, ts)
        return False

    def resolve_round(self, page_ids, ts=None, assume_distinct=False):
        """Replay one round's lookup/admit sequence in bulk.

        Replacement decisions depend only on the probe order and the
        policy — never on simulated time — so the engine's batched path
        can resolve a whole round's hits up front and keep the booking
        loop free of cache bookkeeping.  Returns a per-page hit list;
        counters and trace instants are identical to interleaved
        :meth:`lookup` / :meth:`admit` calls.  ``assume_distinct``
        promises that ``page_ids`` has no duplicates (the engine's
        rounds are deduped), unlocking the sequential-flooding shortcut.
        """
        if (self.recorder is None and self.capacity_pages
                and self.policy in ("lru", "fifo", "pin")):
            if (assume_distinct and self.policy != "pin"
                    and len(page_ids) > self.capacity_pages
                    and len(self._pages) == self.capacity_pages
                    and list(self._pages) == page_ids[-self.capacity_pages:]):
                # Sequential flooding in steady state: a full-scan round
                # larger than the cache whose tail is exactly the current
                # resident set (what the previous identical round left
                # behind).  Every probe misses — each resident page is
                # evicted before its own probe comes around — and the
                # final resident set is again the round's tail, i.e. the
                # OrderedDict ends bit-identical to how it started, so
                # only the counters need touching.
                self.misses += len(page_ids)
                return [False] * len(page_ids)
            # Inlined lookup+admit for the untraced common policies: same
            # decisions and counters as the generic loop below, without
            # two method calls per page.
            pages = self._pages
            capacity = self.capacity_pages
            lru = self.policy == "lru"
            pin = self.policy == "pin"
            hits = []
            hit_count = miss_count = 0
            for page_id in page_ids:
                if page_id in pages:
                    if lru:
                        pages.move_to_end(page_id)
                    hit_count += 1
                    hits.append(True)
                else:
                    miss_count += 1
                    hits.append(False)
                    if len(pages) >= capacity:
                        if pin:
                            continue  # resident set is stable once full
                        pages.popitem(last=False)
                    pages[page_id] = False
            self.hits += hit_count
            self.misses += miss_count
            return hits
        hits = []
        for page_id in page_ids:
            hit = self.lookup(page_id, ts=ts)
            if not hit:
                self.admit(page_id, ts=ts)
            hits.append(hit)
        return hits

    def admit(self, page_id, ts=None):
        """Cache a page just streamed in; returns the evicted victim."""
        if self.capacity_pages == 0:
            return None
        if page_id in self._pages:
            if self.policy == "lru":
                self._pages.move_to_end(page_id)
            return None
        victim = None
        if len(self._pages) >= self.capacity_pages:
            if self.policy == "pin":
                return None  # resident set is stable once full
            victim = self._evict()
            if victim is not None:
                self._instant("cache_evict", victim, ts)
        self._pages[page_id] = False
        self._instant("cache_admit", page_id, ts)
        return victim

    def _instant(self, name, page_id, ts):
        if self.recorder is not None and ts is not None:
            self.recorder.instant(name, self.lane, "page cache", ts,
                                  page=page_id, policy=self.policy)

    def _evict(self):
        if self.policy == "clock":
            # Second chance: clear referenced bits until an unreferenced
            # page comes to hand.
            while True:
                page_id, referenced = next(iter(self._pages.items()))
                if referenced:
                    self._pages.move_to_end(page_id)
                    self._pages[page_id] = False
                else:
                    del self._pages[page_id]
                    return page_id
        # LRU and FIFO both evict the head (lookup refreshes order only
        # under LRU, which is exactly their difference).
        page_id, _ = self._pages.popitem(last=False)
        return page_id

    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def page_ids(self):
        """Snapshot of cached page IDs (copied back to MM in Algorithm 1)."""
        return list(self._pages)

    @staticmethod
    def naive_hit_rate(capacity_pages, total_pages):
        """The paper's ``B / (S + L)`` random-graph approximation."""
        if total_pages <= 0:
            return 0.0
        return min(1.0, capacity_pages / total_pages)


class SharedPageCache:
    """A thread-safe cross-query cache of decoded host pages.

    One instance serves every query the service runs against a
    database: :meth:`repro.format.io.FileBackedDatabase.page` probes it
    after its (small) per-database pool misses and before it touches the
    pages file, and populates it after a verified parse.  Entries are
    keyed ``(page_id, topology_version)`` so a dynamic-update batch or a
    compaction never serves stale topology — old-version entries age
    out of the LRU naturally.

    Determinism contract
    --------------------
    The shared cache lives strictly on the *host* side of the
    simulation/host split: it stores decoded, immutable page objects
    and is never consulted by the simulated machine (the per-GPU
    :class:`PageCache`, the MM buffer and the storage channels replay
    their decisions from probe order alone).  A query served warm from
    this cache therefore books bit-identical simulated times and
    produces bit-identical outputs to its cold one-shot equivalent —
    only ``hits``/``misses`` here and the host wall-clock move.  Pages
    are inserted only after checksum verification succeeds, so an
    injected (or real) corrupt read can never poison the shared state.

    Interaction with the zero-copy (``mode="mmap"``) page store: this
    cache must never double-cache mmap *views* — an entry aliasing the
    file mapping would pin the mapping alive through the LRU and turn
    into a dangling view once the database handle is closed.  The
    invariant is upheld at decode time, not here: the ``from_buffer``
    parsers materialise every output array fresh (nothing aliases the
    buffer they decode from), so what the mmap read path inserts is the
    same self-contained page object the copy path produces, safe to
    outlive :meth:`~repro.format.io.FileBackedDatabase.close` and
    serving warm queries without touching the mapping at all.

    ``capacity_pages=None`` means unbounded (the service default for
    databases that fit host memory); ``0`` disables caching but keeps
    the accounting, which gives benchmarks a per-run-rebuild baseline
    with identical code paths.
    """

    def __init__(self, capacity_pages=None):
        if capacity_pages is not None and capacity_pages < 0:
            raise ConfigurationError(
                "shared cache capacity cannot be negative")
        self.capacity_pages = capacity_pages
        self._pages = OrderedDict()   # (pid, version) -> page object
        self._lock = InstrumentedLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0

    def __len__(self):
        return len(self._pages)

    def get(self, page_id, version):
        """The decoded page for ``(page_id, version)``, or ``None``."""
        key = (page_id, version)
        with self._lock:
            page = self._pages.get(key)
            if page is not None:
                self._pages.move_to_end(key)
                self.hits += 1
                return page
            self.misses += 1
            return None

    def put(self, page_id, version, page):
        """Insert a verified decoded page; evicts LRU entries past
        capacity.  Idempotent for concurrent inserters."""
        if self.capacity_pages == 0:
            return
        key = (page_id, version)
        with self._lock:
            if key in self._pages:
                self._pages.move_to_end(key)
                return
            self._pages[key] = page
            self.insertions += 1
            if self.capacity_pages is not None:
                while len(self._pages) > self.capacity_pages:
                    self._pages.popitem(last=False)
                    self.evictions += 1

    def hit_rate(self):
        """Cross-query hit rate (exact: counters mutate under the lock)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def contention(self):
        """Lock-contention counters for the service stats endpoint."""
        return self._lock.stats()

    def stats(self):
        """JSON-ready snapshot of the cache counters."""
        return {
            "resident_pages": len(self._pages),
            "capacity_pages": self.capacity_pages,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate(),
            "insertions": self.insertions,
            "evictions": self.evictions,
            "lock": self.contention(),
        }

    def drop_version(self, version):
        """Evict every entry cached under ``version``.

        The MVCC reclamation path calls this when a topology version
        (or a retired file-backed base after an in-place compaction)
        loses its last pin: the entries can never be probed again, so
        aging them out of the LRU would only waste capacity.  Returns
        the number of entries dropped.
        """
        with self._lock:
            stale = [key for key in self._pages if key[1] == version]
            for key in stale:
                del self._pages[key]
            self.evictions += len(stale)
            return len(stale)

    def clear(self):
        """Drop every entry (keeps counters; used by tests and drains)."""
        with self._lock:
            self._pages.clear()
