"""Run results: algorithm output plus simulated performance counters."""

import dataclasses
from typing import Dict, List, Optional

import numpy as np


@dataclasses.dataclass
class RoundStats:
    """Counters for one engine round (one BFS level / one PR iteration)."""

    round_index: int
    description: str
    pages_dispatched: int = 0
    pages_from_cache: int = 0
    pages_from_buffer: int = 0
    pages_from_storage: int = 0
    bytes_streamed: int = 0
    edges_traversed: int = 0
    active_vertices: int = 0
    start_time: float = 0.0
    end_time: float = 0.0

    @property
    def elapsed(self):
        return self.end_time - self.start_time


@dataclasses.dataclass
class RunResult:
    """Everything a :class:`~repro.core.engine.GTSEngine` run produces.

    ``values`` holds the algorithm's output vectors (e.g. ``{"level": ...}``
    for BFS, ``{"rank": ...}`` for PageRank).  ``elapsed_seconds`` is the
    *simulated* wall-clock of the run on the configured machine — the
    quantity the paper's figures plot.  ``wall_seconds`` is the real time
    this process spent computing, reported separately so nobody mistakes
    one for the other.
    """

    algorithm: str
    dataset: str
    values: Dict[str, np.ndarray]
    elapsed_seconds: float
    wall_seconds: float
    num_rounds: int
    rounds: List[RoundStats]
    pages_streamed: int = 0
    bytes_streamed: int = 0
    storage_bytes_read: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    mm_buffer_hits: int = 0
    mm_buffer_misses: int = 0
    transfer_busy_seconds: float = 0.0
    kernel_busy_seconds: float = 0.0
    #: Sum of per-stream kernel occupancy (what a Figure 4-style stream
    #: profile shows); exceeds ``kernel_busy_seconds`` because one kernel
    #: alone underutilises the device.
    kernel_stream_seconds: float = 0.0
    kernel_invocations: int = 0
    edges_traversed: int = 0
    num_gpus: int = 1
    num_streams: int = 1
    strategy: str = ""
    engine: str = "GTS"
    notes: Optional[str] = None
    #: Figure 4-style ASCII stream timeline (populated when the engine
    #: runs with ``tracing=True``).
    timeline: Optional[str] = None

    @property
    def cache_hit_rate(self):
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def transfer_to_kernel_ratio(self):
        """The paper's Table 1 quantity: transfer time : kernel time.

        Returned as a single float ``transfer / kernel`` so ``0.33`` reads
        as the paper's "1:3" and ``2.0`` as "2:1".  Kernel time here is
        device-level busy time (true kernel work at the aggregate rate);
        ``kernel_stream_seconds`` holds the per-stream occupancy view.
        """
        if self.kernel_busy_seconds <= 0:
            return float("inf") if self.transfer_busy_seconds > 0 else 0.0
        return self.transfer_busy_seconds / self.kernel_busy_seconds

    def mteps(self):
        """Millions of traversed edges per simulated second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.edges_traversed / self.elapsed_seconds / 1e6

    def summary(self):
        """One-line report used by examples and benches."""
        return (
            "%s on %s [%s, %d GPU(s), %d stream(s)]: %.6f s simulated, "
            "%d rounds, %d pages streamed, cache hit rate %.1f%%"
            % (self.algorithm, self.dataset, self.strategy or self.engine,
               self.num_gpus, self.num_streams, self.elapsed_seconds,
               self.num_rounds, self.pages_streamed,
               100.0 * self.cache_hit_rate)
        )
