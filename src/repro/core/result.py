"""Run results: algorithm output plus simulated performance counters."""

import dataclasses
from typing import Dict, List, Optional

import numpy as np


@dataclasses.dataclass
class RoundStats:
    """Counters for one engine round (one BFS level / one PR iteration)."""

    round_index: int
    description: str
    pages_dispatched: int = 0
    pages_from_cache: int = 0
    pages_from_buffer: int = 0
    pages_from_storage: int = 0
    bytes_streamed: int = 0
    edges_traversed: int = 0
    active_vertices: int = 0
    start_time: float = 0.0
    end_time: float = 0.0

    @property
    def elapsed(self):
        return self.end_time - self.start_time


@dataclasses.dataclass
class RunResult:
    """Everything a :class:`~repro.core.engine.GTSEngine` run produces.

    ``values`` holds the algorithm's output vectors (e.g. ``{"level": ...}``
    for BFS, ``{"rank": ...}`` for PageRank).  ``elapsed_seconds`` is the
    *simulated* wall-clock of the run on the configured machine — the
    quantity the paper's figures plot.  ``wall_seconds`` is the real time
    this process spent computing, reported separately so nobody mistakes
    one for the other.
    """

    algorithm: str
    dataset: str
    values: Dict[str, np.ndarray]
    elapsed_seconds: float
    wall_seconds: float
    num_rounds: int
    rounds: List[RoundStats]
    pages_streamed: int = 0
    bytes_streamed: int = 0
    storage_bytes_read: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    mm_buffer_hits: int = 0
    mm_buffer_misses: int = 0
    #: Host page-pool counters (file-backed databases only; both stay 0
    #: for eager in-memory databases).
    pool_hits: int = 0
    pool_misses: int = 0
    #: Database-level sorted-scatter index counters (full-scan kernels
    #: and plan builds; a hit means an argsort was skipped).
    scatter_hits: int = 0
    scatter_misses: int = 0
    #: Cross-query shared-cache traffic observed during this run (zero
    #: unless a :class:`~repro.core.cache.SharedPageCache` was attached;
    #: a hit means a disk read *and* a byte-level parse were skipped).
    #: Exact for serial runs; under concurrent service queries the
    #: interval attributes the whole shared ledger's movement.
    shared_hits: int = 0
    shared_misses: int = 0
    #: Zero-copy store traffic (``mode="mmap"`` file-backed databases
    #: only): a hit decoded straight from an already-verified mapped
    #: region; a miss paid first-touch verification or fell back to the
    #: copy read path.
    mmap_hits: int = 0
    mmap_misses: int = 0
    transfer_busy_seconds: float = 0.0
    kernel_busy_seconds: float = 0.0
    #: Sum of per-stream kernel occupancy (what a Figure 4-style stream
    #: profile shows); exceeds ``kernel_busy_seconds`` because one kernel
    #: alone underutilises the device.
    kernel_stream_seconds: float = 0.0
    kernel_invocations: int = 0
    edges_traversed: int = 0
    num_gpus: int = 1
    num_streams: int = 1
    strategy: str = ""
    cache_policy: str = "lru"
    #: Which round-execution path actually ran: "paged" or "batched".
    execution: str = "paged"
    #: Host compute backend the engine ran with: "serial" or "process".
    backend: str = "serial"
    engine: str = "GTS"
    notes: Optional[str] = None
    #: Figure 4-style ASCII stream timeline (populated when the engine
    #: runs with ``tracing=True``).
    timeline: Optional[str] = None
    #: Structured event stream (a :class:`repro.obs.events.TraceRecorder`)
    #: when the engine ran with ``tracing=True``; feed it to
    #: :func:`repro.obs.write_chrome_trace` for a Perfetto-loadable file.
    trace: Optional[object] = None
    #: Fault-injection accounting (:meth:`repro.faults.FaultInjector.stats`
    #: plus per-device counters) when the run had a fault plan; ``None``
    #: for fault-free runs.
    fault_stats: Optional[Dict] = None
    #: Host-runtime profile (a :class:`repro.obs.host.HostProfile`) when
    #: the engine ran with ``host_profile=True``: per-phase wall-clock,
    #: tracemalloc peak and real I/O counters.  ``None`` otherwise.
    host_profile: Optional[object] = None
    #: Caller-supplied identifier when the run was submitted through the
    #: service layer (``None`` for one-shot runs); tags traces, metrics
    #: and the ``--json`` payload.
    query_id: Optional[str] = None
    #: Topology version the query executed against.  Under the service's
    #: MVCC path this is the version pinned at submit time — concurrent
    #: update batches bump the head but never this run's view.
    snapshot_version: int = 0

    def analyze(self):
        """Trace analytics for this run: lane occupancy, the
        transfer/kernel overlap-hiding ratio, per-round category
        attribution and the critical path.

        Requires the engine to have run with ``tracing=True`` (the
        analysis consumes :attr:`trace`); the report is computed once
        and cached on the result.  Returns a
        :class:`repro.obs.analyze.TraceAnalysis`.
        """
        cached = getattr(self, "_analysis", None)
        if cached is None:
            from repro.obs.analyze import analyze_trace

            cached = self._analysis = analyze_trace(self.trace)
        return cached

    def round_profiles(self):
        """Per-round :class:`repro.obs.analyze.RoundProfile` time series
        (storage/transfer/kernel/sync attribution, cache traffic and the
        round's critical lane).  Traced runs only."""
        return self.analyze().rounds

    @property
    def cache_hit_rate(self):
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def mm_buffer_hit_rate(self):
        total = self.mm_buffer_hits + self.mm_buffer_misses
        return self.mm_buffer_hits / total if total else 0.0

    @property
    def pool_hit_rate(self):
        total = self.pool_hits + self.pool_misses
        return self.pool_hits / total if total else 0.0

    @property
    def shared_hit_rate(self):
        """Cross-query shared-cache hit rate seen during this run."""
        total = self.shared_hits + self.shared_misses
        return self.shared_hits / total if total else 0.0

    @property
    def mmap_hit_rate(self):
        """Zero-copy hit rate of the mmap page store during this run."""
        total = self.mmap_hits + self.mmap_misses
        return self.mmap_hits / total if total else 0.0

    @property
    def transfer_to_kernel_ratio(self):
        """The paper's Table 1 quantity: transfer time : kernel time.

        Returned as a single float ``transfer / kernel`` so ``0.33`` reads
        as the paper's "1:3" and ``2.0`` as "2:1".  Kernel time here is
        device-level busy time (true kernel work at the aggregate rate);
        ``kernel_stream_seconds`` holds the per-stream occupancy view.
        """
        if self.kernel_busy_seconds <= 0:
            return float("inf") if self.transfer_busy_seconds > 0 else 0.0
        return self.transfer_busy_seconds / self.kernel_busy_seconds

    def mteps(self):
        """Millions of traversed edges per simulated second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.edges_traversed / self.elapsed_seconds / 1e6

    def summary(self):
        """One-line report used by examples and benches."""
        ratio = self.transfer_to_kernel_ratio
        pool = ""
        if self.pool_hits + self.pool_misses:
            pool = ", page-pool hit rate %.1f%%" % (
                100.0 * self.pool_hit_rate)
        if self.mmap_hits + self.mmap_misses:
            pool += ", mmap hit rate %.1f%%" % (100.0 * self.mmap_hit_rate)
        if self.fault_stats:
            pool += ", %d fault(s) injected (%d retries)" % (
                self.fault_stats.get("faults_injected", 0),
                self.fault_stats.get("retries", 0))
        return (
            "%s on %s [%s, %d GPU(s), %d stream(s)]: %.6f s simulated, "
            "%d rounds, %d pages streamed, cache hit rate %.1f%%, "
            "mm-buffer hit rate %.1f%%%s, transfer:kernel %s"
            % (self.algorithm, self.dataset, self.strategy or self.engine,
               self.num_gpus, self.num_streams, self.elapsed_seconds,
               self.num_rounds, self.pages_streamed,
               100.0 * self.cache_hit_rate,
               100.0 * self.mm_buffer_hit_rate, pool,
               "inf" if ratio == float("inf") else "%.2f" % ratio)
        )

    def to_dict(self, include_values=False):
        """JSON-ready dict of the run (the CLI's ``--json`` payload).

        Value arrays are summarised (dtype/size/min/max) unless
        ``include_values`` is set; the trace recorder and the ASCII
        timeline are always left out — export those with
        :mod:`repro.obs.exporters`.
        """
        out = {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "engine": self.engine,
            "strategy": self.strategy,
            "cache_policy": self.cache_policy,
            "elapsed_seconds": self.elapsed_seconds,
            "wall_seconds": self.wall_seconds,
            "num_rounds": self.num_rounds,
            "num_gpus": self.num_gpus,
            "num_streams": self.num_streams,
            "pages_streamed": self.pages_streamed,
            "bytes_streamed": self.bytes_streamed,
            "storage_bytes_read": self.storage_bytes_read,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "mm_buffer_hits": self.mm_buffer_hits,
            "mm_buffer_misses": self.mm_buffer_misses,
            "mm_buffer_hit_rate": self.mm_buffer_hit_rate,
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
            "pool_hit_rate": self.pool_hit_rate,
            "scatter_hits": self.scatter_hits,
            "scatter_misses": self.scatter_misses,
            "shared_hits": self.shared_hits,
            "shared_misses": self.shared_misses,
            "shared_hit_rate": self.shared_hit_rate,
            "mmap_hits": self.mmap_hits,
            "mmap_misses": self.mmap_misses,
            "mmap_hit_rate": self.mmap_hit_rate,
            "query_id": self.query_id,
            "snapshot_version": self.snapshot_version,
            "execution": self.execution,
            "backend": self.backend,
            "transfer_busy_seconds": self.transfer_busy_seconds,
            "kernel_busy_seconds": self.kernel_busy_seconds,
            "kernel_stream_seconds": self.kernel_stream_seconds,
            "kernel_invocations": self.kernel_invocations,
            "edges_traversed": self.edges_traversed,
            "mteps": self.mteps(),
            "transfer_to_kernel_ratio": (
                None if self.kernel_busy_seconds <= 0
                else self.transfer_to_kernel_ratio),
            "notes": self.notes,
            "fault_stats": self.fault_stats,
            "rounds": [
                {
                    "round_index": r.round_index,
                    "description": r.description,
                    "pages_dispatched": r.pages_dispatched,
                    "pages_from_cache": r.pages_from_cache,
                    "pages_from_buffer": r.pages_from_buffer,
                    "pages_from_storage": r.pages_from_storage,
                    "bytes_streamed": r.bytes_streamed,
                    "edges_traversed": r.edges_traversed,
                    "active_vertices": r.active_vertices,
                    "start_time": r.start_time,
                    "end_time": r.end_time,
                    "elapsed": r.elapsed,
                }
                for r in self.rounds
            ],
        }
        values = {}
        for key, array in self.values.items():
            array = np.asarray(array)
            if include_values:
                values[key] = array.tolist()
            else:
                summary = {"dtype": str(array.dtype),
                           "size": int(array.size)}
                if array.size:
                    summary["min"] = array.min().item()
                    summary["max"] = array.max().item()
                values[key] = summary
        out["values"] = values
        return out
