"""Asynchronous multi-stream dispatch (Section 3.2, Figure 3).

GTS assigns topology pages to GPU streams round-robin; within a stream
the copy and the kernel serialize, while across streams kernels overlap
(bounded by the GPU's aggregate compute capacity) and copies contend on
the single host-to-device copy engine.  :class:`StreamScheduler` owns
exactly that booking logic, so the engine's round loop stays about
*what* to dispatch and this module about *when* it runs.
"""

from repro.errors import ConfigurationError


class StreamScheduler:
    """Books per-page transfer and kernel activities on one machine run.

    Parameters
    ----------
    runtime:
        The :class:`~repro.hardware.machine.MachineRuntime` whose GPU
        timelines are booked.
    """

    def __init__(self, runtime):
        self.runtime = runtime
        self._dispatch_count = [0] * runtime.num_gpus

    def _next_slot(self, gpu):
        """Round-robin stream assignment, as in Figure 3."""
        index = self._dispatch_count[gpu.index] % gpu.num_streams
        self._dispatch_count[gpu.index] += 1
        return gpu.streams.slots[index]

    def dispatch_cached(self, gpu_index, earliest, lane_steps,
                        cycles_per_lane_step):
        """Book a kernel for a page already resident in the GPU cache
        (Algorithm 1 line 17: no transfer).  Returns the kernel end."""
        gpu = self.runtime.gpus[gpu_index]
        slot = self._next_slot(gpu)
        start = max(earliest, slot.available_at)
        return gpu.book_kernel(slot, start, lane_steps,
                               cycles_per_lane_step)

    def dispatch_streamed(self, gpu_index, ready_time, copy_bytes,
                          lane_steps, cycles_per_lane_step):
        """Book the async copy + kernel pair for a page being streamed
        (Algorithm 1 lines 19-21 / 24-26).

        ``ready_time`` is when the page's bytes are available in main
        memory (after any SSD fetch).  The copy starts once the page is
        ready, the stream's previous work is done, and the copy engine
        frees up; the kernel follows the copy on the same stream.
        Returns ``(copy_end, kernel_end)``.
        """
        if copy_bytes < 0:
            raise ConfigurationError("copy_bytes cannot be negative")
        gpu = self.runtime.gpus[gpu_index]
        slot = self._next_slot(gpu)
        earliest = max(ready_time, slot.available_at)
        copy_start, copy_end = gpu.copy_engine.book(
            earliest, self.runtime.pcie.stream_copy_time(copy_bytes))
        gpu.bytes_received += copy_bytes
        if self.runtime.recorder is not None:
            self.runtime.recorder.interval(
                "h2d_copy", gpu.lane, "copy engine",
                copy_start, copy_end, bytes=copy_bytes)
        kernel_end = gpu.book_kernel(slot, copy_end, lane_steps,
                                     cycles_per_lane_step)
        return copy_end, kernel_end

    def dispatched_pages(self, gpu_index=None):
        """How many pages have been dispatched (per GPU or total)."""
        if gpu_index is None:
            return sum(self._dispatch_count)
        return self._dispatch_count[gpu_index]
