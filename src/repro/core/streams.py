"""Asynchronous multi-stream dispatch (Section 3.2, Figure 3).

GTS assigns topology pages to GPU streams round-robin; within a stream
the copy and the kernel serialize, while across streams kernels overlap
(bounded by the GPU's aggregate compute capacity) and copies contend on
the single host-to-device copy engine.  :class:`StreamScheduler` owns
exactly that booking logic, so the engine's round loop stays about
*what* to dispatch and this module about *when* it runs.
"""

import numpy as np

from repro.errors import ConfigurationError, RetryExhaustedError


class StreamScheduler:
    """Books per-page transfer and kernel activities on one machine run.

    Parameters
    ----------
    runtime:
        The :class:`~repro.hardware.machine.MachineRuntime` whose GPU
        timelines are booked.
    fault_injector:
        Optional :class:`~repro.faults.FaultInjector`.  When installed,
        streamed dispatches consult it for copy-engine errors (absorbed
        by retry + backoff booked on the copy engine) and stream stalls
        (a fixed kernel-launch delay); ``None`` keeps the fault-free
        fast path untouched.
    """

    def __init__(self, runtime, fault_injector=None, host_profiler=None):
        self.runtime = runtime
        self.fault_injector = fault_injector
        self.host_profiler = host_profiler
        self._dispatch_count = [0] * runtime.num_gpus

    def _next_slot(self, gpu):
        """Round-robin stream assignment, as in Figure 3."""
        index = self._dispatch_count[gpu.index] % gpu.num_streams
        self._dispatch_count[gpu.index] += 1
        return gpu.streams.slots[index]

    def dispatch_cached(self, gpu_index, earliest, lane_steps,
                        cycles_per_lane_step, page_id=None):
        """Book a kernel for a page already resident in the GPU cache
        (Algorithm 1 line 17: no transfer).  Returns the kernel end."""
        gpu = self.runtime.gpus[gpu_index]
        slot = self._next_slot(gpu)
        start = max(earliest, slot.available_at)
        if self.fault_injector is not None and page_id is not None:
            start += self._stall(gpu, page_id, start)
        return gpu.book_kernel(slot, start, lane_steps,
                               cycles_per_lane_step)

    def dispatch_streamed(self, gpu_index, ready_time, copy_bytes,
                          lane_steps, cycles_per_lane_step, page_id=None):
        """Book the async copy + kernel pair for a page being streamed
        (Algorithm 1 lines 19-21 / 24-26).

        ``ready_time`` is when the page's bytes are available in main
        memory (after any SSD fetch).  The copy starts once the page is
        ready, the stream's previous work is done, and the copy engine
        frees up; the kernel follows the copy on the same stream.
        Returns ``(copy_end, kernel_end)``.
        """
        if copy_bytes < 0:
            raise ConfigurationError("copy_bytes cannot be negative")
        gpu = self.runtime.gpus[gpu_index]
        slot = self._next_slot(gpu)
        earliest = max(ready_time, slot.available_at)
        if self.fault_injector is not None and page_id is not None:
            copy_end = self._book_copy_faulted(gpu, page_id, earliest,
                                               copy_bytes)
            kernel_earliest = copy_end + self._stall(gpu, page_id,
                                                     copy_end)
        else:
            copy_start, copy_end = gpu.copy_engine.book(
                earliest, self.runtime.pcie.stream_copy_time(copy_bytes))
            gpu.bytes_received += copy_bytes
            if self.runtime.recorder is not None:
                self.runtime.recorder.interval(
                    "h2d_copy", gpu.lane, "copy engine",
                    copy_start, copy_end, bytes=copy_bytes)
            kernel_earliest = copy_end
        kernel_end = gpu.book_kernel(slot, kernel_earliest, lane_steps,
                                     cycles_per_lane_step)
        return copy_end, kernel_end

    def _book_copy_faulted(self, gpu, page_id, earliest, copy_bytes):
        """Book the H2D copy under the fault injector; returns copy end.

        A faulted attempt costs the full copy time (the engine moved the
        bytes before the error surfaced) plus its backoff, both on the
        copy engine — everything queued behind it on that GPU waits.
        """
        injector = self.fault_injector
        recorder = self.runtime.recorder
        duration = self.runtime.pcie.stream_copy_time(copy_bytes)
        retry = injector.retry
        for attempt in range(retry.max_attempts):
            copy_start, copy_end = gpu.copy_engine.book(earliest, duration)
            if not injector.copy_fault(gpu.index, page_id, attempt):
                gpu.bytes_received += copy_bytes
                if recorder is not None:
                    recorder.interval(
                        "h2d_copy", gpu.lane, "copy engine",
                        copy_start, copy_end, bytes=copy_bytes,
                        attempt=attempt)
                return copy_end
            if attempt + 1 >= retry.max_attempts:
                break
            backoff = retry.backoff(attempt)
            _, earliest = gpu.copy_engine.book(copy_end, backoff)
            injector.note_retry(backoff)
            if recorder is not None:
                recorder.interval(
                    "fault", gpu.lane, "copy engine", copy_start,
                    copy_end, page=page_id, kind="copy_error",
                    attempt=attempt)
                recorder.interval(
                    "retry", gpu.lane, "copy engine", copy_end,
                    earliest, page=page_id, backoff=backoff)
        raise RetryExhaustedError(
            "H2D copy of page %d to GPU %d failed %d attempt(s)"
            % (page_id, gpu.index, retry.max_attempts),
            site="h2d_copy", attempts=retry.max_attempts,
            page_id=page_id)

    def _stall(self, gpu, page_id, at_time):
        """Stream-stall delay before the kernel launch (0.0 normally)."""
        stall = self.fault_injector.stall_seconds(gpu.index, page_id)
        if stall and self.runtime.recorder is not None:
            self.runtime.recorder.interval(
                "fault", gpu.lane, "copy engine", at_time,
                at_time + stall, page=page_id, kind="stream_stall")
        return stall

    def dispatch_round(self, page_ids, assignments, copy_bytes, lane_steps,
                       cycles_per_lane_step, caches, wa_ready, round_start,
                       fetch, stats):
        """Book a whole round of pages from precomputed per-page arrays.

        ``assignments`` is the strategy's per-page GPU tuple list,
        ``copy_bytes`` / ``lane_steps`` are arrays aligned with
        ``page_ids`` (which must be duplicate-free — the engine's rounds
        are deduped), ``fetch(pid)`` resolves a page's main-memory ready
        time, and ``stats`` is the round's :class:`RoundStats`.  Cache
        lookups and admits are resolved in bulk per GPU first (their
        decisions are time-independent); the booking loop then replays
        pages in exactly the per-page path's order — page-major, GPU
        inner — so every stateful timeline (copy engines, stream slots,
        MM buffer, storage channels) books the same intervals and the
        simulated clock comes out bit-identical.
        """
        if self.host_profiler is not None:
            self.host_profiler.push("dispatch")
            try:
                return self._dispatch_round(
                    page_ids, assignments, copy_bytes, lane_steps,
                    cycles_per_lane_step, caches, wa_ready, round_start,
                    fetch, stats)
            finally:
                self.host_profiler.pop()
        return self._dispatch_round(
            page_ids, assignments, copy_bytes, lane_steps,
            cycles_per_lane_step, caches, wa_ready, round_start, fetch,
            stats)

    def _dispatch_round(self, page_ids, assignments, copy_bytes,
                        lane_steps, cycles_per_lane_step, caches,
                        wa_ready, round_start, fetch, stats):
        runtime = self.runtime
        num_gpus = runtime.num_gpus
        earliest = [max(round_start, wa_ready[g]) for g in range(num_gpus)]
        pids = (page_ids.tolist() if hasattr(page_ids, "tolist")
                else [int(pid) for pid in page_ids])
        sequences = [[] for _ in range(num_gpus)]
        for j, gpus in enumerate(assignments):
            for g in gpus:
                sequences[g].append(j)
        hit_lists = [
            caches[g].resolve_round([pids[j] for j in seq], ts=earliest[g],
                                    assume_distinct=True)
            for g, seq in enumerate(sequences)
        ]
        steps_arr = np.asarray(lane_steps, dtype=np.float64)
        bytes_arr = np.asarray(copy_bytes, dtype=np.float64)
        if runtime.recorder is None and not runtime.tracing:
            page_ready, per_page_fetch = self._resolve_fetches(
                pids, sequences, hit_lists, fetch)
            if per_page_fetch:
                hits = [dict(zip(seq, hit_list))
                        for seq, hit_list in zip(sequences, hit_lists)]
                self._book_round_paged_order(
                    pids, assignments, bytes_arr, steps_arr,
                    cycles_per_lane_step, hits, earliest, wa_ready,
                    fetch, stats)
            else:
                self._book_round_fast(
                    pids, sequences, hit_lists, bytes_arr, steps_arr,
                    cycles_per_lane_step, earliest, wa_ready, page_ready,
                    stats)
            return
        hits = [dict(zip(seq, hit_list))
                for seq, hit_list in zip(sequences, hit_lists)]
        copy_bytes = [int(b) for b in copy_bytes]
        lane_steps = [float(s) for s in lane_steps]
        for j, pid in enumerate(pids):
            steps = lane_steps[j]
            for g in assignments[j]:
                if hits[g][j]:
                    stats.pages_from_cache += 1
                    self.dispatch_cached(
                        g, earliest[g], steps, cycles_per_lane_step,
                        page_id=pid)
                else:
                    ready = fetch(pid)
                    stats.bytes_streamed += copy_bytes[j]
                    self.dispatch_streamed(
                        g, max(ready, wa_ready[g]), copy_bytes[j],
                        steps, cycles_per_lane_step, page_id=pid)

    def _resolve_fetches(self, pids, sequences, hit_lists, fetch):
        """Resolve every cache-missed page's main-memory ready time in
        bulk, when the engine's fetch closure supports it.

        Returns ``(page_ready, per_page_fetch)``: a per-page list of
        ready times (entries for cache-hit pages are meaningless) with
        ``per_page_fetch=False``, or ``(None, False)`` when no page
        misses at all, or ``(None, True)`` when misses exist but the
        closure cannot resolve them in bulk.  The set of pages needing a
        fetch — first cache miss on any GPU, in page order — is exactly
        the sequence the per-call path would fetch, so the bulk replay
        books the storage channels identically.
        """
        miss_any = np.zeros(len(pids), dtype=bool)
        for seq, hit_list in zip(sequences, hit_lists):
            if seq:
                seq_arr = np.asarray(seq, dtype=np.int64)
                miss_any[seq_arr[~np.asarray(hit_list, dtype=bool)]] = True
        positions = np.nonzero(miss_any)[0]
        if not len(positions):
            return None, False
        bulk = getattr(fetch, "bulk_ready", None)
        if bulk is None:
            return None, True
        readies = bulk(np.asarray(pids, dtype=np.int64)[positions])
        if readies is None:
            return None, True
        page_ready = np.zeros(len(pids), dtype=np.float64)
        page_ready[positions] = readies
        return page_ready.tolist(), False

    def _book_round_fast(self, pids, sequences, hit_lists, bytes_arr,
                         steps_arr, cycles_per_lane_step, earliest,
                         wa_ready, page_ready, stats):
        """GPU-major inlined booking for untraced rounds whose misses
        were all resolved up front.

        Once every miss's main-memory ready time is known, the per-GPU
        timelines (copy engine, compute capacity, stream slots) share no
        state across GPUs, so each GPU's bookings replay in one tight
        loop over plain locals.  Within a GPU the pages keep their
        page-major order, so the floating-point operations happen in
        exactly the per-call path's sequence and the simulated clock
        comes out bit-identical; per-page durations are precomputed with
        the same elementwise arithmetic the per-call helpers use.
        """
        runtime = self.runtime
        pcie = runtime.pcie
        ct_all = (pcie.latency + bytes_arr / pcie.stream_bandwidth).tolist()
        bytes_list = bytes_arr.astype(np.int64).tolist()
        from_cache = 0
        bytes_streamed = 0
        for g, gpu in enumerate(runtime.gpus):
            seq = sequences[g]
            if not seq:
                continue
            hit_list = hit_lists[g]
            spec = gpu.spec
            hz = spec.effective_hz
            stream_rate = hz * spec.single_stream_fraction
            sd_all = (spec.kernel_launch_overhead
                      + steps_arr * cycles_per_lane_step
                      / stream_rate).tolist()
            dd_all = (steps_arr * cycles_per_lane_step / hz).tolist()
            ce = gpu.copy_engine
            comp = gpu.compute
            slots = gpu.streams.slots
            ce_avail = ce.available_at
            ce_busy = ce.busy_time
            ce_n = ce.num_activities
            comp_avail = comp.available_at
            comp_busy = comp.busy_time
            comp_n = comp.num_activities
            slot_avail = [s.available_at for s in slots]
            slot_busy = [s.busy_time for s in slots]
            slot_n = [s.num_activities for s in slots]
            n_slots = len(slots)
            dc = self._dispatch_count[gpu.index]
            early = earliest[g]
            wa = wa_ready[g]
            k_inv = gpu.kernel_invocations
            k_busy = gpu.kernel_busy_time
            k_stream = gpu.kernel_stream_time
            gbytes = gpu.bytes_received
            for i, j in enumerate(seq):
                si = dc % n_slots
                dc += 1
                sa = slot_avail[si]
                sd = sd_all[j]
                dd = dd_all[j]
                if hit_list[i]:
                    from_cache += 1
                    kernel_earliest = early if early > sa else sa
                else:
                    ready = page_ready[j]
                    rt = ready if ready > wa else wa
                    copy_earliest = rt if rt > sa else sa
                    copy_start = (copy_earliest
                                  if copy_earliest > ce_avail else ce_avail)
                    ct = ct_all[j]
                    copy_end = copy_start + ct
                    ce_avail = copy_end
                    ce_busy += ct
                    ce_n += 1
                    cb = bytes_list[j]
                    gbytes += cb
                    bytes_streamed += cb
                    kernel_earliest = copy_end
                # book_kernel: device-capacity booking, then the stream
                # slot, then both timelines advance to the later end.
                cap_start = (kernel_earliest
                             if kernel_earliest > comp_avail else comp_avail)
                cap_end = cap_start + dd
                comp_avail = cap_end
                comp_busy += dd
                comp_n += 1
                stream_start = (kernel_earliest
                                if kernel_earliest > sa else sa)
                stream_end = stream_start + sd
                slot_busy[si] += sd
                slot_n[si] += 1
                slot_avail[si] = cap_end if cap_end > stream_end else stream_end
                k_inv += 1
                k_busy += dd
                k_stream += sd
            ce.available_at = ce_avail
            ce.busy_time = ce_busy
            ce.num_activities = ce_n
            comp.available_at = comp_avail
            comp.busy_time = comp_busy
            comp.num_activities = comp_n
            for slot, avail, busy, n in zip(slots, slot_avail,
                                            slot_busy, slot_n):
                slot.available_at = avail
                slot.busy_time = busy
                slot.num_activities = n
            self._dispatch_count[gpu.index] = dc
            gpu.kernel_invocations = k_inv
            gpu.kernel_busy_time = k_busy
            gpu.kernel_stream_time = k_stream
            gpu.bytes_received = gbytes
        stats.pages_from_cache += from_cache
        stats.bytes_streamed += bytes_streamed

    def _book_round_paged_order(self, pids, assignments, bytes_arr,
                                steps_arr, cycles_per_lane_step, hits,
                                earliest, wa_ready, fetch, stats):
        """Inlined booking loop for untraced runs whose misses still need
        a per-page ``fetch`` callback (non-bulk closures).

        This performs exactly the arithmetic of :meth:`dispatch_cached` /
        :meth:`dispatch_streamed` / ``GPURuntime.book_kernel`` /
        ``Resource.book``, in exactly the same order — page-major, GPU
        inner, so ``fetch`` fires in the per-call sequence — but with all
        timeline state hoisted into per-GPU dicts so a round of tens of
        thousands of bookings does not pay Python call overhead for each.
        Resource and counter state is written back at the end; because the
        sequence of floating-point operations is unchanged, every
        ``available_at`` / ``busy_time`` comes out bit-identical to the
        per-call path.
        """
        runtime = self.runtime
        pcie = runtime.pcie
        copy_bytes = bytes_arr.astype(np.int64).tolist()
        lane_steps = steps_arr.tolist()
        # Per-GPU hoisted timeline state:
        # [copy_avail, copy_busy, copy_n, comp_avail, comp_busy, comp_n,
        #  slot_avail, slot_busy, slot_n, stream_durs, device_durs,
        #  n_slots, dispatch_count, kernel counters..., bytes_received]
        gstate = []
        for gpu in runtime.gpus:
            spec = gpu.spec
            stream_rate = spec.effective_hz * spec.single_stream_fraction
            overhead = spec.kernel_launch_overhead
            hz = spec.effective_hz
            stream_durs = [overhead + s * cycles_per_lane_step / stream_rate
                           for s in lane_steps]
            device_durs = [s * cycles_per_lane_step / hz
                           for s in lane_steps]
            copy_times = [pcie.latency + b / pcie.stream_bandwidth
                          for b in copy_bytes]
            ce = gpu.copy_engine
            comp = gpu.compute
            slots = gpu.streams.slots
            gstate.append({
                "gpu": gpu,
                "ce": ce, "ce_avail": ce.available_at,
                "ce_busy": ce.busy_time, "ce_n": ce.num_activities,
                "comp": comp, "comp_avail": comp.available_at,
                "comp_busy": comp.busy_time, "comp_n": comp.num_activities,
                "slots": slots,
                "slot_avail": [s.available_at for s in slots],
                "slot_busy": [s.busy_time for s in slots],
                "slot_n": [s.num_activities for s in slots],
                "n_slots": len(slots),
                "dc": self._dispatch_count[gpu.index],
                "sd": stream_durs, "dd": device_durs, "ct": copy_times,
                "k_inv": gpu.kernel_invocations,
                "k_busy": gpu.kernel_busy_time,
                "k_stream": gpu.kernel_stream_time,
                "bytes": gpu.bytes_received,
                "early": earliest[gpu.index],
                "wa": wa_ready[gpu.index],
            })
        from_cache = 0
        bytes_streamed = 0
        for j, pid in enumerate(pids):
            for g in assignments[j]:
                st = gstate[g]
                slot_avail = st["slot_avail"]
                si = st["dc"] % st["n_slots"]
                st["dc"] += 1
                sa = slot_avail[si]
                sd = st["sd"][j]
                dd = st["dd"][j]
                if hits[g][j]:
                    from_cache += 1
                    early = st["early"]
                    kernel_earliest = early if early > sa else sa
                else:
                    ready = fetch(pid)
                    wa = st["wa"]
                    rt = ready if ready > wa else wa
                    copy_earliest = rt if rt > sa else sa
                    ce_avail = st["ce_avail"]
                    copy_start = (copy_earliest if copy_earliest > ce_avail
                                  else ce_avail)
                    ct = st["ct"][j]
                    copy_end = copy_start + ct
                    st["ce_avail"] = copy_end
                    st["ce_busy"] += ct
                    st["ce_n"] += 1
                    st["bytes"] += copy_bytes[j]
                    bytes_streamed += copy_bytes[j]
                    kernel_earliest = copy_end
                # book_kernel: device-capacity booking, then the stream
                # slot, then both timelines advance to the later end.
                comp_avail = st["comp_avail"]
                cap_start = (kernel_earliest if kernel_earliest > comp_avail
                             else comp_avail)
                cap_end = cap_start + dd
                st["comp_avail"] = cap_end
                st["comp_busy"] += dd
                st["comp_n"] += 1
                stream_start = (kernel_earliest if kernel_earliest > sa
                                else sa)
                stream_end = stream_start + sd
                st["slot_busy"][si] += sd
                st["slot_n"][si] += 1
                end = cap_end if cap_end > stream_end else stream_end
                slot_avail[si] = end
                st["k_inv"] += 1
                st["k_busy"] += dd
                st["k_stream"] += sd
        for st in gstate:
            gpu = st["gpu"]
            ce = st["ce"]
            ce.available_at = st["ce_avail"]
            ce.busy_time = st["ce_busy"]
            ce.num_activities = st["ce_n"]
            comp = st["comp"]
            comp.available_at = st["comp_avail"]
            comp.busy_time = st["comp_busy"]
            comp.num_activities = st["comp_n"]
            for slot, avail, busy, n in zip(st["slots"], st["slot_avail"],
                                            st["slot_busy"], st["slot_n"]):
                slot.available_at = avail
                slot.busy_time = busy
                slot.num_activities = n
            self._dispatch_count[gpu.index] = st["dc"]
            gpu.kernel_invocations = st["k_inv"]
            gpu.kernel_busy_time = st["k_busy"]
            gpu.kernel_stream_time = st["k_stream"]
            gpu.bytes_received = st["bytes"]
        stats.pages_from_cache += from_cache
        stats.bytes_streamed += bytes_streamed

    def dispatched_pages(self, gpu_index=None):
        """How many pages have been dispatched (per GPU or total)."""
        if gpu_index is None:
            return sum(self._dispatch_count)
        return self._dispatch_count[gpu_index]
