"""Micro-level parallel processing models (Section 6.2 and Appendix E).

GTS's macro-level contribution is page streaming; *within* a page the GPU
kernel can parallelise over the page's vertices and edges in different
ways.  The paper considers three techniques and evaluates them in
Figure 14:

* **edge-centric** (the VWC technique of Hong et al., PPoPP 2011): the 32
  threads of a (virtual) warp cooperatively walk one vertex's adjacency
  list.  A vertex of degree ``d`` occupies its warp for ``ceil(d / 32)``
  steps, so lane-steps (thread-cycles) are ``32 * ceil(d / 32)`` — there
  is some ALU waste on the last partial step but load balance is good.
* **vertex-centric**: one thread per vertex walks the whole adjacency
  list.  A warp of 32 consecutive vertices runs for ``max(d)`` steps
  (SIMT lock-step), so a single high-degree vertex stalls 31 lanes — this
  is the load imbalance that makes vertex-centric collapse on dense
  pages.
* **hybrid**: pick per page whichever of the two models is cheaper for
  that page's density (the paper applies "a different micro-level
  technique to each page depending on the density of the page").

These functions compute *lane-steps*: total thread-cycles consumed across
the device's lanes.  The GPU spec converts lane-steps to seconds.  All
inputs are the page's actual per-record degrees (with inactive records
contributing a scan check), so Figure 14's crossover emerges from the real
degree distribution rather than from fitted curves.
"""

import enum

import numpy as np

from repro.errors import ConfigurationError

#: SIMT width: threads per (virtual) warp.
WARP_SIZE = 32


class MicroTechnique(enum.Enum):
    """Which intra-page parallelisation model the kernel uses."""

    VERTEX_CENTRIC = "vertex"
    EDGE_CENTRIC = "edge"
    HYBRID = "hybrid"

    @classmethod
    def parse(cls, value):
        """Accept an enum member or its string value."""
        if isinstance(value, cls):
            return value
        for member in cls:
            if member.value == value:
                return member
        raise ConfigurationError("unknown micro technique %r" % (value,))


def edge_centric_lane_steps(active_degrees, num_records):
    """Lane-steps under the VWC / edge-centric model.

    ``active_degrees`` are the adjacency-list sizes of the records whose
    vertex actually does work this round (for PageRank-like kernels that
    is every record; for BFS-like kernels only the frontier).  Every
    record, active or not, costs one warp-step for the level check
    (Algorithm 2 scans all records in the page).
    """
    active_degrees = np.asarray(active_degrees, dtype=np.int64)
    expand = WARP_SIZE * np.ceil(active_degrees / WARP_SIZE).sum()
    scan = WARP_SIZE * np.ceil(num_records / WARP_SIZE)
    return float(expand + scan)


def vertex_centric_lane_steps(degrees, active_mask=None):
    """Lane-steps under the vertex-centric model.

    Records are grouped into warps of 32 consecutive slots; each warp
    runs for the *maximum* active degree among its lanes, and all 32
    lanes are occupied for that long.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if active_mask is not None:
        degrees = np.where(np.asarray(active_mask, dtype=bool), degrees, 0)
    if len(degrees) == 0:
        return 0.0
    pad = (-len(degrees)) % WARP_SIZE
    if pad:
        degrees = np.concatenate(
            [degrees, np.zeros(pad, dtype=np.int64)])
    per_warp_max = degrees.reshape(-1, WARP_SIZE).max(axis=1)
    # Each warp does at least the one-step scan of its records.
    per_warp_max = np.maximum(per_warp_max, 1)
    return float(WARP_SIZE * per_warp_max.sum())


def lane_steps(technique, degrees, active_mask=None):
    """Lane-steps for one page under ``technique``.

    Parameters
    ----------
    technique:
        A :class:`MicroTechnique` (or its string value).
    degrees:
        Per-record adjacency sizes for the whole page, in slot order.
    active_mask:
        Boolean mask of records doing real work this round; ``None``
        means all records are active (PageRank-like full scans).
    """
    technique = MicroTechnique.parse(technique)
    degrees = np.asarray(degrees, dtype=np.int64)
    if active_mask is None:
        active_degrees = degrees
    else:
        active_degrees = degrees[np.asarray(active_mask, dtype=bool)]

    if technique is MicroTechnique.EDGE_CENTRIC:
        return edge_centric_lane_steps(active_degrees, len(degrees))
    if technique is MicroTechnique.VERTEX_CENTRIC:
        return vertex_centric_lane_steps(degrees, active_mask)
    # Hybrid: whichever model is cheaper for this page's shape.
    return min(
        edge_centric_lane_steps(active_degrees, len(degrees)),
        vertex_centric_lane_steps(degrees, active_mask),
    )


# ----------------------------------------------------------------------
# Segment-wise variants: many pages at once for the batched fast path.
#
# ``rec_indptr`` delimits each page's records inside flat page-major
# ``degrees`` / ``active_mask`` arrays; each function returns a float64
# array of per-page lane-steps.  Every quantity involved is an
# integer-valued float64 (ceil sums, warp maxima), so the vectorized
# reductions are bit-identical to calling the per-page functions in a
# loop — that exactness is what lets the batched execution path report
# the same simulated timings as the paged one.
# ----------------------------------------------------------------------

def _segment_float_sum(values, indptr):
    """Per-segment sums with empty segments yielding 0 (raw ``reduceat``
    would return ``values[start]`` for an empty segment instead)."""
    counts = np.diff(indptr)
    out = np.zeros(len(counts), dtype=np.float64)
    nonempty = counts > 0
    if len(values) and nonempty.any():
        out[nonempty] = np.add.reduceat(values, indptr[:-1][nonempty])
    return out


def segment_edge_centric_lane_steps(degrees, rec_indptr, active_mask=None):
    """Per-page :func:`edge_centric_lane_steps` over flat record arrays."""
    degrees = np.asarray(degrees, dtype=np.int64)
    per_record = np.ceil(degrees / WARP_SIZE)
    if active_mask is not None:
        per_record = np.where(
            np.asarray(active_mask, dtype=bool), per_record, 0.0)
    expand = _segment_float_sum(per_record, rec_indptr)
    num_records = np.diff(rec_indptr)
    scan = np.ceil(num_records / WARP_SIZE)
    return WARP_SIZE * expand + WARP_SIZE * scan


def segment_vertex_centric_lane_steps(degrees, rec_indptr, active_mask=None):
    """Per-page :func:`vertex_centric_lane_steps` over flat record arrays.

    Warps are formed from 32 consecutive slots *within* a page, so warp
    boundaries restart at every page's first record — ``maximum.reduceat``
    at the per-page warp starts reproduces the padded-reshape maxima of
    the per-page function (zero padding never changes a warp's maximum
    because every warp's first lane is a real record and the final
    ``max(•, 1)`` floors empty lanes anyway).
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if active_mask is not None:
        degrees = np.where(np.asarray(active_mask, dtype=bool), degrees, 0)
    counts = np.diff(rec_indptr)
    num_pages = len(counts)
    warps = (counts + WARP_SIZE - 1) // WARP_SIZE
    total_warps = int(warps.sum())
    if total_warps == 0:
        return np.zeros(num_pages, dtype=np.float64)
    warp_indptr = np.zeros(num_pages + 1, dtype=np.int64)
    np.cumsum(warps, out=warp_indptr[1:])
    # Warp w of page p starts at record rec_indptr[p] + 32 * w.
    local_warp = (np.arange(total_warps, dtype=np.int64)
                  - np.repeat(warp_indptr[:-1], warps))
    warp_starts = np.repeat(rec_indptr[:-1], warps) + WARP_SIZE * local_warp
    per_warp_max = np.maximum.reduceat(degrees, warp_starts)
    per_warp_max = np.maximum(per_warp_max, 1)
    return WARP_SIZE * _segment_float_sum(
        per_warp_max.astype(np.float64), warp_indptr)


def segment_lane_steps(technique, degrees, rec_indptr, active_mask=None):
    """Per-page :func:`lane_steps` over flat page-major record arrays."""
    technique = MicroTechnique.parse(technique)
    if technique is MicroTechnique.EDGE_CENTRIC:
        return segment_edge_centric_lane_steps(
            degrees, rec_indptr, active_mask)
    if technique is MicroTechnique.VERTEX_CENTRIC:
        return segment_vertex_centric_lane_steps(
            degrees, rec_indptr, active_mask)
    return np.minimum(
        segment_edge_centric_lane_steps(degrees, rec_indptr, active_mask),
        segment_vertex_centric_lane_steps(degrees, rec_indptr, active_mask),
    )
