"""Micro-level parallel processing models (Section 6.2 and Appendix E).

GTS's macro-level contribution is page streaming; *within* a page the GPU
kernel can parallelise over the page's vertices and edges in different
ways.  The paper considers three techniques and evaluates them in
Figure 14:

* **edge-centric** (the VWC technique of Hong et al., PPoPP 2011): the 32
  threads of a (virtual) warp cooperatively walk one vertex's adjacency
  list.  A vertex of degree ``d`` occupies its warp for ``ceil(d / 32)``
  steps, so lane-steps (thread-cycles) are ``32 * ceil(d / 32)`` — there
  is some ALU waste on the last partial step but load balance is good.
* **vertex-centric**: one thread per vertex walks the whole adjacency
  list.  A warp of 32 consecutive vertices runs for ``max(d)`` steps
  (SIMT lock-step), so a single high-degree vertex stalls 31 lanes — this
  is the load imbalance that makes vertex-centric collapse on dense
  pages.
* **hybrid**: pick per page whichever of the two models is cheaper for
  that page's density (the paper applies "a different micro-level
  technique to each page depending on the density of the page").

These functions compute *lane-steps*: total thread-cycles consumed across
the device's lanes.  The GPU spec converts lane-steps to seconds.  All
inputs are the page's actual per-record degrees (with inactive records
contributing a scan check), so Figure 14's crossover emerges from the real
degree distribution rather than from fitted curves.
"""

import enum

import numpy as np

from repro.errors import ConfigurationError

#: SIMT width: threads per (virtual) warp.
WARP_SIZE = 32


class MicroTechnique(enum.Enum):
    """Which intra-page parallelisation model the kernel uses."""

    VERTEX_CENTRIC = "vertex"
    EDGE_CENTRIC = "edge"
    HYBRID = "hybrid"

    @classmethod
    def parse(cls, value):
        """Accept an enum member or its string value."""
        if isinstance(value, cls):
            return value
        for member in cls:
            if member.value == value:
                return member
        raise ConfigurationError("unknown micro technique %r" % (value,))


def edge_centric_lane_steps(active_degrees, num_records):
    """Lane-steps under the VWC / edge-centric model.

    ``active_degrees`` are the adjacency-list sizes of the records whose
    vertex actually does work this round (for PageRank-like kernels that
    is every record; for BFS-like kernels only the frontier).  Every
    record, active or not, costs one warp-step for the level check
    (Algorithm 2 scans all records in the page).
    """
    active_degrees = np.asarray(active_degrees, dtype=np.int64)
    expand = WARP_SIZE * np.ceil(active_degrees / WARP_SIZE).sum()
    scan = WARP_SIZE * np.ceil(num_records / WARP_SIZE)
    return float(expand + scan)


def vertex_centric_lane_steps(degrees, active_mask=None):
    """Lane-steps under the vertex-centric model.

    Records are grouped into warps of 32 consecutive slots; each warp
    runs for the *maximum* active degree among its lanes, and all 32
    lanes are occupied for that long.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if active_mask is not None:
        degrees = np.where(np.asarray(active_mask, dtype=bool), degrees, 0)
    if len(degrees) == 0:
        return 0.0
    pad = (-len(degrees)) % WARP_SIZE
    if pad:
        degrees = np.concatenate(
            [degrees, np.zeros(pad, dtype=np.int64)])
    per_warp_max = degrees.reshape(-1, WARP_SIZE).max(axis=1)
    # Each warp does at least the one-step scan of its records.
    per_warp_max = np.maximum(per_warp_max, 1)
    return float(WARP_SIZE * per_warp_max.sum())


def lane_steps(technique, degrees, active_mask=None):
    """Lane-steps for one page under ``technique``.

    Parameters
    ----------
    technique:
        A :class:`MicroTechnique` (or its string value).
    degrees:
        Per-record adjacency sizes for the whole page, in slot order.
    active_mask:
        Boolean mask of records doing real work this round; ``None``
        means all records are active (PageRank-like full scans).
    """
    technique = MicroTechnique.parse(technique)
    degrees = np.asarray(degrees, dtype=np.int64)
    if active_mask is None:
        active_degrees = degrees
    else:
        active_degrees = degrees[np.asarray(active_mask, dtype=bool)]

    if technique is MicroTechnique.EDGE_CENTRIC:
        return edge_centric_lane_steps(active_degrees, len(degrees))
    if technique is MicroTechnique.VERTEX_CENTRIC:
        return vertex_centric_lane_steps(degrees, active_mask)
    # Hybrid: whichever model is cheaper for this page's shape.
    return min(
        edge_centric_lane_steps(active_degrees, len(degrees)),
        vertex_centric_lane_steps(degrees, active_mask),
    )
