"""Multiprocess host backend: persistent worker pools for sharded kernels.

``GTSEngine(backend="process")`` splits each full-scan round's segment
reduction — the ``reduceat`` over the round batch's scatter-ordered
edges, 50-75 % of the serial host time — across a pool of forked worker
processes.  The split is engineered so results are **bit-identical** to
the serial path:

* Segments never straddle a shard boundary, and a segment reduction is
  an independent left-to-right fold, so a shard-local ``reduceat``
  produces exactly the bytes the full-batch ``reduceat`` would.
* The per-element contribution math commutes with the gather (same
  inputs per element either way), so shards may gather first.
* The *ordered* state update (``np.add.at`` / ``np.minimum.at``) stays
  in the parent, applied over the complete per-segment partials in
  batch order — every rounding step matches serial execution.

Mechanics: pools are forked (``fork`` start method only — the shard
closure and its captured batch arrays are inherited, never pickled, and
workers share the parent's page-store ``mmap`` read-only for free).
Per round the parent copies the kernel's read-only vector into a
:class:`multiprocessing.shared_memory.SharedMemory` block, pokes each
worker over a pipe, and workers write their partials into a shared
output block at their segment offsets — two shm blocks total, zero
per-round serialisation.  ``start_round`` returns before workers
finish, so the parent overlaps simulated-time booking (``dispatch_round``)
with worker compute and only blocks in ``collect``.

Pools are cached in a :class:`WorkerPoolRegistry` keyed by
``(topology_version, kernel name, shard params, segment count)``; a
dynamic-update version bump shuts stale pools down.  The engine owns a
registry per run unless the service layer injects a shared one
(``GTSEngine(worker_pools=...)``), which it drains on shutdown.
"""

import atexit
import multiprocessing
import os
import threading
from multiprocessing import shared_memory

import numpy as np

from repro.errors import ConfigurationError

#: Seconds a round waits for one worker's ack before declaring the pool
#: wedged.  Generous: shards are pure NumPy over in-memory arrays.
_ROUND_TIMEOUT = 120.0


def default_workers():
    """Worker count when the caller does not choose: leave one core for
    the parent (it books simulated time while workers reduce), cap at 8
    — segment reduction stops scaling long before that on one socket."""
    return max(1, min(8, (os.cpu_count() or 1) - 1))


def shard_bounds(seg_starts, num_segments, num_edges, workers):
    """Split ``[0, num_segments)`` into ``workers`` contiguous shards
    balanced by *edge* count (segments are wildly skewed on power-law
    graphs, edges are the actual work).  Returns an int64 array of
    ``workers + 1`` monotone bounds; shards may be empty on tiny
    batches."""
    workers = max(1, int(workers))
    if workers == 1 or num_segments <= 1:
        return np.asarray([0, num_segments], dtype=np.int64)
    targets = (np.arange(1, workers, dtype=np.int64) * num_edges) // workers
    cuts = np.searchsorted(seg_starts, targets, side="left")
    bounds = np.concatenate(
        [[0], cuts, [num_segments]]).astype(np.int64, copy=False)
    return np.maximum.accumulate(np.clip(bounds, 0, num_segments))


def _worker_loop(conn, shard_fn, vector, sums, s0, s1):
    """Worker body: serve rounds until the stop sentinel.

    Runs in a forked child, so ``shard_fn`` (with its captured batch
    arrays), the read-only page-store ``mmap`` and the two shm-backed
    arrays all arrived by inheritance — the shared mappings stay shared
    after fork, so the parent's per-round vector writes are visible here
    and the partials written to ``sums[s0:s1]`` are visible there.
    Nothing is ever pickled or re-attached by name."""
    try:
        while True:
            token = conn.recv()
            if token is None:
                break
            try:
                sums[s0:s1] = shard_fn(vector, s0, s1)
                conn.send(("ok", None))
            except Exception as exc:  # surfaced in collect()
                conn.send(("err", "%s: %s" % (type(exc).__name__, exc)))
    except (EOFError, KeyboardInterrupt):  # parent died / interrupt
        pass


class WorkerPool:
    """A persistent pool of forked workers for one shard function.

    The pool is built once per ``(topology, kernel, params, segments)``
    combination and reused every round; per-round cost is one vector
    memcpy into shared memory plus a pipe round-trip per worker.
    """

    def __init__(self, shard_fn, bounds, vector_template, sums_dtype,
                 num_segments):
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "backend='process' needs the fork start method (shard "
                "closures are inherited, not pickled); this platform "
                "offers only %r"
                % (multiprocessing.get_all_start_methods(),))
        ctx = multiprocessing.get_context("fork")
        vector_template = np.ascontiguousarray(vector_template)
        self._vec_dtype = vector_template.dtype
        self._vec_len = len(vector_template)
        self._sums_dtype = np.dtype(sums_dtype)
        self.num_segments = int(num_segments)
        self.bounds = np.asarray(bounds, dtype=np.int64)
        self.num_workers = len(self.bounds) - 1
        self.rounds_dispatched = 0
        self._collected = True
        # Held from start_round until collect returns: concurrent
        # service queries sharing one pool serialise their overlapping
        # rounds here instead of corrupting the shared vector.
        self._round_lock = threading.Lock()
        self._vec_shm = shared_memory.SharedMemory(
            create=True, size=max(1, vector_template.nbytes))
        self._sums_shm = shared_memory.SharedMemory(
            create=True,
            size=max(1, self.num_segments * self._sums_dtype.itemsize))
        self._vector = np.frombuffer(
            self._vec_shm.buf, dtype=self._vec_dtype, count=self._vec_len)
        self._sums = np.frombuffer(
            self._sums_shm.buf, dtype=self._sums_dtype,
            count=self.num_segments)
        self._conns = []
        self._procs = []
        try:
            for w in range(self.num_workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_loop,
                    args=(child_conn, shard_fn, self._vector, self._sums,
                          int(self.bounds[w]), int(self.bounds[w + 1])),
                    daemon=True)
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        except BaseException:
            self.shutdown()
            raise
        # Belt and braces: daemon children die with the interpreter, but
        # the shm segments would leak names without an explicit unlink.
        self._atexit = atexit.register(self.shutdown)

    @property
    def closed(self):
        return self._vec_shm is None

    def start_round(self, vector):
        """Publish ``vector`` and wake every worker; returns ``self`` as
        the round handle.  The caller overlaps its own work, then calls
        :meth:`collect`."""
        self._round_lock.acquire()
        try:
            if self.closed:
                raise ConfigurationError("worker pool is shut down")
            if not self._collected:
                raise ConfigurationError(
                    "start_round called before the previous round was "
                    "collected")
            np.copyto(self._vector, vector, casting="no")
            for conn in self._conns:
                conn.send("go")
            self._collected = False
            self.rounds_dispatched += 1
        except BaseException:
            self._round_lock.release()
            raise
        return self

    def collect(self):
        """Block until every worker acked this round; returns the full
        per-segment partials array (copied out of shared memory, so the
        caller may hold it past the pool's lifetime)."""
        if self._collected:
            raise ConfigurationError("no round in flight to collect")
        try:
            self._collected = True
            for w, conn in enumerate(self._conns):
                if not conn.poll(_ROUND_TIMEOUT):
                    raise RuntimeError(
                        "process-backend worker %d did not answer within "
                        "%.0f s (pid %s, alive=%s)"
                        % (w, _ROUND_TIMEOUT, self._procs[w].pid,
                           self._procs[w].is_alive()))
                status, detail = conn.recv()
                if status != "ok":
                    raise RuntimeError(
                        "process-backend worker %d failed: %s"
                        % (w, detail))
            return self._sums.copy()
        finally:
            self._round_lock.release()

    def shutdown(self):
        """Stop workers, join them, release the shared blocks.
        Idempotent; safe to call on a half-constructed pool."""
        if self.closed:
            return
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._procs = []
        # Drop the aliasing views before close() or numpy's exports
        # raise BufferError.
        self._vector = None
        self._sums = None
        for shm in (self._vec_shm, self._sums_shm):
            if shm is not None:
                try:
                    shm.close()
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        self._vec_shm = None
        self._sums_shm = None
        handle = getattr(self, "_atexit", None)
        if handle is not None:
            atexit.unregister(handle)
            self._atexit = None

    def __del__(self):  # pragma: no cover - GC ordering varies
        try:
            self.shutdown()
        except Exception:
            pass


class WorkerPoolRegistry:
    """Worker pools keyed by topology + kernel so repeated runs (and the
    service layer's repeated queries) reuse forked workers instead of
    paying pool construction every run."""

    def __init__(self, max_workers=None):
        self.max_workers = max_workers
        self._pools = {}
        self._lock = threading.Lock()
        self.created = 0
        self.reused = 0
        self.evicted = 0

    def get(self, db, kernel, state, batch, workers=None):
        """The pool for this (database topology, kernel, batch) — built
        on first use, reused afterwards.  Pools keyed to a stale
        topology version are shut down on the way.

        MVCC-aware: a database (or snapshot view) that exposes
        ``live_versions()`` — the pinned snapshot versions plus the
        current head — keeps pools for *all* of those versions alive,
        so a query pinned at an old snapshot and a query on the
        post-update head reuse their own forked workers side by side.
        Databases without the hook keep the single-version behaviour.
        """
        version = getattr(db, "topology_version", 0)
        workers = workers or self.max_workers or default_workers()
        key = (version, kernel.name, kernel.shard_params(state),
               batch.num_segments, int(workers))
        live_versions = getattr(db, "live_versions", None)
        if callable(live_versions):
            live = set(live_versions())
            live.add(version)
        else:
            live = {version}
        with self._lock:
            stale = [k for k in self._pools if k[0] not in live]
            for k in stale:
                self._pools.pop(k).shutdown()
                self.evicted += 1
            pool = self._pools.get(key)
            if pool is not None and not pool.closed:
                self.reused += 1
                return pool
            bounds = shard_bounds(batch.seg_starts, batch.num_segments,
                                  batch.num_edges, workers)
            pool = WorkerPool(
                kernel.make_shard_fn(batch, state), bounds,
                kernel.round_vector(state), kernel.shard_dtype,
                batch.num_segments)
            self._pools[key] = pool
            self.created += 1
            return pool

    def shutdown(self):
        """Shut every pool down (service drain / engine close)."""
        with self._lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.shutdown()

    def stats(self):
        """JSON-ready counters for the service stats endpoint."""
        with self._lock:
            return {
                "pools": len(self._pools),
                "created": self.created,
                "reused": self.reused,
                "evicted": self.evicted,
                "workers": {
                    "%s/%s" % (k[1], k[0]): p.num_workers
                    for k, p in self._pools.items()},
            }
