"""Cost-based configuration optimizer (the Section 5 payoff).

The paper presents its cost models so that performance can be "further
improve[d] later through the cost-based optimization".  This module
implements that step: given a database, a machine and a kernel, it
predicts elapsed time for every candidate (strategy, stream count)
configuration from the analytic models plus a pipeline refinement, checks
device-memory feasibility the same way the engine does, and recommends
the cheapest feasible configuration.

The pipeline refinement extends Equation 1 with the stream-count
behaviour of Section 3.2: per-page kernels run at the underutilised
single-stream rate, so with ``k`` streams the compute side of the
pipeline drains at ``min(k / u, 1)`` of device throughput; elapsed time
is the bottleneck of the transfer and compute sides.
"""

import dataclasses
from typing import Tuple

from repro.core.strategies import make_strategy
from repro.errors import CapacityError

#: Stream counts the optimizer considers (Figure 10's sweep).
DEFAULT_STREAM_CHOICES = (1, 2, 4, 8, 16, 32)


@dataclasses.dataclass(frozen=True)
class ConfigurationChoice:
    """One evaluated candidate configuration."""

    strategy: str
    num_streams: int
    estimated_seconds: float
    feasible: bool
    reason: str = ""


@dataclasses.dataclass(frozen=True)
class Recommendation:
    """The optimizer's output: the winner plus every evaluated option."""

    best: ConfigurationChoice
    candidates: Tuple[ConfigurationChoice, ...]

    def describe(self):
        lines = ["cost-based recommendation: Strategy-%s with %d streams "
                 "(estimated %.6f s)"
                 % (self.best.strategy[0].upper(), self.best.num_streams,
                    self.best.estimated_seconds)]
        for choice in self.candidates:
            marker = "*" if choice == self.best else " "
            status = ("%.6f s" % choice.estimated_seconds
                      if choice.feasible else "infeasible (%s)" % choice.reason)
            lines.append(" %s %-12s %2d streams: %s"
                         % (marker, choice.strategy, choice.num_streams,
                            status))
        return "\n".join(lines)


def _device_feasible(db, machine, kernel, strategy_name, num_streams):
    """Mirror the engine's WABuf/RABuf/SPBuf/LPBuf accounting."""
    strategy = make_strategy(strategy_name)
    wa_total = kernel.wa_bytes(db.num_vertices)
    wa_gpu = strategy.wa_gpu_bytes(wa_total, machine.num_gpus)
    max_records = max((e.num_records for e in db.directory), default=0)
    ra_buf = num_streams * max_records * kernel.ra_bytes_per_vertex
    sp_buf = num_streams * db.config.page_size if db.num_small_pages else 0
    lp_buf = num_streams * db.config.page_size if db.num_large_pages else 0
    need = wa_gpu + ra_buf + sp_buf + lp_buf
    capacity = min(gpu.device_memory for gpu in machine.gpus)
    if need > capacity:
        return False, ("needs %d B of device memory, GPU has %d B"
                       % (need, capacity))
    return True, ""


def estimate_elapsed(db, machine, kernel, strategy_name, num_streams,
                     rounds=1, edges_per_round=None):
    """Pipeline-refined analytic estimate of one run's elapsed time.

    ``edges_per_round`` defaults to the full edge count (PageRank-like
    full scans).  BFS-like estimates can pass the expected traversed
    edges instead.
    """
    pcie = machine.pcie
    gpu = machine.gpus[0]
    num_gpus = machine.num_gpus
    edges = edges_per_round if edges_per_round is not None else db.num_edges
    wa_total = kernel.wa_bytes(db.num_vertices)
    topology = db.topology_bytes()
    ra_total = kernel.ra_bytes(db.num_vertices)
    pages = db.num_pages

    # How much of the stream reaches each GPU.
    if strategy_name in ("performance", "P"):
        per_gpu_bytes = (topology + ra_total) / num_gpus
        per_gpu_edges = edges / num_gpus
        per_gpu_pages = pages / num_gpus
    else:
        per_gpu_bytes = topology + ra_total
        per_gpu_edges = edges
        per_gpu_pages = pages

    transfer = per_gpu_bytes / pcie.stream_bandwidth \
        + per_gpu_pages * pcie.latency
    # Lane-steps ~ edges for edge-centric pages; compute drains at the
    # stream-limited fraction of device throughput.
    device_seconds = (per_gpu_edges * kernel.cycles_per_lane_step
                      / gpu.effective_hz)
    concurrency = min(1.0, num_streams * gpu.single_stream_fraction)
    compute = (device_seconds / concurrency
               + per_gpu_pages * gpu.kernel_launch_overhead / num_streams)
    per_round = max(transfer, compute)

    wa_term = 2.0 * wa_total / pcie.chunk_bandwidth
    if not kernel.traversal:
        sync = wa_term
    else:
        sync = num_gpus * pcie.latency
    return rounds * (per_round + sync) + wa_total / pcie.chunk_bandwidth


def recommend_configuration(db, machine, kernel, rounds=1,
                            stream_choices=DEFAULT_STREAM_CHOICES,
                            strategies=("performance", "scalability")):
    """Pick the cheapest feasible (strategy, streams) configuration."""
    candidates = []
    for strategy_name in strategies:
        for num_streams in stream_choices:
            feasible, reason = _device_feasible(
                db, machine, kernel, strategy_name, num_streams)
            estimate = (estimate_elapsed(db, machine, kernel,
                                         strategy_name, num_streams,
                                         rounds=rounds)
                        if feasible else float("inf"))
            candidates.append(ConfigurationChoice(
                strategy=strategy_name, num_streams=num_streams,
                estimated_seconds=estimate, feasible=feasible,
                reason=reason))
    feasible_choices = [c for c in candidates if c.feasible]
    if not feasible_choices:
        raise CapacityError(
            "no feasible configuration: %s" % candidates[0].reason)
    best = min(feasible_choices,
               key=lambda c: (c.estimated_seconds, c.num_streams))
    return Recommendation(best=best, candidates=tuple(candidates))
