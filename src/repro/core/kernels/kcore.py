"""K-core decomposition kernel (BFS-like family, Section 3.3).

The paper lists K-core among the traversal-style algorithms GTS supports.
This kernel computes membership of the ``k``-core — the maximal subgraph
in which every vertex has degree ≥ ``k`` — by iterative peeling: each
round removes every remaining vertex whose degree dropped below ``k`` and
streams only the *removed* vertices' pages to decrement their neighbours'
degrees.  The frontier is the freshly removed set, exactly the
``nextPIDSet`` pattern of BFS.

K-core is defined on undirected graphs: build the database from
``graph.symmetrised()`` (as with the CC kernel) so that each record's
adjacency list is the vertex's full undirected neighbourhood.

WA is a degree counter plus a removed flag (5 bytes/vertex at paper
widths).
"""

import numpy as np

from repro.core.kernels.base import Kernel, PageWork, RoundPlan, edge_expand
from repro.errors import ConfigurationError


class _KCoreState:
    def __init__(self, db, k):
        self.db = db
        self.k = k
        self.degree = db.out_degrees.astype(np.int64).copy()
        self.removed = np.zeros(db.num_vertices, dtype=bool)
        # Peel everything already under k in round 0.
        self.frontier = self.degree < k
        self.removed[self.frontier] = True
        self.round_index = 0
        self.frontier_pids = self._pages_of(np.flatnonzero(self.frontier))

    def _pages_of(self, vids):
        if len(vids) == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(self.db.vertex_page[vids])


class KCoreKernel(Kernel):
    """Iterative peeling to the ``k``-core."""

    name = "KCore"
    traversal = True
    wa_bytes_per_vertex = 5       # degree counter (4 B) + removed flag
    ra_bytes_per_vertex = 0
    cycles_per_lane_step = 36.0   # decrement + compare per edge

    def __init__(self, k=2):
        if k < 1:
            raise ConfigurationError("k must be at least 1")
        self.k = k

    def init_state(self, db):
        return _KCoreState(db, self.k)

    def next_round(self, state):
        if len(state.frontier_pids) == 0:
            return None
        return RoundPlan(pids=state.frontier_pids,
                         description="peel round %d" % state.round_index)

    def finish_round(self, state, merged_next_pids):
        state.round_index += 1
        newly_below = (~state.removed) & (state.degree < state.k)
        state.removed[newly_below] = True
        state.frontier = newly_below
        state.frontier_pids = state._pages_of(np.flatnonzero(newly_below))

    def results(self, state):
        return {"in_kcore": ~state.removed,
                "residual_degree": state.degree.copy()}

    # ------------------------------------------------------------------
    def _peel(self, page, state, ctx, active_mask):
        targets, _, _, _ = edge_expand(page, active_mask)
        # Removed vertices release one degree unit per incident edge;
        # duplicates require the unbuffered decrement.
        np.add.at(state.degree, targets, -1)
        return PageWork(
            num_records=page.num_records,
            active_vertices=int(active_mask.sum()),
            edges_traversed=int(len(targets)),
            lane_steps=ctx.lane_steps(page.degrees(), active_mask),
            next_pids=np.empty(0, dtype=np.int64),
        )

    def process_sp(self, page, state, ctx):
        active = state.frontier[page.vids()]
        return self._peel(page, state, ctx, active)

    def process_lp(self, page, state, ctx):
        active = np.asarray([state.frontier[page.vid]])
        return self._peel(page, state, ctx, active)
