"""Single-Source Shortest Path kernels (BFS-like family, Appendix D).

Level-synchronous Bellman–Ford: each round relaxes the out-edges of every
vertex whose distance improved in the previous round, and the next round's
``nextPIDSet`` is the set of pages holding vertices whose tentative
distance an update may have lowered.  Reads use the distance snapshot
committed at the end of the previous round (``dist_prev``), so updates are
commutative mins and results are independent of page/GPU order.

WA is the distance vector (4 bytes per vertex, Table 4).  Edge weights
come from the slotted pages (the database must be built from a weighted
graph with ``weight_bytes > 0`` in its format config); unweighted
databases fall back to unit weights, making SSSP coincide with BFS depth.
"""

import numpy as np

from repro.core.kernels.base import (
    BatchWork,
    Kernel,
    PageWork,
    RoundPlan,
    edge_expand,
)
from repro.errors import ConfigurationError

INFINITY = np.float32(np.inf)


class _SSSPState:
    def __init__(self, db, start_vertex):
        self.db = db
        self.dist = np.full(db.num_vertices, INFINITY, dtype=np.float32)
        self.dist[start_vertex] = 0.0
        # Snapshot read within a round (BSP semantics).
        self.dist_prev = self.dist.copy()
        self.frontier = np.zeros(db.num_vertices, dtype=bool)
        self.frontier[start_vertex] = True
        self.frontier_pids = np.asarray(
            [db.page_for_vertex(start_vertex)], dtype=np.int64)
        self.round_index = 0


class SSSPKernel(Kernel):
    """Level-synchronous single-source shortest paths."""

    name = "SSSP"
    traversal = True
    wa_bytes_per_vertex = 4       # distance vector (Table 4)
    ra_bytes_per_vertex = 0
    cycles_per_lane_step = 40.0   # compare + atomicMin on floats

    def __init__(self, start_vertex=0, max_rounds=None):
        if start_vertex < 0:
            raise ConfigurationError("start vertex must be nonnegative")
        self.start_vertex = start_vertex
        #: Safety valve for graphs with negative cycles; None = no limit
        #: (weights produced by our generators are positive).
        self.max_rounds = max_rounds

    def init_state(self, db):
        if self.start_vertex >= db.num_vertices:
            raise ConfigurationError(
                "start vertex %d outside graph of %d vertices"
                % (self.start_vertex, db.num_vertices))
        return _SSSPState(db, self.start_vertex)

    def next_round(self, state):
        if len(state.frontier_pids) == 0:
            return None
        if self.max_rounds is not None and state.round_index >= self.max_rounds:
            return None
        return RoundPlan(pids=state.frontier_pids,
                         description="relaxation round %d" % state.round_index)

    def finish_round(self, state, merged_next_pids):
        state.round_index += 1
        improved = state.dist < state.dist_prev
        state.frontier = improved
        state.dist_prev = state.dist.copy()
        if merged_next_pids is None:
            merged_next_pids = np.empty(0, dtype=np.int64)
        # Keep only pages that actually contain an improved vertex; the
        # per-page next_pids over-approximate (a candidate distance may
        # lose the min race to a better one from another page).
        if len(merged_next_pids):
            db = state.db
            keep = []
            for pid in merged_next_pids:
                page = db.page(int(pid))
                vids = page.vids()
                if improved[vids].any():
                    keep.append(pid)
            merged_next_pids = np.asarray(keep, dtype=np.int64)
        state.frontier_pids = merged_next_pids

    def results(self, state):
        return {"distance": state.dist.copy()}

    # ------------------------------------------------------------------
    def _relax(self, page, state, ctx, active_mask, source_dists):
        targets, target_pids, weights, sources_idx = edge_expand(
            page, active_mask)
        if weights is None:
            weights = np.ones(len(targets), dtype=np.float32)
        candidates = source_dists[sources_idx] + weights
        better = candidates < state.dist[targets]
        # Commutative min update; np.minimum.at handles duplicate targets.
        np.minimum.at(state.dist, targets[better], candidates[better])
        next_pids = np.unique(target_pids[better])
        return PageWork(
            num_records=page.num_records,
            active_vertices=int(active_mask.sum()),
            edges_traversed=int(len(targets)),
            lane_steps=ctx.lane_steps(page.degrees(), active_mask),
            next_pids=next_pids,
        )

    def process_sp(self, page, state, ctx):
        vids = page.vids()
        active = state.frontier[vids]
        source_dists = state.dist_prev[vids]
        return self._relax(page, state, ctx, active, source_dists)

    def process_lp(self, page, state, ctx):
        active = np.asarray([state.frontier[page.vid]])
        source_dists = np.asarray([state.dist_prev[page.vid]],
                                  dtype=np.float32)
        return self._relax(page, state, ctx, active, source_dists)

    def process_batch(self, batch, state, ctx):
        active = state.frontier[batch.rec_vids]
        edge_active = active[batch.edge_rec]
        sources = batch.rec_vids[batch.edge_rec[edge_active]]
        targets = batch.adj_vids[edge_active]
        if batch.adj_weights is not None:
            weights = batch.adj_weights[edge_active]
        else:
            weights = np.ones(len(targets), dtype=np.float32)
        candidates = state.dist_prev[sources] + weights
        # "Better" against the round-start distances.  The per-page loop
        # compares against the live vector, so it may skip candidates a
        # previous page already beat — but the min-combine makes the
        # final distances identical, and a beaten candidate's page is
        # added to the union by whichever page beat it (same target,
        # same physical page), so next_pids match too.
        better = candidates < state.dist[targets]
        np.minimum.at(state.dist, targets[better], candidates[better])
        next_pids = np.unique(batch.adj_pids[edge_active][better])
        return BatchWork(
            lane_steps=ctx.segment_lane_steps(batch, active),
            edges_traversed=batch.edge_segment_sum(edge_active),
            active_vertices=batch.segment_sum(active),
            next_pids=next_pids,
        )
