"""Degree-distribution kernel (PageRank-like family, Section 3.3).

The simplest full-scan algorithm the paper lists: one pass over the
topology counting out- and in-degrees.  It doubles as a fast end-to-end
smoke test of the streaming machinery, and its output cross-checks the
slotted-page builder against the source graph.
"""

import numpy as np

from repro.core.kernels.base import (
    ALL_PAGES,
    Kernel,
    PageWork,
    RoundPlan,
    scatter_add,
)


class _DegreeState:
    def __init__(self, db):
        self.out_degree = np.zeros(db.num_vertices, dtype=np.int64)
        self.in_degree = np.zeros(db.num_vertices, dtype=np.int64)
        self._in_degree_float = np.zeros(db.num_vertices)
        self.done = False


class DegreeKernel(Kernel):
    """Single-pass out/in degree counting."""

    name = "Degree"
    traversal = False
    wa_bytes_per_vertex = 8       # two 4-byte counters
    ra_bytes_per_vertex = 0
    cycles_per_lane_step = 8.0    # near-pure streaming, minimal compute

    def init_state(self, db):
        return _DegreeState(db)

    def next_round(self, state):
        if state.done:
            return None
        return RoundPlan(pids=ALL_PAGES, description="degree scan")

    def finish_round(self, state, merged_next_pids):
        state.done = True
        state.in_degree = state._in_degree_float.astype(np.int64)

    def results(self, state):
        return {"out_degree": state.out_degree.copy(),
                "in_degree": state.in_degree.copy()}

    # ------------------------------------------------------------------
    def process_sp(self, page, state, ctx):
        degrees = page.degrees()
        state.out_degree[page.vids()] += degrees
        scatter_add(state._in_degree_float, page,
                    np.ones(page.num_edges), db=ctx.db)
        return PageWork(
            num_records=page.num_records,
            active_vertices=page.num_records,
            edges_traversed=page.num_edges,
            lane_steps=ctx.lane_steps(degrees),
        )

    def process_lp(self, page, state, ctx):
        state.out_degree[page.vid] += page.num_edges
        scatter_add(state._in_degree_float, page,
                    np.ones(page.num_edges), db=ctx.db)
        return PageWork(
            num_records=1,
            active_vertices=1,
            edges_traversed=page.num_edges,
            lane_steps=ctx.lane_steps(page.degrees()),
        )
