"""Breadth-First Search kernels (Appendix B.1, Algorithms 2 and 3).

BFS is the paper's archetypal *traversal* algorithm: level-synchronous,
streaming only the pages named in ``nextPIDSet`` each level, with a single
WA vector ``LV`` of traversal levels.  The WA footprint is 2 bytes per
vertex (Table 4: 8 GB for RMAT32's 4 G vertices).
"""

import numpy as np

from repro.core.kernels.base import (
    ALL_PAGES,
    BatchWork,
    Kernel,
    PageWork,
    RoundPlan,
    edge_expand,
)
from repro.errors import ConfigurationError

#: Sentinel for "not yet visited" (the paper's NULL level).
UNVISITED = -1


class _BFSState:
    def __init__(self, db, start_vertex):
        self.db = db
        self.level = np.full(db.num_vertices, UNVISITED, dtype=np.int32)
        self.level[start_vertex] = 0
        self.cur_level = 0
        self.start_vertex = start_vertex
        self.round_index = 0
        self.frontier_pids = np.asarray(
            [db.page_for_vertex(start_vertex)], dtype=np.int64)


class BFSKernel(Kernel):
    """Level-synchronous BFS from a start vertex."""

    name = "BFS"
    traversal = True
    wa_bytes_per_vertex = 2       # LV vector (Table 4)
    ra_bytes_per_vertex = 0
    cycles_per_lane_step = 32.0   # light per-edge work: a check and a set

    def __init__(self, start_vertex=0):
        if start_vertex < 0:
            raise ConfigurationError("start vertex must be nonnegative")
        self.start_vertex = start_vertex

    def init_state(self, db):
        if self.start_vertex >= db.num_vertices:
            raise ConfigurationError(
                "start vertex %d outside graph of %d vertices"
                % (self.start_vertex, db.num_vertices))
        return _BFSState(db, self.start_vertex)

    def next_round(self, state):
        if len(state.frontier_pids) == 0:
            return None
        return RoundPlan(pids=state.frontier_pids,
                         description="level %d" % state.cur_level)

    def finish_round(self, state, merged_next_pids):
        state.cur_level += 1
        state.round_index += 1
        if merged_next_pids is None:
            merged_next_pids = np.empty(0, dtype=np.int64)
        state.frontier_pids = merged_next_pids

    def results(self, state):
        return {"level": state.level}

    # ------------------------------------------------------------------
    def _expand(self, page, state, ctx, active_mask):
        """Shared body of K_BFS_SP and K_BFS_LP: relax active records."""
        targets, target_pids, _, _ = edge_expand(page, active_mask)
        unvisited = state.level[targets] == UNVISITED
        new_targets = targets[unvisited]
        # Idempotent write: every discoverer sets the same level value.
        state.level[new_targets] = state.cur_level + 1
        next_pids = np.unique(target_pids[unvisited])
        return PageWork(
            num_records=page.num_records,
            active_vertices=int(active_mask.sum()),
            edges_traversed=int(len(targets)),
            lane_steps=ctx.lane_steps(page.degrees(), active_mask),
            next_pids=next_pids,
        )

    def process_sp(self, page, state, ctx):
        active = state.level[page.vids()] == state.cur_level
        return self._expand(page, state, ctx, active)

    def process_lp(self, page, state, ctx):
        active = np.asarray(
            [state.level[page.vid] == state.cur_level])
        return self._expand(page, state, ctx, active)

    def process_batch(self, batch, state, ctx):
        active = state.level[batch.rec_vids] == state.cur_level
        edge_active = active[batch.edge_rec]
        targets = batch.adj_vids[edge_active]
        # "Unvisited" against the round-start levels: every per-page
        # discoverer writes the same ``cur_level + 1``, so evaluating the
        # mask before any write reproduces the per-page union exactly.
        unvisited = state.level[targets] == UNVISITED
        state.level[targets[unvisited]] = state.cur_level + 1
        next_pids = np.unique(batch.adj_pids[edge_active][unvisited])
        return BatchWork(
            lane_steps=ctx.segment_lane_steps(batch, active),
            edges_traversed=batch.edge_segment_sum(edge_active),
            active_vertices=batch.segment_sum(active),
            next_pids=next_pids,
        )
