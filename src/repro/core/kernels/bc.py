"""Betweenness Centrality kernels (BFS-like family, Appendix D).

Brandes' algorithm over a set of sample sources, expressed as engine
rounds.  For each source the kernel runs two page-streamed phases:

1. **forward** — a level-synchronous BFS that also accumulates ``sigma``
   (the number of shortest paths reaching each vertex).  Each level is one
   engine round streaming the frontier's pages, exactly like BFS.
2. **backward** — Brandes' dependency accumulation, one round per level
   from the deepest back to the source: for each edge ``(v, t)`` with
   ``lv[t] == lv[v] + 1``, ``delta[v] += sigma[v] / sigma[t] * (1 + delta[t])``.
   The pages visited per level were recorded during the forward phase, so
   the backward sweep streams only relevant pages too.

The reported centrality is the raw Brandes sum over the configured
sources (no rescaling); the reference implementation uses the same
convention so results compare exactly.

WA is three vectors (level, sigma, delta ≈ 10 bytes/vertex at paper
widths) — the heaviest WA of the implemented algorithms, which is why the
paper runs BC in single-node mode only (Appendix D).
"""

import numpy as np

from repro.core.kernels.base import Kernel, PageWork, RoundPlan, edge_expand
from repro.errors import ConfigurationError

UNVISITED = -1


class _BCState:
    def __init__(self, db, sources):
        self.db = db
        self.sources = list(sources)
        self.source_index = 0
        self.centrality = np.zeros(db.num_vertices)
        self.phase = "forward"
        self._reset_for_source()

    def _reset_for_source(self):
        db = self.db
        source = self.sources[self.source_index]
        self.level = np.full(db.num_vertices, UNVISITED, dtype=np.int32)
        self.sigma = np.zeros(db.num_vertices)
        self.delta = np.zeros(db.num_vertices)
        self.level[source] = 0
        self.sigma[source] = 1.0
        self.cur_level = 0
        self.frontier_pids = np.asarray(
            [db.page_for_vertex(source)], dtype=np.int64)
        #: pids_at_level[l] — pages holding level-l vertices, recorded on
        #: the way down and replayed on the way up.
        self.pids_at_level = {0: self.frontier_pids}
        self.phase = "forward"
        self.backward_level = None


class BCKernel(Kernel):
    """Sampled betweenness centrality (Brandes over ``sources``)."""

    name = "BC"
    traversal = True
    wa_bytes_per_vertex = 10      # level (2B) + sigma (4B) + delta (4B)
    ra_bytes_per_vertex = 0
    cycles_per_lane_step = 40.0

    def __init__(self, sources=(0,)):
        sources = tuple(sources)
        if not sources:
            raise ConfigurationError("BC needs at least one source")
        self.sources = sources

    def init_state(self, db):
        for source in self.sources:
            if source < 0 or source >= db.num_vertices:
                raise ConfigurationError(
                    "source %d outside graph of %d vertices"
                    % (source, db.num_vertices))
        return _BCState(db, self.sources)

    # ------------------------------------------------------------------
    # Round control: forward levels, then backward levels, per source.
    # ------------------------------------------------------------------
    def next_round(self, state):
        while True:
            if state.phase == "forward":
                if len(state.frontier_pids):
                    return RoundPlan(
                        pids=state.frontier_pids,
                        description="source %d forward level %d"
                        % (state.sources[state.source_index],
                           state.cur_level))
                # Forward exhausted: start the backward sweep one level
                # above the deepest level that discovered anything.
                state.phase = "backward"
                state.backward_level = state.cur_level - 1
            if state.phase == "backward":
                while state.backward_level is not None and state.backward_level >= 0:
                    pids = state.pids_at_level.get(state.backward_level)
                    if pids is not None and len(pids):
                        return RoundPlan(
                            pids=pids,
                            description="source %d backward level %d"
                            % (state.sources[state.source_index],
                               state.backward_level))
                    state.backward_level -= 1
                # Source finished: bank its dependencies, move on.
                self._finish_source(state)
                if state.source_index >= len(state.sources):
                    return None
                # Loop back to emit the next source's first forward round.

    def _finish_source(self, state):
        source = state.sources[state.source_index]
        contribution = state.delta.copy()
        contribution[source] = 0.0
        state.centrality += contribution
        state.source_index += 1
        if state.source_index < len(state.sources):
            state._reset_for_source()

    def finish_round(self, state, merged_next_pids):
        if state.phase == "forward":
            state.cur_level += 1
            if merged_next_pids is None:
                merged_next_pids = np.empty(0, dtype=np.int64)
            state.frontier_pids = merged_next_pids
            if len(merged_next_pids):
                state.pids_at_level[state.cur_level] = merged_next_pids
        else:
            state.backward_level -= 1

    def results(self, state):
        return {"centrality": state.centrality.copy()}

    # ------------------------------------------------------------------
    # Page kernels
    # ------------------------------------------------------------------
    def _forward(self, page, state, ctx, active_mask, source_sigmas):
        targets, target_pids, _, sources_idx = edge_expand(page, active_mask)
        fresh = state.level[targets] == UNVISITED
        state.level[targets[fresh]] = state.cur_level + 1
        # Path counting: every frontier edge into a level-(l+1) vertex
        # contributes the source's sigma.  Duplicate targets need the
        # unbuffered add.
        counted = state.level[targets] == state.cur_level + 1
        np.add.at(state.sigma, targets[counted],
                  source_sigmas[sources_idx[counted]])
        next_pids = np.unique(target_pids[fresh])
        return PageWork(
            num_records=page.num_records,
            active_vertices=int(active_mask.sum()),
            edges_traversed=int(len(targets)),
            lane_steps=ctx.lane_steps(page.degrees(), active_mask),
            next_pids=next_pids,
        )

    def _backward(self, page, state, ctx, active_mask, record_vids):
        targets, _, _, sources_idx = edge_expand(page, active_mask)
        downstream = state.level[targets] == state.backward_level + 1
        idx = sources_idx[downstream]
        tgt = targets[downstream]
        ratio = np.zeros(len(tgt))
        valid = state.sigma[tgt] > 0
        source_vids = record_vids[idx]
        ratio[valid] = (state.sigma[source_vids[valid]]
                        / state.sigma[tgt[valid]])
        contributions = ratio * (1.0 + state.delta[tgt])
        # Sum per source record; records live in exactly one small page,
        # and large-page chunks contribute commutative partial sums.
        np.add.at(state.delta, source_vids, contributions)
        return PageWork(
            num_records=page.num_records,
            active_vertices=int(active_mask.sum()),
            edges_traversed=int(len(targets)),
            lane_steps=ctx.lane_steps(page.degrees(), active_mask),
            next_pids=np.empty(0, dtype=np.int64),
        )

    def process_sp(self, page, state, ctx):
        vids = page.vids()
        if state.phase == "forward":
            active = state.level[vids] == state.cur_level
            return self._forward(page, state, ctx, active, state.sigma[vids])
        active = state.level[vids] == state.backward_level
        return self._backward(page, state, ctx, active, vids)

    def process_lp(self, page, state, ctx):
        vids = np.asarray([page.vid], dtype=np.int64)
        if state.phase == "forward":
            active = state.level[vids] == state.cur_level
            return self._forward(page, state, ctx, active, state.sigma[vids])
        active = state.level[vids] == state.backward_level
        return self._backward(page, state, ctx, active, vids)
