"""Connected Components kernels (PageRank-like family, Appendix D).

Label propagation to a fixpoint: every vertex starts with its own ID as a
label; each round every vertex pushes its label along its out-edges and a
target keeps the minimum label it has seen.  The paper classifies CC with
the "linear scan" algorithms, so each round streams the whole topology
(``ALL_PAGES``) rather than a frontier.

Label propagation along *directed* edges computes components of the
directed reachability closure; to obtain the usual weakly-connected
components, build the database from ``graph.symmetrised()`` — the bench
and tests do exactly that, mirroring how the compared systems (Giraph,
PowerGraph, TOTEM) treat CC input as undirected.

WA is the 8-byte label vector (Table 4: 32 GB for RMAT32).  Reads use the
previous round's label snapshot, so updates are commutative mins.
"""

import numpy as np

from repro.core.kernels.base import (
    ALL_PAGES,
    BatchWork,
    Kernel,
    PageWork,
    RoundPlan,
    scatter_min,
)
from repro.errors import ConfigurationError


class _WCCState:
    def __init__(self, db):
        self.labels = np.arange(db.num_vertices, dtype=np.int64)
        self.labels_prev = self.labels.copy()
        self.round_index = 0
        self.changed = True


class WCCKernel(Kernel):
    """Connected components by min-label propagation to a fixpoint."""

    name = "CC"
    traversal = False
    wa_bytes_per_vertex = 8       # component labels (Table 4)
    ra_bytes_per_vertex = 0
    cycles_per_lane_step = 28.0

    def __init__(self, max_rounds=None):
        #: Optional round cap; propagation needs at most the graph
        #: diameter many rounds, so None is safe on finite graphs.
        if max_rounds is not None and max_rounds < 1:
            raise ConfigurationError("max_rounds must be positive")
        self.max_rounds = max_rounds

    def init_state(self, db):
        return _WCCState(db)

    def next_round(self, state):
        if not state.changed:
            return None
        if self.max_rounds is not None and state.round_index >= self.max_rounds:
            return None
        return RoundPlan(pids=ALL_PAGES,
                         description="propagation round %d" % state.round_index)

    def finish_round(self, state, merged_next_pids):
        state.round_index += 1
        state.changed = bool(np.any(state.labels != state.labels_prev))
        state.labels_prev = state.labels.copy()

    def results(self, state):
        return {"component": state.labels.copy()}

    # ------------------------------------------------------------------
    def process_sp(self, page, state, ctx):
        degrees = page.degrees()
        per_edge = np.repeat(state.labels_prev[page.vids()], degrees)
        scatter_min(state.labels, page, per_edge, db=ctx.db)
        return PageWork(
            num_records=page.num_records,
            active_vertices=page.num_records,
            edges_traversed=page.num_edges,
            lane_steps=ctx.lane_steps(degrees),
        )

    def process_lp(self, page, state, ctx):
        per_edge = np.full(page.num_edges, state.labels_prev[page.vid],
                           dtype=np.int64)
        scatter_min(state.labels, page, per_edge, db=ctx.db)
        return PageWork(
            num_records=1,
            active_vertices=1,
            edges_traversed=page.num_edges,
            lane_steps=ctx.lane_steps(page.degrees()),
        )

    def process_batch(self, batch, state, ctx):
        if batch.num_segments:
            # One gather: labels_prev[rec_vids][edge_rec][scatter_order]
            # composed through the memoised scatter-ordered source VIDs.
            mins = np.minimum.reduceat(
                state.labels_prev[batch.scatter_vids()], batch.seg_starts)
            np.minimum.at(state.labels, batch.seg_targets, mins)
        return BatchWork(
            lane_steps=ctx.segment_lane_steps(batch),
            edges_traversed=batch.edges_per_page(),
            active_vertices=batch.records_per_page(),
        )

    # ------------------------------------------------------------------
    # Sharded execution (process backend)
    # ------------------------------------------------------------------
    shard_dtype = np.int64

    def round_vector(self, state):
        return state.labels_prev

    def make_shard_fn(self, batch, state):
        scatter_vids = batch.scatter_vids()
        seg_starts = batch.seg_starts
        num_segments = batch.num_segments
        num_edges = batch.num_edges

        def shard(vector, s0, s1):
            if s0 >= s1:
                return np.empty(0, dtype=np.int64)
            lo = int(seg_starts[s0])
            hi = int(seg_starts[s1]) if s1 < num_segments else num_edges
            return np.minimum.reduceat(
                vector[scatter_vids[lo:hi]], seg_starts[s0:s1] - lo)

        return shard

    def batch_work(self, batch, ctx):
        return BatchWork(
            lane_steps=ctx.segment_lane_steps(batch),
            edges_traversed=batch.edges_per_page(),
            active_vertices=batch.records_per_page(),
        )

    def apply_segment_results(self, batch, state, partials):
        np.minimum.at(state.labels, batch.seg_targets, partials)
