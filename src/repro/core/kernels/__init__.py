"""Graph-algorithm kernels for the GTS engine.

Each kernel mirrors Appendix B's structure: a small-page kernel
(``process_sp``) and a large-page kernel (``process_lp``), operating on
attribute vectors split into *updatable* (WA — resident in device memory)
and *read-only* (RA — streamed alongside topology pages).

The paper's two algorithm families are both represented:

* **BFS-like** (traversal: stream only ``nextPIDSet`` pages per level) —
  :class:`BFSKernel`, :class:`SSSPKernel`, :class:`BCKernel`.
* **PageRank-like** (linear scans of the whole topology per iteration) —
  :class:`PageRankKernel`, :class:`RWRKernel`, :class:`WCCKernel`,
  :class:`DegreeKernel`.
"""

from repro.core.kernels.base import Kernel, KernelContext, PageWork, RoundPlan, ALL_PAGES
from repro.core.kernels.bfs import BFSKernel
from repro.core.kernels.pagerank import PageRankKernel
from repro.core.kernels.sssp import SSSPKernel
from repro.core.kernels.wcc import WCCKernel
from repro.core.kernels.bc import BCKernel
from repro.core.kernels.rwr import RWRKernel
from repro.core.kernels.degree import DegreeKernel
from repro.core.kernels.kcore import KCoreKernel
from repro.core.kernels.neighborhood import NeighborhoodKernel
from repro.core.kernels.cross_edges import CrossEdgesKernel
from repro.core.kernels.radius import RadiusKernel
from repro.core.kernels.induced import EgonetKernel, InducedSubgraphKernel

__all__ = [
    "Kernel",
    "KernelContext",
    "PageWork",
    "RoundPlan",
    "ALL_PAGES",
    "BFSKernel",
    "PageRankKernel",
    "SSSPKernel",
    "WCCKernel",
    "BCKernel",
    "RWRKernel",
    "DegreeKernel",
    "KCoreKernel",
    "NeighborhoodKernel",
    "CrossEdgesKernel",
    "RadiusKernel",
    "InducedSubgraphKernel",
    "EgonetKernel",
]
