"""Kernel protocol: what the GTS engine requires of a graph algorithm.

The engine (Algorithm 1) is algorithm-agnostic; a kernel supplies:

* **attribute specs** — how many bytes per vertex its WA and RA vectors
  occupy at the paper's field widths (Table 4 accounting), and whether it
  is *traversal* (BFS-like) or *full-scan* (PageRank-like);
* **round control** — :meth:`Kernel.next_round` returns the next
  :class:`RoundPlan` (a set of page IDs, or :data:`ALL_PAGES`), or ``None``
  when the algorithm converged; this is how level-by-level BFS, fixed
  iteration counts (PageRank), fixpoints (WCC) and multi-phase algorithms
  (BC's forward + backward sweeps) all fit one engine loop;
* **page kernels** — ``process_sp`` / ``process_lp`` mirroring Appendix
  B's two GPU kernels.  They update the kernel's state *in place* and
  return a :class:`PageWork` describing the work done (edges traversed,
  lane-steps for the timing model, pages to visit next level).

Kernels follow BSP snapshot semantics: within a round they read only
values committed by previous rounds and apply commutative, idempotent
updates (min for BFS/SSSP/WCC levels and labels, add for PageRank ranks),
so processing order across pages and GPUs never changes the result — the
property behind the engine's strategy-equivalence tests.
"""

import dataclasses
from typing import Optional

import numpy as np

from repro.core.micro import MicroTechnique, lane_steps, segment_lane_steps
from repro.format.page import PageKind, sorted_scatter_index

#: Sentinel round plan meaning "stream every page" (Algorithm 1's
#: ``ALL_PAGES`` constant for PageRank-like algorithms).
ALL_PAGES = "ALL_PAGES"


@dataclasses.dataclass
class RoundPlan:
    """What the engine should stream in the next round."""

    #: Either :data:`ALL_PAGES` or an iterable of page IDs.
    pids: object
    description: str = ""


@dataclasses.dataclass
class PageWork:
    """Work accounting returned by one page-kernel invocation."""

    num_records: int = 0
    active_vertices: int = 0
    edges_traversed: int = 0
    lane_steps: float = 0.0
    #: Page IDs discovered for the next round (``nextPIDSet_GPU`` updates);
    #: None for full-scan kernels.
    next_pids: Optional[np.ndarray] = None


@dataclasses.dataclass
class BatchWork:
    """Work accounting for a whole round processed as one batch.

    The per-page arrays are aligned with the :class:`RoundBatch`'s page
    order, so the engine books streams and updates :class:`RoundStats`
    with exactly the numbers the per-page path would have produced.
    """

    #: Per-page lane-steps (float64, bit-identical to the per-page
    #: :func:`repro.core.micro.lane_steps` values).
    lane_steps: np.ndarray
    #: Per-page edges traversed this round (int64).
    edges_traversed: np.ndarray
    #: Per-page active record counts (int64).
    active_vertices: np.ndarray
    #: Sorted unique page IDs discovered for the next round, or None for
    #: full-scan kernels.
    next_pids: Optional[np.ndarray] = None


class KernelContext:
    """Engine-provided context handed to every page-kernel invocation."""

    def __init__(self, db, micro_technique=MicroTechnique.EDGE_CENTRIC):
        self.db = db
        self.micro_technique = MicroTechnique.parse(micro_technique)

    def lane_steps(self, degrees, active_mask=None):
        """Lane-steps for a page under the configured micro technique."""
        return lane_steps(self.micro_technique, degrees, active_mask)

    def segment_lane_steps(self, batch, active_mask=None):
        """Per-page lane-steps for a whole :class:`RoundBatch`.

        Full-scan rounds (no active mask) memoise the result on the
        batch per technique: lane-steps depend only on the batch's
        immutable degrees and record layout, so PageRank/WCC-style
        kernels recompute them zero times after the first round.
        """
        if active_mask is None:
            memo = getattr(batch, "_lane_steps_memo", None)
            if memo is None:
                memo = {}
                batch._lane_steps_memo = memo
            steps = memo.get(self.micro_technique)
            if steps is None:
                steps = segment_lane_steps(
                    self.micro_technique, batch.degrees, batch.rec_indptr)
                memo[self.micro_technique] = steps
            return steps
        return segment_lane_steps(
            self.micro_technique, batch.degrees, batch.rec_indptr,
            active_mask)


class Kernel:
    """Base class for GTS graph-algorithm kernels."""

    #: Human-readable algorithm name ("BFS", "PageRank", ...).
    name = "abstract"
    #: True for BFS-like traversal kernels (use nextPIDSet + caching).
    traversal = False
    #: Bytes per vertex of WA at the paper's field widths (Table 4).
    wa_bytes_per_vertex = 0
    #: Bytes per vertex of RA streamed alongside pages (0 if none).
    ra_bytes_per_vertex = 0
    #: Cost of one lane-step in GPU cycles — the algorithm-intensity knob
    #: that separates Table 1's BFS and PageRank rows.
    cycles_per_lane_step = 1.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def init_state(self, db):
        """Allocate WA/RA vectors and any bookkeeping; returns the state."""
        raise NotImplementedError

    def next_round(self, state):
        """Return the next :class:`RoundPlan`, or None when finished."""
        raise NotImplementedError

    def finish_round(self, state, merged_next_pids):
        """Bulk-synchronisation hook: merge per-GPU nextPIDSets, swap
        double-buffered vectors, test convergence.  ``merged_next_pids``
        is the union of every ``PageWork.next_pids`` this round (an
        ``int64`` array, possibly empty) or None for full-scan kernels."""

    def results(self, state):
        """Extract the output vectors as a ``{name: ndarray}`` dict."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Page kernels (Appendix B)
    # ------------------------------------------------------------------
    def process_sp(self, page, state, ctx):
        """The small-page kernel (K_SP); returns :class:`PageWork`."""
        raise NotImplementedError

    def process_lp(self, page, state, ctx):
        """The large-page kernel (K_LP); returns :class:`PageWork`."""
        raise NotImplementedError

    def process_page(self, page, state, ctx):
        """Dispatch to the SP or LP kernel based on the page kind."""
        if page.kind is PageKind.SMALL:
            return self.process_sp(page, state, ctx)
        return self.process_lp(page, state, ctx)

    # ------------------------------------------------------------------
    # Batched execution (vectorized fast path)
    # ------------------------------------------------------------------
    def process_batch(self, batch, state, ctx):
        """Process a whole round's :class:`~repro.core.plan.RoundBatch`
        in one shot; returns :class:`BatchWork`.

        Implementations must be *bit-identical* to running
        :meth:`process_page` over the batch's pages in order — same
        state updates, same per-page lane-steps — so the engine can pick
        either path without changing results or simulated timing.  The
        base class leaves it unimplemented; the engine falls back to the
        per-page loop for kernels that don't override it.
        """
        raise NotImplementedError(
            "%s does not implement process_batch" % type(self).__name__)

    @classmethod
    def supports_batch(cls):
        """Whether this kernel overrides :meth:`process_batch`."""
        return cls.process_batch is not Kernel.process_batch

    # ------------------------------------------------------------------
    # Sharded execution (multiprocess host backend)
    # ------------------------------------------------------------------
    #: NumPy dtype of the per-segment partials a shard function returns
    #: (None for kernels without a sharded path).
    shard_dtype = None

    @classmethod
    def supports_shard(cls):
        """Whether this kernel overrides :meth:`make_shard_fn`.

        A sharded kernel factors :meth:`process_batch` into three pieces
        so the engine's ``backend="process"`` path can farm the
        segment-reduction out to worker processes:

        * :meth:`round_vector` — the read-only per-vertex vector the
          round's reductions gather from (the BSP snapshot);
        * :meth:`make_shard_fn` — a pure function computing per-segment
          partials for a contiguous segment range, closing over the
          batch's immutable arrays (fork-inherited, never pickled);
        * :meth:`apply_segment_results` — the serial, ordered state
          update, which stays in the parent so every float/int rounding
          step matches the serial path bit for bit.
        """
        return cls.make_shard_fn is not Kernel.make_shard_fn

    def shard_params(self, state):
        """Hashable parameters baked into this kernel's shard functions
        (worker-pool cache key component).  A pool built for one
        parameter set must not serve a run with another."""
        return ()

    def round_vector(self, state):
        """The read-only vector :meth:`make_shard_fn` closures gather
        from this round (e.g. ``prev`` ranks, previous labels)."""
        raise NotImplementedError

    def make_shard_fn(self, batch, state):
        """Return ``fn(vector, s0, s1) -> partials`` computing the
        per-segment reduction for segments ``[s0, s1)`` of ``batch``.

        ``fn`` must be bit-identical to slicing the serial
        :meth:`process_batch` reduction at the same segment boundaries:
        segment reductions are independent left-to-right folds, so a
        shard-local ``reduceat`` over ``[seg_starts[s0], seg_starts[s1])``
        reproduces the full-batch result exactly.  The closure may
        capture batch arrays and scalar parameters but must not touch
        mutable state — workers inherit it via fork and reuse it every
        round.
        """
        raise NotImplementedError(
            "%s does not implement make_shard_fn" % type(self).__name__)

    def batch_work(self, batch, ctx):
        """The :class:`BatchWork` accounting :meth:`process_batch` would
        return, without mutating state (parent-side, overlapped with
        worker compute)."""
        raise NotImplementedError(
            "%s does not implement batch_work" % type(self).__name__)

    def apply_segment_results(self, batch, state, partials):
        """Apply per-segment partials to the kernel state in the same
        sequential order the serial path uses (``np.add.at`` /
        ``np.minimum.at`` over ``seg_targets``)."""
        raise NotImplementedError(
            "%s does not implement apply_segment_results"
            % type(self).__name__)

    # ------------------------------------------------------------------
    # Memory accounting (drives WABuf sizing and O.O.M. behaviour)
    # ------------------------------------------------------------------
    def wa_bytes(self, num_vertices):
        """Total WA footprint at paper field widths (Table 4 numbers)."""
        return num_vertices * self.wa_bytes_per_vertex

    def ra_bytes(self, num_vertices):
        """Total RA footprint (streamed, not resident)."""
        return num_vertices * self.ra_bytes_per_vertex

    def __repr__(self):
        return "%s()" % type(self).__name__


def edge_expand(page, active_mask):
    """Shared helper: expand an active-record mask to edge granularity.

    Returns ``(targets, target_pids, weights, sources_idx)`` for the edges
    of active records:  ``targets`` are logical neighbour VIDs (already
    RVT-translated), ``target_pids`` the pages holding them (for
    nextPIDSet updates), ``weights`` the edge weights or None, and
    ``sources_idx`` maps each edge back to its record index in the page.
    """
    degrees = page.degrees()
    if page.kind is PageKind.SMALL:
        mask_per_edge = np.repeat(active_mask, degrees)
        targets = page.adj_vids[mask_per_edge]
        target_pids = page.adj_pids[mask_per_edge]
        weights = (page.adj_weights[mask_per_edge]
                   if page.adj_weights is not None else None)
        record_idx = np.repeat(
            np.arange(page.num_records, dtype=np.int64), degrees)
        sources_idx = record_idx[mask_per_edge]
        return targets, target_pids, weights, sources_idx
    # Large page: one record; either all edges or none.
    if not active_mask[0]:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, None, empty
    weights = page.adj_weights if page.adj_weights is not None else None
    sources_idx = np.zeros(page.num_edges, dtype=np.int64)
    return page.adj_vids, page.adj_pids, weights, sources_idx


def page_scatter_index(page, db=None):
    """Fetch (or compute) a page's sorted-scatter index.

    When ``db`` offers a database-level cache (``db.scatter_index``), the
    index is keyed by ``(page_id, topology_version)`` there, so it
    survives :class:`~repro.format.io.FileBackedDatabase` pool evictions
    — the page *object* may be re-parsed from bytes, but the argsort is
    not redone.  Without a database the index is cached on the page
    object as before (``page._scatter_index``).
    Returns ``(order, unique_targets, segment_starts)``.
    """
    if db is not None:
        db_index = getattr(db, "scatter_index", None)
        if db_index is not None:
            return db_index(page)
    cached = getattr(page, "_scatter_index", None)
    if cached is not None:
        return cached
    cached = sorted_scatter_index(page.adj_vids)
    page._scatter_index = cached
    return cached


def scatter_add(target_vector, page, per_edge_values, db=None):
    """Add per-edge contributions into ``target_vector`` (atomicAdd)."""
    order, unique_targets, starts = page_scatter_index(page, db)
    if len(unique_targets) == 0:
        return
    sums = np.add.reduceat(per_edge_values[order], starts)
    target_vector[unique_targets] += sums


def scatter_min(target_vector, page, per_edge_values, db=None):
    """Min-combine per-edge contributions into ``target_vector``."""
    order, unique_targets, starts = page_scatter_index(page, db)
    if len(unique_targets) == 0:
        return
    mins = np.minimum.reduceat(per_edge_values[order], starts)
    target_vector[unique_targets] = np.minimum(
        target_vector[unique_targets], mins)
