"""Cross-edges kernel (PageRank-like family, Section 3.3).

Given a partition assignment of the vertices, count the edges whose
endpoints fall in different parts — the paper lists "cross-edges" among
the linear-scan algorithms GTS supports (it is the quantity a graph
partitioner minimises, and what TOTEM's boundary traffic is made of).

One full-scan round.  The partition vector is read for both endpoints of
every edge: the source side arrives with the page (an RA subvector), but
the target side is a random access, so the whole partition vector must be
device-resident — it is accounted as WA (read-only) alongside the
per-vertex cross counters.
"""

import numpy as np

from repro.core.kernels.base import ALL_PAGES, Kernel, PageWork, RoundPlan
from repro.errors import ConfigurationError
from repro.format.page import PageKind


class _CrossEdgesState:
    def __init__(self, db, partition):
        self.partition = partition
        self.cross_count = np.zeros(db.num_vertices, dtype=np.int64)
        self.total_cross = 0
        self.total_edges = 0
        self.done = False


class CrossEdgesKernel(Kernel):
    """Count edges crossing a vertex partition in one topology scan."""

    name = "CrossEdges"
    traversal = False
    wa_bytes_per_vertex = 8       # partition label (4 B) + counter (4 B)
    ra_bytes_per_vertex = 0
    cycles_per_lane_step = 16.0   # two label loads and a compare per edge

    def __init__(self, partition):
        self.partition = np.asarray(partition, dtype=np.int64)
        if self.partition.ndim != 1:
            raise ConfigurationError("partition must be a 1-D assignment")

    def init_state(self, db):
        if len(self.partition) != db.num_vertices:
            raise ConfigurationError(
                "partition labels %d vertices but the graph has %d"
                % (len(self.partition), db.num_vertices))
        return _CrossEdgesState(db, self.partition)

    def next_round(self, state):
        if state.done:
            return None
        return RoundPlan(pids=ALL_PAGES, description="cross-edge scan")

    def finish_round(self, state, merged_next_pids):
        state.done = True

    def results(self, state):
        return {
            "cross_count": state.cross_count.copy(),
            "total_cross_edges": np.asarray([state.total_cross]),
            "cut_fraction": np.asarray([
                state.total_cross / state.total_edges
                if state.total_edges else 0.0]),
        }

    # ------------------------------------------------------------------
    def _scan(self, page, state, ctx, source_parts):
        crossing = state.partition[page.adj_vids] != source_parts
        num_cross = int(crossing.sum())
        state.total_cross += num_cross
        state.total_edges += page.num_edges
        if page.kind is PageKind.SMALL:
            # Segment-sum per record; np.add.reduceat mishandles empty
            # segments (degree-0 records), so scatter by edge owner.
            per_record = np.zeros(page.num_records, dtype=np.int64)
            edge_owner = np.repeat(
                np.arange(page.num_records, dtype=np.int64),
                page.degrees())
            np.add.at(per_record, edge_owner, crossing.astype(np.int64))
            state.cross_count[page.vids()] += per_record
        else:
            state.cross_count[page.vid] += num_cross
        return PageWork(
            num_records=page.num_records,
            active_vertices=page.num_records,
            edges_traversed=page.num_edges,
            lane_steps=ctx.lane_steps(page.degrees()),
        )

    def process_sp(self, page, state, ctx):
        source_parts = np.repeat(
            state.partition[page.vids()], page.degrees())
        return self._scan(page, state, ctx, source_parts)

    def process_lp(self, page, state, ctx):
        source_parts = np.full(page.num_edges,
                               state.partition[page.vid], dtype=np.int64)
        return self._scan(page, state, ctx, source_parts)
