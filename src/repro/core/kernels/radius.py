"""Effective-radius estimation kernel (PageRank-like family, Section 3.3).

The paper lists "radius estimations" among the linear-scan algorithms.
This kernel implements the HADI/Flajolet–Martin approach (Kang et al.,
ICDM 2008): every vertex carries ``num_sketches`` FM bitmask sketches of
the vertex set it can reach; each round ORs every vertex's sketches into
its out-neighbours' (a full topology scan, like one PageRank iteration),
so after ``h`` rounds vertex ``v``'s sketches estimate ``|N(v, h)|`` —
the number of vertices reachable within ``h`` hops.

The *effective radius* of ``v`` is the smallest ``h`` at which
``|N(v, h)|`` reaches 90 % of its final value; the estimated diameter is
the maximum effective radius.  Estimates carry the usual FM error
(~1/sqrt(num_sketches)); tests therefore check calibrated bounds rather
than exact counts.

WA is the sketch array (``4 * num_sketches`` bytes per vertex).
"""

import numpy as np

from repro.core.kernels.base import ALL_PAGES, Kernel, PageWork, RoundPlan
from repro.errors import ConfigurationError

#: Bits per FM sketch (uint32 masks estimate sets up to ~2^30).
_SKETCH_BITS = 32
#: Flajolet–Martin bias correction constant.
_FM_PHI = 0.77351


def _fm_least_zero_bit(masks):
    """Index of the lowest zero bit of each mask (vectorised)."""
    # ~mask has a 1 where mask has its lowest 0; isolate it and log2 it.
    inverted = ~masks
    lowest = inverted & (-inverted.astype(np.int64)).astype(np.uint32)
    return np.where(lowest == 0, _SKETCH_BITS,
                    np.log2(np.maximum(lowest, 1)).astype(np.int64))


def fm_estimate(sketches):
    """Estimated set cardinality from an ``(..., num_sketches)`` array."""
    bits = _fm_least_zero_bit(sketches)
    mean_bit = bits.mean(axis=-1)
    return (2.0 ** mean_bit) / _FM_PHI


class _RadiusState:
    def __init__(self, db, num_sketches, max_hops, seed):
        num_vertices = db.num_vertices
        rng = np.random.default_rng(seed)
        # Initialise each vertex's sketches with one geometric bit for
        # itself (the classic FM insertion).
        geometric = rng.geometric(0.5, size=(num_vertices, num_sketches))
        bit = np.minimum(geometric - 1, _SKETCH_BITS - 1)
        self.sketches = (np.uint32(1) << bit.astype(np.uint32))
        self.prev = self.sketches.copy()
        self.neighbourhood = np.zeros((max_hops + 1, num_vertices))
        self.neighbourhood[0] = fm_estimate(self.sketches)
        self.hop = 0
        self.changed = True


class RadiusKernel(Kernel):
    """HADI-style effective radius / diameter estimation."""

    name = "Radius"
    traversal = False
    ra_bytes_per_vertex = 0
    cycles_per_lane_step = 48.0   # per-edge multi-word OR

    def __init__(self, num_sketches=8, max_hops=16, threshold=0.9, seed=0):
        if num_sketches < 1:
            raise ConfigurationError("need at least one sketch")
        if max_hops < 1:
            raise ConfigurationError("need at least one hop")
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError("threshold must be in (0, 1]")
        self.num_sketches = num_sketches
        self.max_hops = max_hops
        self.threshold = threshold
        self.seed = seed

    @property
    def wa_bytes_per_vertex(self):
        return 4 * self.num_sketches

    def init_state(self, db):
        return _RadiusState(db, self.num_sketches, self.max_hops,
                            self.seed)

    def next_round(self, state):
        if state.hop >= self.max_hops or not state.changed:
            return None
        return RoundPlan(pids=ALL_PAGES,
                         description="sketch propagation hop %d"
                         % (state.hop + 1))

    def finish_round(self, state, merged_next_pids):
        state.hop += 1
        state.neighbourhood[state.hop] = fm_estimate(state.sketches)
        state.changed = bool(
            np.any(state.sketches != state.prev))
        state.prev = state.sketches.copy()

    def results(self, state):
        reached = state.neighbourhood[:state.hop + 1]
        final = reached[-1]
        # Effective radius: first hop reaching threshold * final estimate.
        target = self.threshold * final
        radius = np.full(len(final), state.hop, dtype=np.int32)
        for hop in range(state.hop, -1, -1):
            radius[reached[hop] >= target] = hop
        return {
            "effective_radius": radius,
            "neighbourhood_sizes": reached.copy(),
            "estimated_diameter": np.asarray([int(radius.max())]),
        }

    # ------------------------------------------------------------------
    def _propagate(self, page, state, source_rows, db=None):
        """OR each edge's source sketches into its target's sketches."""
        order, unique_targets, starts = _page_or_index(page, db)
        if len(unique_targets) == 0:
            return
        per_edge = state.prev[source_rows][order]
        merged = np.bitwise_or.reduceat(per_edge, starts, axis=0)
        state.sketches[unique_targets] |= merged

    def process_sp(self, page, state, ctx):
        degrees = page.degrees()
        source_rows = np.repeat(page.vids(), degrees)
        self._propagate(page, state, source_rows, db=ctx.db)
        return PageWork(
            num_records=page.num_records,
            active_vertices=page.num_records,
            edges_traversed=page.num_edges,
            lane_steps=ctx.lane_steps(degrees) * self.num_sketches,
        )

    def process_lp(self, page, state, ctx):
        source_rows = np.full(page.num_edges, page.vid, dtype=np.int64)
        self._propagate(page, state, source_rows, db=ctx.db)
        return PageWork(
            num_records=1,
            active_vertices=1,
            edges_traversed=page.num_edges,
            lane_steps=ctx.lane_steps(page.degrees()) * self.num_sketches,
        )


def _page_or_index(page, db=None):
    """Reuse the cached sorted-scatter index from the base helpers."""
    from repro.core.kernels.base import page_scatter_index
    return page_scatter_index(page, db)
