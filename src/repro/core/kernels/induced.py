"""Induced-subgraph and egonet kernels (Section 3.3's algorithm list).

* :class:`InducedSubgraphKernel` — given a vertex set, one full topology
  scan finds the edges with both endpoints inside the set (the induced
  subgraph), reporting per-vertex internal degrees, the edge count, and
  optionally the edges themselves.
* :class:`EgonetKernel` — the egonet of a vertex is the induced subgraph
  over the vertex and its neighbours; this kernel runs a 1-hop
  neighbourhood phase (BFS-like: only the ego's pages stream) followed by
  an induced-subgraph scan, two phases in one engine run — like BC, a
  multi-phase traversal expressed through the round protocol.

Both need the membership flags resident for random target lookups, so
the flag vector is accounted as WA alongside the counters (as with the
cross-edges kernel).
"""

import numpy as np

from repro.core.kernels.base import (
    ALL_PAGES,
    Kernel,
    PageWork,
    RoundPlan,
    edge_expand,
)
from repro.errors import ConfigurationError
from repro.format.page import PageKind


class _InducedState:
    def __init__(self, db, member):
        self.member = member
        self.internal_degree = np.zeros(db.num_vertices, dtype=np.int64)
        self.num_edges = 0
        self.edges = []
        self.done = False


class InducedSubgraphKernel(Kernel):
    """Edges of the subgraph induced by a vertex set, in one scan."""

    name = "InducedSubgraph"
    traversal = False
    wa_bytes_per_vertex = 5       # member flag (1 B) + counter (4 B)
    ra_bytes_per_vertex = 0
    cycles_per_lane_step = 16.0

    def __init__(self, vertex_set, collect_edges=False):
        self.vertex_set = np.asarray(vertex_set)
        if self.vertex_set.dtype != bool and self.vertex_set.ndim != 1:
            raise ConfigurationError(
                "vertex_set must be a boolean mask or an ID list")
        #: Collecting the actual edge list costs host memory; counting
        #: alone keeps WA at the documented footprint.
        self.collect_edges = collect_edges

    def _membership_mask(self, num_vertices):
        if self.vertex_set.dtype == bool:
            if len(self.vertex_set) != num_vertices:
                raise ConfigurationError(
                    "membership mask covers %d vertices, graph has %d"
                    % (len(self.vertex_set), num_vertices))
            return self.vertex_set.copy()
        mask = np.zeros(num_vertices, dtype=bool)
        ids = self.vertex_set.astype(np.int64)
        if len(ids) and (ids.min() < 0 or ids.max() >= num_vertices):
            raise ConfigurationError("vertex ID outside the graph")
        mask[ids] = True
        return mask

    def init_state(self, db):
        return _InducedState(db, self._membership_mask(db.num_vertices))

    def next_round(self, state):
        if state.done:
            return None
        return RoundPlan(pids=ALL_PAGES, description="induced scan")

    def finish_round(self, state, merged_next_pids):
        state.done = True

    def results(self, state):
        results = {
            "member": state.member.copy(),
            "internal_degree": state.internal_degree.copy(),
            "num_induced_edges": np.asarray([state.num_edges]),
        }
        if self.collect_edges:
            results["edges"] = (np.asarray(state.edges, dtype=np.int64)
                                if state.edges
                                else np.empty((0, 2), dtype=np.int64))
        return results

    # ------------------------------------------------------------------
    def _scan(self, page, state, ctx):
        active = state.member[page.vids()]
        targets, _, _, sources_idx = edge_expand(page, active)
        inside = state.member[targets]
        kept_targets = targets[inside]
        state.num_edges += int(len(kept_targets))
        if page.kind is PageKind.SMALL:
            source_vids = page.vids()[sources_idx[inside]]
        else:
            source_vids = np.full(len(kept_targets), page.vid,
                                  dtype=np.int64)
        np.add.at(state.internal_degree, source_vids, 1)
        if self.collect_edges:
            state.edges.extend(zip(source_vids.tolist(),
                                   kept_targets.tolist()))
        return PageWork(
            num_records=page.num_records,
            active_vertices=int(active.sum()),
            edges_traversed=page.num_edges,
            lane_steps=ctx.lane_steps(page.degrees()),
        )

    def process_sp(self, page, state, ctx):
        return self._scan(page, state, ctx)

    def process_lp(self, page, state, ctx):
        return self._scan(page, state, ctx)


class _EgonetState(_InducedState):
    def __init__(self, db, ego):
        member = np.zeros(db.num_vertices, dtype=bool)
        member[ego] = True
        super().__init__(db, member)
        self.db = db
        self.ego = ego
        self.phase = "expand"
        self.ego_pids = np.asarray([db.page_for_vertex(ego)],
                                   dtype=np.int64)


class EgonetKernel(InducedSubgraphKernel):
    """The ego vertex, its out-neighbours, and all edges among them."""

    name = "Egonet"
    traversal = True

    def __init__(self, ego_vertex=0, collect_edges=False):
        super().__init__(np.zeros(0, dtype=np.int64),
                         collect_edges=collect_edges)
        if ego_vertex < 0:
            raise ConfigurationError("ego vertex must be nonnegative")
        self.ego_vertex = ego_vertex

    def init_state(self, db):
        if self.ego_vertex >= db.num_vertices:
            raise ConfigurationError(
                "ego vertex %d outside graph of %d vertices"
                % (self.ego_vertex, db.num_vertices))
        return _EgonetState(db, self.ego_vertex)

    def next_round(self, state):
        if state.phase == "expand":
            return RoundPlan(pids=state.ego_pids,
                             description="ego expansion")
        if state.phase == "scan":
            return RoundPlan(pids=ALL_PAGES, description="egonet scan")
        return None

    def finish_round(self, state, merged_next_pids):
        if state.phase == "expand":
            state.phase = "scan"
        else:
            state.phase = "done"

    # ------------------------------------------------------------------
    def _expand(self, page, state, ctx):
        active = page.vids() == state.ego
        targets, _, _, _ = edge_expand(page, active)
        state.member[targets] = True
        return PageWork(
            num_records=page.num_records,
            active_vertices=int(active.sum()),
            edges_traversed=int(len(targets)),
            lane_steps=ctx.lane_steps(page.degrees(), active),
            next_pids=np.empty(0, dtype=np.int64),
        )

    def process_sp(self, page, state, ctx):
        if state.phase == "expand":
            return self._expand(page, state, ctx)
        return self._scan(page, state, ctx)

    def process_lp(self, page, state, ctx):
        if state.phase == "expand":
            return self._expand(page, state, ctx)
        return self._scan(page, state, ctx)
