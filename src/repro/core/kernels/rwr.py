"""Random Walk with Restart kernels (PageRank-like family, Section 3.3).

RWR computes the stationary distribution of a random walker that follows
out-edges with probability ``1 - restart`` and jumps back to the query
vertex with probability ``restart``.  Structurally it is PageRank with the
teleport mass concentrated on one vertex, so it shares PageRank's
full-scan streaming pattern and double-buffered WA/RA split.
"""

import numpy as np

from repro.core.kernels.base import (
    ALL_PAGES,
    Kernel,
    PageWork,
    RoundPlan,
    scatter_add,
)
from repro.errors import ConfigurationError


class _RWRState:
    def __init__(self, db, query_vertex, restart):
        num_vertices = db.num_vertices
        self.prev = np.zeros(num_vertices)
        self.prev[query_vertex] = 1.0
        self.next = np.zeros(num_vertices)
        self.next[query_vertex] = restart
        self.query_vertex = query_vertex
        self.restart = restart
        self.iteration = 0


class RWRKernel(Kernel):
    """Random walk with restart from a query vertex."""

    name = "RWR"
    traversal = False
    wa_bytes_per_vertex = 4
    ra_bytes_per_vertex = 4
    cycles_per_lane_step = 24.0   # same scattered-add profile as PageRank

    def __init__(self, query_vertex=0, iterations=10, restart=0.15):
        if iterations < 1:
            raise ConfigurationError("need at least one iteration")
        if not 0.0 <= restart <= 1.0:
            raise ConfigurationError("restart must be in [0, 1]")
        self.query_vertex = query_vertex
        self.iterations = iterations
        self.restart = restart

    def init_state(self, db):
        if self.query_vertex >= db.num_vertices:
            raise ConfigurationError(
                "query vertex %d outside graph of %d vertices"
                % (self.query_vertex, db.num_vertices))
        return _RWRState(db, self.query_vertex, self.restart)

    def next_round(self, state):
        if state.iteration >= self.iterations:
            return None
        return RoundPlan(pids=ALL_PAGES,
                         description="iteration %d" % state.iteration)

    def finish_round(self, state, merged_next_pids):
        state.iteration += 1
        state.prev, state.next = state.next, state.prev
        state.next.fill(0.0)
        state.next[state.query_vertex] = state.restart

    def results(self, state):
        return {"proximity": state.prev.copy()}

    # ------------------------------------------------------------------
    def process_sp(self, page, state, ctx):
        degrees = page.degrees()
        vids = page.vids()
        walk = 1.0 - state.restart
        contrib = np.where(
            degrees > 0,
            walk * state.prev[vids] / np.maximum(degrees, 1),
            0.0)
        scatter_add(state.next, page, np.repeat(contrib, degrees),
                    db=ctx.db)
        return PageWork(
            num_records=page.num_records,
            active_vertices=page.num_records,
            edges_traversed=page.num_edges,
            lane_steps=ctx.lane_steps(degrees),
        )

    def process_lp(self, page, state, ctx):
        contrib = ((1.0 - state.restart) * state.prev[page.vid]
                   / max(page.total_degree, 1))
        scatter_add(state.next, page, np.full(page.num_edges, contrib),
                    db=ctx.db)
        return PageWork(
            num_records=1,
            active_vertices=1,
            edges_traversed=page.num_edges,
            lane_steps=ctx.lane_steps(page.degrees()),
        )
