"""PageRank kernels (Appendix B.2, Algorithms 4 and 5).

PageRank is the paper's archetypal *full-scan* algorithm: every iteration
streams the entire topology once.  The WA vector is ``nextPR`` (4 bytes
per vertex — Table 4); ``prevPR`` is read-only within an iteration and is
streamed to the device page-by-page as RA subvectors.

Per edge ``(v, t)`` the kernel performs
``atomicAdd(nextPR[t], df * prevPR[v] / ADJLIST_SZ(v))``; for a large-page
vertex the divisor is the vertex's *total* degree across all of its large
pages (the paper's ``v.ADJLIST_SZ``).  At iteration end ``nextPR`` is
copied into ``prevPR`` and re-initialised to ``(1 - df) / |V|``.

Vertices with no out-edges contribute no mass (their rank leaks), matching
the paper's kernels, which add only out-edge contributions.
"""

import numpy as np

from repro.core.kernels.base import (
    ALL_PAGES,
    BatchWork,
    Kernel,
    PageWork,
    RoundPlan,
    scatter_add,
)
from repro.errors import ConfigurationError


class _PageRankState:
    def __init__(self, db, damping):
        num_vertices = db.num_vertices
        self.prev = np.full(num_vertices, 1.0 / num_vertices)
        self.next = np.full(num_vertices, (1.0 - damping) / num_vertices)
        self.iteration = 0
        self.damping = damping
        self.base = (1.0 - damping) / num_vertices
        #: L1 change of the rank vector in the last completed iteration.
        self.last_delta = float("inf")


class PageRankKernel(Kernel):
    """PageRank for a fixed iteration count or to convergence.

    The paper runs ten iterations; "users might need to perform [the
    framework loop] as many times as necessary in their applications"
    (Section 3.4), so an optional L1 ``tolerance`` stops early once the
    rank vector moves less than that between iterations.
    """

    name = "PageRank"
    traversal = False
    wa_bytes_per_vertex = 4       # nextPR (Table 4)
    ra_bytes_per_vertex = 4       # prevPR subvectors streamed with pages
    # Effective GPU cost per edge.  Counter-intuitively close to BFS's:
    # PageRank's scattered atomic adds are mitigated by its coalesced,
    # divergence-free scans, while BFS pays for warp divergence.  The
    # value makes the paper's absolute arithmetic line up (7.2 s for ten
    # Twitter iterations on two TITAN X: 1.47e10 * 24 / 48e9 = 7.3 s).
    cycles_per_lane_step = 24.0

    def __init__(self, iterations=10, damping=0.85, tolerance=None):
        if iterations < 1:
            raise ConfigurationError("need at least one iteration")
        if not 0.0 <= damping <= 1.0:
            raise ConfigurationError("damping must be in [0, 1]")
        if tolerance is not None and tolerance <= 0.0:
            raise ConfigurationError("tolerance must be positive")
        self.iterations = iterations
        self.damping = damping
        self.tolerance = tolerance

    def init_state(self, db):
        return _PageRankState(db, self.damping)

    def next_round(self, state):
        if state.iteration >= self.iterations:
            return None
        if self.tolerance is not None and state.last_delta < self.tolerance:
            return None
        return RoundPlan(pids=ALL_PAGES,
                         description="iteration %d" % state.iteration)

    def finish_round(self, state, merged_next_pids):
        state.iteration += 1
        state.last_delta = float(np.abs(state.next - state.prev).sum())
        state.prev, state.next = state.next, state.prev
        state.next.fill(state.base)

    def results(self, state):
        return {"rank": state.prev.copy()}

    # ------------------------------------------------------------------
    def process_sp(self, page, state, ctx):
        degrees = page.degrees()
        vids = page.vids()
        # SP vertices are never split across pages, so the record degree
        # is the vertex's total out-degree.
        contrib = np.where(
            degrees > 0,
            state.damping * state.prev[vids] / np.maximum(degrees, 1),
            0.0)
        per_edge = np.repeat(contrib, degrees)
        scatter_add(state.next, page, per_edge, db=ctx.db)
        return PageWork(
            num_records=page.num_records,
            active_vertices=page.num_records,
            edges_traversed=page.num_edges,
            lane_steps=ctx.lane_steps(degrees),
        )

    def process_lp(self, page, state, ctx):
        # Divide by the vertex's degree across all of its large pages.
        contrib = state.damping * state.prev[page.vid] / max(
            page.total_degree, 1)
        per_edge = np.full(page.num_edges, contrib)
        scatter_add(state.next, page, per_edge, db=ctx.db)
        return PageWork(
            num_records=1,
            active_vertices=1,
            edges_traversed=page.num_edges,
            lane_steps=ctx.lane_steps(page.degrees()),
        )

    def process_batch(self, batch, state, ctx):
        # ``rec_divisor`` is the record's degree for SP vertices and the
        # vertex's total degree for LP chunks, so one expression covers
        # both of the per-page kernels above.
        contrib = np.where(
            batch.rec_divisor > 0,
            state.damping * state.prev[batch.rec_vids]
            / np.maximum(batch.rec_divisor, 1),
            0.0)
        if batch.num_segments:
            # ``contrib[scatter_rec]`` is ``contrib[edge_rec]`` permuted
            # into scatter order, gathered in one pass.
            sums = np.add.reduceat(
                contrib[batch.scatter_rec()], batch.seg_starts)
            # ``np.add.at`` applies updates sequentially in argument
            # order; segments are page-major with unique targets inside
            # a page, so the accumulation order — and therefore every
            # float rounding step — matches the per-page loop exactly.
            np.add.at(state.next, batch.seg_targets, sums)
        return BatchWork(
            lane_steps=ctx.segment_lane_steps(batch),
            edges_traversed=batch.edges_per_page(),
            active_vertices=batch.records_per_page(),
        )

    # ------------------------------------------------------------------
    # Sharded execution (process backend)
    # ------------------------------------------------------------------
    shard_dtype = np.float64

    def shard_params(self, state):
        return ("damping", float(state.damping))

    def round_vector(self, state):
        return state.prev

    def make_shard_fn(self, batch, state):
        scatter_rec = batch.scatter_rec()
        rec_vids = batch.rec_vids
        rec_divisor = batch.rec_divisor
        seg_starts = batch.seg_starts
        num_segments = batch.num_segments
        num_edges = batch.num_edges
        damping = float(state.damping)

        def shard(vector, s0, s1):
            if s0 >= s1:
                return np.empty(0, dtype=np.float64)
            lo = int(seg_starts[s0])
            hi = int(seg_starts[s1]) if s1 < num_segments else num_edges
            # Gather first, then the elementwise contribution: same
            # per-element inputs as the serial path's contribution-then-
            # gather, so every float matches bit for bit.
            rec = scatter_rec[lo:hi]
            div = rec_divisor[rec]
            contrib = np.where(
                div > 0,
                damping * vector[rec_vids[rec]] / np.maximum(div, 1),
                0.0)
            return np.add.reduceat(contrib, seg_starts[s0:s1] - lo)

        return shard

    def batch_work(self, batch, ctx):
        return BatchWork(
            lane_steps=ctx.segment_lane_steps(batch),
            edges_traversed=batch.edges_per_page(),
            active_vertices=batch.records_per_page(),
        )

    def apply_segment_results(self, batch, state, partials):
        np.add.at(state.next, batch.seg_targets, partials)
