"""k-hop neighborhood kernel (BFS-like family, Section 3.3).

"Neighborhood" in the paper's algorithm list: the set of vertices within
``hops`` steps of a query vertex.  Structurally a depth-capped BFS, so
this kernel reuses the BFS page kernels and stops expanding once the cap
is reached — only the pages of the first ``hops`` frontiers are ever
streamed, which is the access pattern that motivates nextPIDSet.
"""

import numpy as np

from repro.core.kernels.bfs import BFSKernel, UNVISITED
from repro.errors import ConfigurationError


class NeighborhoodKernel(BFSKernel):
    """Membership of the ``hops``-hop out-neighbourhood of a vertex."""

    name = "Neighborhood"

    def __init__(self, query_vertex=0, hops=2):
        super().__init__(start_vertex=query_vertex)
        if hops < 0:
            raise ConfigurationError("hops must be nonnegative")
        self.hops = hops

    def next_round(self, state):
        if state.cur_level >= self.hops:
            return None
        return super().next_round(state)

    def results(self, state):
        levels = state.level
        member = (levels != UNVISITED) & (levels <= self.hops)
        return {
            "member": member,
            "hop": np.where(member, levels, UNVISITED).astype(np.int32),
        }
