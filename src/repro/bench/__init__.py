"""Experiment harness: datasets, runners and table formatting.

This subpackage turns the library into the paper's evaluation section:

* :mod:`~repro.bench.datasets` — the scaled dataset registry mirroring
  Table 3 (RMAT26–RMAT32 plus the Twitter/UK2007/YahooWeb stand-ins),
  with cached graphs and slotted-page databases.
* :mod:`~repro.bench.harness` — engine runners that turn O.O.M. into the
  paper's ``O.O.M.`` table entries, plus plain-text table rendering.
* :mod:`~repro.bench.experiments` — one function per paper table/figure;
  the ``benchmarks/`` suite and the examples call these.
"""

from repro.bench.datasets import (
    DATASETS,
    SCALE_FACTOR,
    dataset_graph,
    dataset_database,
    default_start_vertex,
)
from repro.bench.harness import ExperimentTable, run_or_oom, format_cell

__all__ = [
    "DATASETS",
    "SCALE_FACTOR",
    "dataset_graph",
    "dataset_database",
    "default_start_vertex",
    "ExperimentTable",
    "run_or_oom",
    "format_cell",
]
