"""One function per paper table/figure (the per-experiment index of
DESIGN.md §4).

Each function runs the experiment on the scaled datasets and returns an
:class:`~repro.bench.harness.ExperimentTable` whose rows/columns mirror
the paper's artifact.  The ``benchmarks/`` suite calls these under
pytest-benchmark and saves the rendered tables under ``results/``;
EXPERIMENTS.md records the paper-versus-measured comparison.

Elapsed times are simulated seconds at 1/8192 scale; multiply by 8192 for
paper-equivalent seconds (ratios are scale-invariant).
"""

import dataclasses

import numpy as np

from repro.baselines.cpu import (
    GaloisEngine,
    LigraEngine,
    LigraPlusEngine,
    MTGLEngine,
    scaled_cpu_host,
)
from repro.baselines.distributed import (
    GiraphEngine,
    GraphXEngine,
    NaiadEngine,
    PowerGraphEngine,
    scaled_cluster,
)
from repro.baselines.gpu import (
    CuShaEngine,
    MapGraphEngine,
    TotemEngine,
    TOTEM_PARTITION_TABLE,
)
from repro.bench.datasets import (
    SCALE_FACTOR,
    dataset_database,
    dataset_graph,
    dataset_spec,
    default_start_vertex,
)
from repro.bench.harness import (
    NOT_AVAILABLE,
    OOM,
    ExperimentTable,
    format_cell,
    run_or_oom,
)
from repro.core import (
    BCKernel,
    BFSKernel,
    GTSEngine,
    PageRankKernel,
    SSSPKernel,
    WCCKernel,
)
from repro.core.cache import PageCache
from repro.errors import CapacityError
from repro.format import SIX_BYTE_CONFIGS, PageFormatConfig, build_database
from repro.graphgen import generate_rmat
from repro.hardware.specs import (
    HDD_SPEC,
    SSD_SPEC,
    scaled_workstation,
)
from repro.units import KB, MB, format_bytes

#: Default iteration count for PageRank experiments (the paper uses 10).
PAGERANK_ITERATIONS = 10


# ----------------------------------------------------------------------
# Shared constructors
# ----------------------------------------------------------------------
def _machine(num_gpus=2, num_ssds=2, storage_spec=SSD_SPEC):
    return scaled_workstation(num_gpus=num_gpus, num_ssds=num_ssds,
                              storage_spec=storage_spec)


def _gts_run(kernel, name, weighted=False, symmetrised=False,
             machine=None, strategy=None, dataset=None, **engine_kwargs):
    """Run GTS on a registry dataset with the paper's strategy policy:
    Strategy-P while WA fits one GPU, Strategy-S otherwise."""
    db = dataset if dataset is not None else dataset_database(
        name, weighted=weighted, symmetrised=symmetrised)
    machine = machine or _machine()
    if strategy is not None:
        engine = GTSEngine(db, machine, strategy=strategy, **engine_kwargs)
        return engine.run(kernel, dataset_name=name)
    try:
        engine = GTSEngine(db, machine, strategy="performance",
                           **engine_kwargs)
        return engine.run(kernel, dataset_name=name)
    except CapacityError:
        engine = GTSEngine(db, machine, strategy="scalability",
                           **engine_kwargs)
        return engine.run(kernel, dataset_name=name)


def _distributed_engines():
    cluster = scaled_cluster(SCALE_FACTOR)
    return [Engine(cluster, time_scale=SCALE_FACTOR)
            for Engine in (GraphXEngine, GiraphEngine,
                           PowerGraphEngine, NaiadEngine)]


def _cpu_engines():
    host = scaled_cpu_host(SCALE_FACTOR)
    return [Engine(host, time_scale=SCALE_FACTOR)
            for Engine in (MTGLEngine, GaloisEngine,
                           LigraEngine, LigraPlusEngine)]


def _gpu_engines():
    host = scaled_cpu_host(SCALE_FACTOR)
    machine = _machine()
    kwargs = dict(host=host, gpus=list(machine.gpus), pcie=machine.pcie,
                  time_scale=SCALE_FACTOR)
    return [MapGraphEngine(**kwargs), CuShaEngine(**kwargs),
            TotemEngine(**kwargs)]


def _baseline_run(engine, algorithm, name, **params):
    graph_kwargs = {}
    if algorithm == "SSSP":
        graph_kwargs["weighted"] = True
    if algorithm == "CC":
        graph_kwargs["symmetrised"] = True
    graph = dataset_graph(name, **graph_kwargs)
    method = getattr(engine, {
        "BFS": "run_bfs",
        "PageRank": "run_pagerank",
        "SSSP": "run_sssp",
        "CC": "run_cc",
        "BC": "run_bc",
    }[algorithm])
    if algorithm in ("BFS", "SSSP"):
        params.setdefault("start_vertex", default_start_vertex(graph))
    if algorithm == "BC":
        params.setdefault("sources", (default_start_vertex(graph),))
    return run_or_oom(method, graph, dataset_name=name, **params)


def _gts_algorithm_run(algorithm, name, iterations=None, **engine_kwargs):
    graph_kwargs = {}
    if algorithm in ("BFS", "SSSP", "BC"):
        graph = dataset_graph(name, weighted=(algorithm == "SSSP"))
        start = default_start_vertex(graph)
    if algorithm == "BFS":
        kernel = BFSKernel(start_vertex=start)
    elif algorithm == "PageRank":
        kernel = PageRankKernel(
            iterations=iterations or PAGERANK_ITERATIONS)
    elif algorithm == "SSSP":
        kernel = SSSPKernel(start_vertex=start)
        graph_kwargs["weighted"] = True
    elif algorithm == "CC":
        kernel = WCCKernel()
        graph_kwargs["symmetrised"] = True
    elif algorithm == "BC":
        kernel = BCKernel(sources=(start,))
    else:
        raise ValueError("unknown algorithm %r" % (algorithm,))
    return run_or_oom(_gts_run, kernel, name, **graph_kwargs,
                      **engine_kwargs)


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table1_transfer_kernel_ratios():
    """Table 1: transfer-time : kernel-time ratios, BFS and PageRank."""
    datasets = ["twitter", "uk2007", "yahooweb"]
    table = ExperimentTable(
        "Table 1: transfer : kernel execution time ratios",
        datasets,
        caption="Paper: BFS 1:3 / 1:1 / 2:1, PageRank 1:20 / 1:6 / 1:4. "
                "Measured with the page cache off: the table profiles "
                "the pure streaming pipeline (Figures 3-4), where every "
                "kernel is paired with its page transfer.")
    for algorithm in ("BFS", "PageRank"):
        cells = []
        for name in datasets:
            result = _gts_algorithm_run(algorithm, name,
                                        enable_caching=False)
            ratio = result.transfer_to_kernel_ratio
            if ratio >= 1.0:
                cells.append("%.1f:1" % ratio)
            elif ratio > 0:
                cells.append("1:%.1f" % (1.0 / ratio))
            else:
                cells.append("0:1")
        table.add_row(algorithm, cells)
    return table


def table2_id_configurations():
    """Table 2: the three 6-byte physical-ID configurations."""
    table = ExperimentTable(
        "Table 2: configurations of a 6-byte physical ID",
        ["max. page ID", "max. slot number", "max. page size"],
        caption="Paper: 64 K / 4 B / 80 GB; 16 M / 16 M / 320 MB; "
                "4 B / 64 K / 1.25 MB.")
    for (p, q), config in sorted(SIX_BYTE_CONFIGS.items()):
        table.add_row("p=%d q=%d" % (p, q), [
            "%d" % config.max_page_id,
            "%d" % config.max_slot_number,
            format_bytes(config.theoretical_max_page_size()),
        ])
    return table


def table3_dataset_statistics(names=None):
    """Table 3: dataset statistics and slotted-page counts (scaled)."""
    names = names or ["rmat27", "rmat28", "rmat29", "rmat30", "rmat31",
                      "rmat32", "twitter", "uk2007", "yahooweb"]
    table = ExperimentTable(
        "Table 3: graph dataset statistics (1/8192 scale)",
        ["#vertices", "#edges", "(p,q)", "#SP", "#LP"],
        caption="Page counts depend on the scaled page sizes (2 KB / "
                "8 KB); the paper's absolute counts used 1 MB / 64 MB "
                "pages at full scale.")
    for name in names:
        db = dataset_database(name)
        stats = db.statistics()
        table.add_row(name, [
            stats["vertices"], stats["edges"],
            "(%d,%d)" % (stats["p"], stats["q"]),
            stats["num_sp"], stats["num_lp"],
        ])
    return table


def table4_wa_sizes(names=None):
    """Table 4: WA sizes versus topology size per algorithm (scaled)."""
    names = names or ["rmat28", "rmat29", "rmat30", "rmat31", "rmat32"]
    kernels = [("BFS", BFSKernel()), ("PageRank", PageRankKernel()),
               ("SSSP", SSSPKernel()), ("CC", WCCKernel())]
    table = ExperimentTable(
        "Table 4: topology vs WA sizes (1/8192 scale)",
        ["topology"] + [label for label, _ in kernels],
        caption="Ratios of WA to topology match the paper (1.7%-10%): "
                "the byte-per-vertex widths are the paper's.")
    for name in names:
        db = dataset_database(name)
        cells = [format_bytes(db.topology_bytes())]
        for _, kernel in kernels:
            cells.append(format_bytes(kernel.wa_bytes(db.num_vertices)))
        table.add_row(name, cells)
    return table


def table5_totem_partitions():
    """Table 5: TOTEM's GPU:CPU partition ratios (Appendix C)."""
    datasets = ["rmat27", "rmat28", "rmat29", "twitter", "uk2007",
                "yahooweb"]
    columns = ["1 GPU BFS", "1 GPU PageRank", "2 GPU BFS",
               "2 GPU PageRank"]
    table = ExperimentTable(
        "Table 5: TOTEM partition ratios (GPU%:CPU%)",
        columns,
        caption="Values are the paper's recommended options; YahooWeb "
                "has no 2-GPU configuration (N/A), as in the paper.")
    for name in datasets:
        cells = []
        for gpus in (1, 2):
            for algorithm in ("BFS", "PageRank"):
                key = (name, algorithm, gpus)
                if key in TOTEM_PARTITION_TABLE:
                    fraction = TOTEM_PARTITION_TABLE[key]
                    cells.append("%d:%d" % (round(fraction * 100),
                                            round((1 - fraction) * 100)))
                else:
                    cells.append(NOT_AVAILABLE)
        table.add_row(name, cells)
    return table


# ----------------------------------------------------------------------
# Figures 6-8: engine comparisons
# ----------------------------------------------------------------------
def _comparison_figure(title, engines_factory, datasets, algorithm,
                       caption, include_gts=True, **params):
    from repro.bench.charts import chart_from_results
    outcomes = {}
    for engine in engines_factory():
        outcomes[engine.name] = {
            name: _baseline_run(engine, algorithm, name, **params)
            for name in datasets
        }
    if include_gts:
        outcomes["GTS"] = {
            name: _gts_algorithm_run(algorithm, name, **params)
            for name in datasets
        }
    table = ExperimentTable(title, datasets, caption=caption)
    for name, per_dataset in outcomes.items():
        table.add_row(name, [format_cell(per_dataset[dataset])
                             for dataset in datasets])
    # Append the paper-style log-scale bar chart below the caption.
    chart = chart_from_results(title + " — chart", list(datasets),
                               outcomes)
    table.caption = (caption + "\n\n" + chart) if caption else chart
    return table


def section8_streaming(algorithm="BFS",
                       datasets=("twitter", "yahooweb", "rmat28")):
    """Section 8: GTS vs the out-of-core streaming engines.

    The paper's discussion (not a numbered figure): X-Stream must stream
    the entire edge list every scatter-gather iteration, so traversal on
    a high-diameter graph (YahooWeb) costs it hundreds of full scans;
    GraphChi is worse still (no I/O-compute overlap).  GTS streams only
    the frontier's pages.
    """
    from repro.baselines.outofcore import GraphChiEngine, XStreamEngine
    host = scaled_cpu_host(SCALE_FACTOR)
    engines = [
        XStreamEngine(host=host, storage=SSD_SPEC, num_disks=2,
                      time_scale=SCALE_FACTOR),
        GraphChiEngine(host=host, storage=SSD_SPEC, num_disks=2,
                       time_scale=SCALE_FACTOR),
    ]
    table = ExperimentTable(
        "Section 8: out-of-core streaming engines (%s)" % algorithm,
        list(datasets),
        caption="X-Stream re-streams every edge per iteration; the "
                "high-diameter web graph multiplies that by its depth. "
                "GTS streams only nextPIDSet pages (with a 20% memory "
                "buffer here so all three hit storage).")
    for engine in engines:
        cells = []
        for name in datasets:
            outcome = _baseline_run(engine, algorithm, name)
            cells.append(format_cell(outcome))
        table.add_row(engine.name, cells)
    cells = []
    for name in datasets:
        db = dataset_database(name)
        outcome = _gts_algorithm_run(
            algorithm, name,
            mm_buffer_bytes=int(0.2 * db.topology_bytes()))
        cells.append(format_cell(outcome))
    table.add_row("GTS", cells)
    return table


def figure4_timelines(name="rmat27", num_streams=16):
    """Figure 4: actual timeline of copy operations for BFS and PageRank.

    Runs both algorithms with tracing enabled and renders the per-stream
    Gantt charts; the paper's observation is that "the timeline for
    PageRank is denser than that for BFS since PageRank is
    computationally intensive, whereas BFS is not".
    """
    from repro.hardware.trace import timeline_density
    graph = dataset_graph(name)
    table = ExperimentTable(
        "Figure 4: stream timelines (%s, %d streams)"
        % (name, num_streams),
        ["mean stream density", "copy-engine busy", "elapsed"])
    timelines = []
    for algorithm in ("BFS", "PageRank"):
        result = _gts_algorithm_run(
            algorithm, name, num_streams=num_streams, tracing=True,
            enable_caching=False)
        # Re-run bookkeeping: density comes from the rendered result.
        density = [line for line in result.timeline.splitlines()
                   if "stream[" in line]
        mean_density = (
            sum(float(line.rsplit("|", 1)[1].rstrip("% "))
                for line in density) / len(density) if density else 0.0)
        copy_line = next(line for line in result.timeline.splitlines()
                         if "copy engine" in line)
        copy_busy = float(copy_line.rsplit("|", 1)[1].rstrip("% "))
        table.add_row(algorithm, [
            "%.0f%%" % mean_density,
            "%.0f%%" % copy_busy,
            format_cell(result),
        ])
        timelines.append("--- %s ---\n%s" % (algorithm, result.timeline))
    table.caption = ("'#' marks copies, '=' kernel execution.\n\n"
                     + "\n\n".join(timelines))
    return table


FIGURE6_DATASETS = ["twitter", "uk2007", "yahooweb", "rmat28", "rmat29",
                    "rmat30", "rmat31", "rmat32"]


def figure6_distributed(algorithm="BFS", datasets=None):
    """Figure 6: GTS vs GraphX / Giraph / PowerGraph / Naiad."""
    datasets = datasets or FIGURE6_DATASETS
    suffix = (" (PageRank x%d)" % PAGERANK_ITERATIONS
              if algorithm == "PageRank" else " (BFS)")
    return _comparison_figure(
        "Figure 6: GTS vs distributed engines" + suffix,
        _distributed_engines, datasets, algorithm,
        caption="Simulated seconds at 1/8192 scale; O.O.M. mirrors the "
                "paper's out-of-memory outcomes.  Only GTS reaches "
                "RMAT31/RMAT32.")


FIGURE7_DATASETS = ["twitter", "uk2007", "yahooweb", "rmat27", "rmat28",
                    "rmat29", "rmat30"]


def figure7_cpu(algorithm="BFS", datasets=None):
    """Figure 7: GTS vs MTGL / Galois / Ligra / Ligra+."""
    datasets = datasets or FIGURE7_DATASETS
    suffix = (" (PageRank x%d)" % PAGERANK_ITERATIONS
              if algorithm == "PageRank" else " (BFS)")
    return _comparison_figure(
        "Figure 7: GTS vs CPU engines" + suffix,
        _cpu_engines, datasets, algorithm,
        caption="CPU engines go O.O.M. once both CSR directions exceed "
                "main memory (YahooWeb, RMAT29+), as in the paper.")


def figure8_gpu(algorithm="BFS", datasets=None):
    """Figure 8: GTS vs MapGraph / CuSha / TOTEM."""
    datasets = datasets or FIGURE7_DATASETS
    suffix = (" (PageRank x%d)" % PAGERANK_ITERATIONS
              if algorithm == "PageRank" else " (BFS)")
    return _comparison_figure(
        "Figure 8: GTS vs GPU engines" + suffix,
        _gpu_engines, datasets, algorithm,
        caption="MapGraph/CuSha die on GPU memory early; TOTEM wins "
                "small PageRank, loses BFS and everything large.")


# ----------------------------------------------------------------------
# Figure 9: strategies x storage types
# ----------------------------------------------------------------------
def figure9_strategies(algorithm="BFS", name="rmat30"):
    """Figure 9: Strategy-P vs Strategy-S across storage types."""
    db = dataset_database(name)
    graph = dataset_graph(name)
    if algorithm == "BFS":
        kernel = BFSKernel(start_vertex=default_start_vertex(graph))
    else:
        kernel = PageRankKernel(iterations=PAGERANK_ITERATIONS)
    storage_settings = [
        ("in-memory", dict(num_ssds=2, storage_spec=SSD_SPEC), None),
        ("2 SSDs", dict(num_ssds=2, storage_spec=SSD_SPEC), 0.2),
        ("1 SSD", dict(num_ssds=1, storage_spec=SSD_SPEC), 0.2),
        ("2 HDDs", dict(num_ssds=2, storage_spec=HDD_SPEC), 0.2),
    ]
    table = ExperimentTable(
        "Figure 9: strategies x storage types (%s, %s)" % (algorithm, name),
        [label for label, _, _ in storage_settings],
        caption="Storage rows cap the main-memory buffer at 20% of the "
                "graph to force storage I/O (the paper's RMAT31/32 "
                "buffer policy applied to RMAT30 for this sweep).")
    for strategy in ("performance", "scalability"):
        cells = []
        for _, machine_kwargs, buffer_fraction in storage_settings:
            machine = _machine(**machine_kwargs)
            mm_buffer = (None if buffer_fraction is None else
                         int(buffer_fraction * db.topology_bytes()))
            outcome = run_or_oom(
                _gts_run, kernel, name, machine=machine, strategy=strategy,
                mm_buffer_bytes=mm_buffer)
            cells.append(format_cell(outcome))
        table.add_row("Strategy-%s" % strategy[0].upper(), cells)
    return table


# ----------------------------------------------------------------------
# Figure 10: stream-count sweep
# ----------------------------------------------------------------------
def figure10_streams(algorithm="BFS", names=None,
                     stream_counts=(1, 2, 4, 8, 16, 32)):
    """Figure 10: elapsed time versus the number of GPU streams."""
    names = names or ["rmat26", "rmat27", "rmat28", "rmat29"]
    table = ExperimentTable(
        "Figure 10: number of streams sweep (%s)" % algorithm,
        ["%d streams" % k for k in stream_counts],
        caption="Monotone improvement through 32 streams, as in the "
                "paper.")
    for name in names:
        graph = dataset_graph(name)
        cells = []
        for streams in stream_counts:
            if algorithm == "BFS":
                kernel = BFSKernel(default_start_vertex(graph))
            else:
                kernel = PageRankKernel(iterations=PAGERANK_ITERATIONS)
            outcome = run_or_oom(_gts_run, kernel, name,
                                 num_streams=streams)
            cells.append(format_cell(outcome))
        table.add_row(name, cells)
    return table


# ----------------------------------------------------------------------
# Figure 11: cache-size sweep
# ----------------------------------------------------------------------
#: Paper cache sizes (MB) scaled by 8192 to bytes.
FIGURE11_CACHE_SIZES = tuple(
    int(mb * MB / SCALE_FACTOR) for mb in (32, 1024, 2048, 3072, 4096, 5120))


def figure11_cache(names=None, cache_sizes=FIGURE11_CACHE_SIZES):
    """Figure 11: BFS elapsed time and cache hit rate vs cache size."""
    names = names or ["rmat26", "rmat27", "rmat28", "rmat29"]
    columns = [format_bytes(size) for size in cache_sizes]
    elapsed_table = ExperimentTable(
        "Figure 11a: BFS elapsed time vs cache size", columns,
        caption="Cache sizes are the paper's 32-5120 MB scaled by 8192.")
    hit_table = ExperimentTable(
        "Figure 11b: cache hit rate vs cache size", columns,
        caption="Hit rate grows with cache size and shrinks with "
                "topology size, tracking the paper's B/(S+L) estimate.")
    for name in names:
        graph = dataset_graph(name)
        elapsed_cells = []
        hit_cells = []
        for size in cache_sizes:
            kernel = BFSKernel(default_start_vertex(graph))
            outcome = run_or_oom(_gts_run, kernel, name, cache_bytes=size)
            elapsed_cells.append(format_cell(outcome))
            if isinstance(outcome, str):
                hit_cells.append(outcome)
            else:
                hit_cells.append("%.1f%%" % (100 * outcome.cache_hit_rate))
        elapsed_table.add_row(name, elapsed_cells)
        hit_table.add_row(name, hit_cells)
    return elapsed_table, hit_table


# ----------------------------------------------------------------------
# Figure 13: additional algorithms (SSSP, CC, BC)
# ----------------------------------------------------------------------
def figure13_algorithms(part="SSSP"):
    """Figure 13: SSSP and CC vs all engines; BC vs TOTEM."""
    if part in ("SSSP", "CC"):
        datasets = ["twitter", "rmat28"]
        def engines():
            return _distributed_engines() + [_gpu_engines()[-1]]
        return _comparison_figure(
            "Figure 13: %s comparison" % part, engines, datasets, part,
            caption="GTS significantly outperforms the distributed "
                    "engines and TOTEM for %s, as in the paper." % part)
    if part == "BC":
        datasets = ["twitter", "rmat27", "rmat28"]
        def engines():
            return [_gpu_engines()[-1]]
        return _comparison_figure(
            "Figure 13: BC comparison (single source)", engines, datasets,
            "BC",
            caption="Paper compares TOTEM and GTS only (single-node "
                    "mode); one Brandes source from the busiest vertex.")
    raise ValueError("part must be SSSP, CC or BC")


# ----------------------------------------------------------------------
# Figure 14: micro-level technique x density
# ----------------------------------------------------------------------
def figure14_micro(algorithm="BFS", densities=(4, 8, 16, 32),
                   rmat_scale=15, seed=28):
    """Figure 14: vertex-/edge-centric/hybrid across graph density."""
    table = ExperimentTable(
        "Figure 14: micro-level techniques vs density (%s, RMAT28 scale)"
        % algorithm,
        ["1:%d" % d for d in densities],
        caption="Vertex-centric collapses as density grows; hybrid "
                "tracks the better of the two per page.")
    spec = dataset_spec("rmat28")
    machine = _machine()
    cells_by_technique = {"vertex": [], "edge": [], "hybrid": []}
    for density in densities:
        graph = generate_rmat(rmat_scale, edge_factor=density, seed=seed)
        db = build_database(graph, spec.format_config(),
                            name="rmat%d-1:%d" % (rmat_scale, density))
        for technique in cells_by_technique:
            if algorithm == "BFS":
                kernel = BFSKernel(default_start_vertex(graph))
            else:
                kernel = PageRankKernel(iterations=PAGERANK_ITERATIONS)
            outcome = run_or_oom(
                _gts_run, kernel, db.name, dataset=db, machine=machine,
                micro_technique=technique)
            cells_by_technique[technique].append(format_cell(outcome))
    for technique, cells in cells_by_technique.items():
        table.add_row("%s-centric" % technique if technique != "hybrid"
                      else "hybrid", cells)
    return table


# ----------------------------------------------------------------------
# Ablations (design choices DESIGN.md calls out)
# ----------------------------------------------------------------------
def ablation_caching(names=None):
    """Ablation A1: the Section 3.3 page cache on vs off (BFS)."""
    names = names or ["rmat26", "rmat27", "rmat28", "rmat29"]
    table = ExperimentTable(
        "Ablation: GPU page cache on vs off (BFS)",
        names,
        caption="Caching removes repeat PCI-E copies of revisited pages.")
    for label, enabled in (("cache on", True), ("cache off", False)):
        cells = []
        for name in names:
            graph = dataset_graph(name)
            kernel = BFSKernel(default_start_vertex(graph))
            outcome = run_or_oom(_gts_run, kernel, name,
                                 enable_caching=enabled)
            cells.append(format_cell(outcome))
        table.add_row(label, cells)
    return table


def ablation_gpu_scaling(name="rmat29", gpu_counts=(1, 2, 4),
                         algorithm="PageRank"):
    """Ablation A2: speedup vs GPU count under both strategies.

    Section 4's claim: Strategy-P speeds up with added GPUs, Strategy-S
    stays flat (it buys capacity, not speed).
    """
    table = ExperimentTable(
        "Ablation: GPU-count scaling (%s, %s)" % (algorithm, name),
        ["%d GPU(s)" % n for n in gpu_counts],
        caption="Strategy-P divides the page stream; Strategy-S "
                "replicates it.")
    graph = dataset_graph(name)
    for strategy in ("performance", "scalability"):
        cells = []
        for gpus in gpu_counts:
            machine = _machine(num_gpus=gpus)
            if algorithm == "BFS":
                kernel = BFSKernel(default_start_vertex(graph))
            else:
                kernel = PageRankKernel(iterations=PAGERANK_ITERATIONS)
            outcome = run_or_oom(_gts_run, kernel, name, machine=machine,
                                 strategy=strategy)
            cells.append(format_cell(outcome))
        table.add_row("Strategy-%s" % strategy[0].upper(), cells)
    return table


def ablation_ssd_scaling(name="rmat30", ssd_counts=(1, 2, 4),
                         algorithm="PageRank"):
    """Ablation A5: speedup versus the number of SSDs.

    Section 4.1: GTS stripes pages over SSDs with ``g(j)`` and "shows a
    stable speedup when adding ... an SSD to the machine" as long as the
    run is I/O-bound.  The main-memory buffer is capped at 20 % so
    storage stays on the critical path.
    """
    db = dataset_database(name)
    graph = dataset_graph(name)
    table = ExperimentTable(
        "Ablation: SSD-count scaling (%s, %s)" % (algorithm, name),
        ["%d SSD(s)" % n for n in ssd_counts],
        caption="Striping g(j) = j mod #SSDs multiplies aggregate fetch "
                "bandwidth until PCI-E becomes the bottleneck.")
    cells = []
    for ssds in ssd_counts:
        machine = _machine(num_ssds=ssds)
        if algorithm == "BFS":
            kernel = BFSKernel(default_start_vertex(graph))
        else:
            kernel = PageRankKernel(iterations=PAGERANK_ITERATIONS)
        outcome = run_or_oom(
            _gts_run, kernel, name, machine=machine,
            mm_buffer_bytes=int(0.2 * db.topology_bytes()))
        cells.append(format_cell(outcome))
    table.add_row("GTS", cells)
    return table


def ablation_buffering(name="rmat31", fractions=(0.05, 0.2, 0.5, 1.0),
                       algorithm="PageRank"):
    """Ablation A3: main-memory page-buffer size on an SSD-resident graph.

    Section 7.5 credits measured times beating the naive bandwidth
    arithmetic to "the page buffering mechanism"; this sweep quantifies
    it.
    """
    db = dataset_database(name)
    table = ExperimentTable(
        "Ablation: main-memory buffer size (%s, %s)" % (algorithm, name),
        ["%d%% of graph" % round(100 * f) for f in fractions],
        caption="Larger buffers intercept more repeat SSD reads.")
    graph = dataset_graph(name)
    cells = []
    for fraction in fractions:
        if algorithm == "BFS":
            kernel = BFSKernel(default_start_vertex(graph))
        else:
            kernel = PageRankKernel(iterations=PAGERANK_ITERATIONS)
        outcome = run_or_oom(
            _gts_run, kernel, name,
            mm_buffer_bytes=int(fraction * db.topology_bytes()))
        cells.append(format_cell(outcome))
    table.add_row("GTS", cells)
    return table


def ablation_cache_policies(name="rmat27", cache_pages=(16, 64, 256)):
    """Ablation A4: cache replacement policies under memory pressure.

    Section 3.3: "GTS basically adopts the LRU algorithm ... but other
    algorithms can be used as well."  This sweep compares LRU against
    FIFO, CLOCK and a pinned (scan-resistant) policy at cache sizes well
    below the BFS working set.
    """
    db = dataset_database(name)
    graph = dataset_graph(name)
    table = ExperimentTable(
        "Ablation: cache replacement policies (BFS, %s)" % name,
        ["%d pages" % pages for pages in cache_pages],
        caption="Cells show elapsed time with the measured hit rate; the "
                "paper's LRU choice is one of several workable policies.")
    for policy in ("lru", "fifo", "clock", "pin"):
        cells = []
        for pages in cache_pages:
            kernel = BFSKernel(default_start_vertex(graph))
            outcome = _gts_run(
                kernel, name,
                cache_bytes=pages * db.config.page_size,
                cache_policy=policy)
            cells.append("%s (%.0f%%)" % (
                format_cell(outcome), 100 * outcome.cache_hit_rate))
        table.add_row(policy.upper(), cells)
    return table


def extended_algorithms(names=("twitter", "rmat27", "rmat28")):
    """Extension: the rest of Section 3.3's algorithm list through GTS.

    The paper demonstrates GTS's adaptability with SSSP/CC/BC
    (Appendix D); this table extends the demonstration to the other
    algorithms its Section 3.3 taxonomy names: k-hop neighborhood,
    K-core, cross-edges, egonet and radius estimation.
    """
    from repro.core import (
        CrossEdgesKernel,
        EgonetKernel,
        KCoreKernel,
        NeighborhoodKernel,
        RadiusKernel,
    )
    table = ExperimentTable(
        "Extended algorithms through the GTS engine",
        list(names),
        caption="Traversal algorithms stream nextPIDSet pages only; "
                "scan algorithms stream the whole topology per round.")
    rows = [
        ("Neighborhood (2-hop)", "traversal",
         lambda graph, start: NeighborhoodKernel(start, hops=2), False),
        ("K-core (k=8)", "traversal",
         lambda graph, start: KCoreKernel(k=8), True),
        ("Egonet", "traversal",
         lambda graph, start: EgonetKernel(start), False),
        ("CrossEdges (4 parts)", "scan",
         lambda graph, start: CrossEdgesKernel(
             np.arange(graph.num_vertices) % 4), False),
        ("Radius (8 sketches)", "scan",
         lambda graph, start: RadiusKernel(num_sketches=8, max_hops=8),
         True),
    ]
    for label, _, factory, symmetrised in rows:
        cells = []
        for name in names:
            graph = dataset_graph(name, symmetrised=symmetrised)
            start = default_start_vertex(graph)
            outcome = run_or_oom(
                _gts_run, factory(graph, start), name,
                symmetrised=symmetrised)
            cells.append(format_cell(outcome))
        table.add_row(label, cells)
    return table


def naive_hit_rate_check(names=None, cache_pages=(8, 32, 128)):
    """Compare measured LRU hit rates against the paper's B/(S+L)."""
    names = names or ["rmat26", "rmat27"]
    table = ExperimentTable(
        "Cache model check: measured LRU vs naive B/(S+L)",
        ["%d pages (measured)" % b for b in cache_pages]
        + ["%d pages (naive)" % b for b in cache_pages])
    for name in names:
        db = dataset_database(name)
        graph = dataset_graph(name)
        measured = []
        naive = []
        for pages in cache_pages:
            kernel = BFSKernel(default_start_vertex(graph))
            outcome = _gts_run(kernel, name,
                               cache_bytes=pages * db.config.page_size)
            measured.append("%.1f%%" % (100 * outcome.cache_hit_rate))
            naive.append("%.1f%%" % (100 * PageCache.naive_hit_rate(
                pages, db.num_pages)))
        table.add_row(name, measured + naive)
    return table


def cost_model_drift_report(names=None, algorithms=("BFS", "PageRank"),
                            num_streams=32):
    """Cost-model drift report: DES elapsed vs the Section 5 equations.

    Runs each algorithm with the page cache off and the stream count at
    the concurrency knee (32), the regime where Eq. 1 / Eq. 2 describe
    the pipeline directly, and tabulates the signed drift.  The test
    suite bounds these cells below 20 %; a scheduler regression that
    serializes copies against kernels shows up here first.
    """
    from repro.obs import cost_model_drift

    names = names or ["rmat26", "rmat27"]
    table = ExperimentTable(
        "Cost-model drift: simulated vs Eq.1/Eq.2 prediction",
        names,
        caption="Signed drift (positive = DES slower than the model); "
                "cache off, %d streams." % num_streams)
    for algorithm in algorithms:
        cells = []
        for name in names:
            graph = dataset_graph(name)
            db = dataset_database(name)
            machine = _machine()
            if algorithm == "BFS":
                kernel = BFSKernel(default_start_vertex(graph))
            else:
                kernel = PageRankKernel(iterations=PAGERANK_ITERATIONS)
            engine = GTSEngine(db, machine, num_streams=num_streams,
                               enable_caching=False)
            result = engine.run(kernel, dataset_name=name)
            report = cost_model_drift(result, db, machine, kernel)
            cells.append("%+.1f%%" % (100 * report.drift))
        table.add_row(algorithm, cells)
    return table
