"""Experiment runners and plain-text table rendering.

The benches print tables shaped like the paper's figures: datasets as
columns, systems as rows, elapsed simulated seconds in the cells and
``O.O.M.`` where a system exceeded its memory — produced by catching
:class:`~repro.errors.CapacityError` exactly where the real systems died.
"""

import os

from repro.errors import CapacityError
from repro.units import format_seconds

#: Marker rendered where the paper prints "O.O.M.".
OOM = "O.O.M."

#: Marker for configurations a system cannot run for structural reasons
#: (matching the paper's "N/A" entries in Table 5).
NOT_AVAILABLE = "N/A"


def run_or_oom(func, *args, **kwargs):
    """Call an engine entry point; map capacity failures to :data:`OOM`.

    Returns either the engine's :class:`~repro.core.result.RunResult` or
    the ``OOM`` marker string — the same dichotomy the paper's figures
    show.
    """
    try:
        return func(*args, **kwargs)
    except CapacityError:
        return OOM


def persist_run_metrics(result, results_dir, filename="metrics.jsonl",
                        extra_meta=None):
    """Append one metrics record for a finished run to a JSONL log.

    Benches call this after each run so ``results_dir`` accumulates a
    machine-readable trajectory (one JSON object per line) alongside the
    rendered tables; returns the log path.  ``extra_meta`` merges into
    the record's ``meta`` block (e.g. the experiment ID).
    """
    from repro.obs import collect_run_metrics

    registry = collect_run_metrics(result)
    if extra_meta:
        registry.meta.update(extra_meta)
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, filename)
    registry.append_jsonl(path)
    return path


def format_cell(outcome, rescale=1.0):
    """Render one table cell: a time, an O.O.M. marker, or raw text."""
    if isinstance(outcome, str):
        return outcome
    if outcome is None:
        return "-"
    if hasattr(outcome, "elapsed_seconds"):
        return format_seconds(outcome.elapsed_seconds * rescale)
    if isinstance(outcome, float):
        return format_seconds(outcome * rescale)
    return str(outcome)


class ExperimentTable:
    """A paper-style results table with aligned plain-text rendering."""

    def __init__(self, title, columns, caption=None):
        self.title = title
        self.columns = list(columns)
        self.caption = caption
        self.rows = []

    def add_row(self, label, cells):
        if len(cells) != len(self.columns):
            raise ValueError(
                "row %r has %d cells, expected %d"
                % (label, len(cells), len(self.columns)))
        self.rows.append((label, [str(c) for c in cells]))

    def render(self):
        label_width = max(
            [len("")] + [len(label) for label, _ in self.rows]
            + [len(self.title) // 4])
        widths = []
        for i, column in enumerate(self.columns):
            cell_width = max([len(column)]
                             + [len(row[1][i]) for row in self.rows])
            widths.append(cell_width)
        lines = [self.title, "=" * len(self.title)]
        header = " " * label_width + " | " + " | ".join(
            column.rjust(width)
            for column, width in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for label, cells in self.rows:
            lines.append(label.ljust(label_width) + " | " + " | ".join(
                cell.rjust(width) for cell, width in zip(cells, widths)))
        if self.caption:
            lines.append("")
            lines.append(self.caption)
        return "\n".join(lines)

    def save(self, results_dir, filename):
        """Write the rendered table under ``results_dir``; returns path."""
        os.makedirs(results_dir, exist_ok=True)
        path = os.path.join(results_dir, filename)
        with open(path, "w") as handle:
            handle.write(self.render() + "\n")
        return path

    def show(self):
        """Print the table (benches call this so ``pytest -s`` shows it)."""
        print()
        print(self.render())
        return self
