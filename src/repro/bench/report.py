"""Aggregate the rendered experiment artifacts into one report file.

``pytest benchmarks/ --benchmark-only`` leaves one text file per table
or figure under ``results/``; :func:`generate_report` stitches them into
a single ``REPORT.md`` ordered like the paper's evaluation section, so
the whole reproduced evaluation reads top to bottom.  Exposed on the
command line as ``python -m repro report``.
"""

import os

#: results/ filenames in the paper's presentation order.  Files not
#: listed here are appended alphabetically under "Additional results".
REPORT_ORDER = (
    ("Table 1", "table1_ratios.txt"),
    ("Table 2", "table2_idconfig.txt"),
    ("Table 3", "table3_datasets.txt"),
    ("Table 4", "table4_wa_sizes.txt"),
    ("Table 5", "table5_totem_options.txt"),
    ("Figure 4", "fig4_timelines.txt"),
    ("Figure 6 (BFS)", "fig6_distributed_bfs.txt"),
    ("Figure 6 (PageRank)", "fig6_distributed_pagerank.txt"),
    ("Figure 7 (BFS)", "fig7_cpu_bfs.txt"),
    ("Figure 7 (PageRank)", "fig7_cpu_pagerank.txt"),
    ("Figure 8 (BFS)", "fig8_gpu_bfs.txt"),
    ("Figure 8 (PageRank)", "fig8_gpu_pagerank.txt"),
    ("Figure 9 (BFS)", "fig9_strategies_bfs.txt"),
    ("Figure 9 (PageRank)", "fig9_strategies_pagerank.txt"),
    ("Figure 10 (BFS)", "fig10_streams_bfs.txt"),
    ("Figure 10 (PageRank)", "fig10_streams_pagerank.txt"),
    ("Figure 11 (elapsed)", "fig11_cache_0.txt"),
    ("Figure 11 (hit rate)", "fig11_cache_1.txt"),
    ("Figure 13 (SSSP)", "fig13_sssp.txt"),
    ("Figure 13 (CC)", "fig13_cc.txt"),
    ("Figure 13 (BC)", "fig13_bc.txt"),
    ("Figure 14 (BFS)", "fig14_micro_bfs.txt"),
    ("Figure 14 (PageRank)", "fig14_micro_pagerank.txt"),
    ("Section 8 (BFS)", "sec8_streaming_bfs.txt"),
    ("Section 8 (PageRank)", "sec8_streaming_pagerank.txt"),
    ("Ablation: caching", "ablation_cache.txt"),
    ("Ablation: cache model", "ablation_cache_model.txt"),
    ("Ablation: cache policies", "ablation_cache_policies.txt"),
    ("Ablation: GPU scaling", "ablation_gpu_scaling.txt"),
    ("Ablation: SSD scaling", "ablation_ssd_scaling.txt"),
    ("Ablation: buffering", "ablation_buffering.txt"),
    ("Extension: more algorithms", "extended_algorithms.txt"),
)

_HEADER = """# Reproduced evaluation

Generated from the artifacts under ``results/`` (run
``pytest benchmarks/ --benchmark-only`` to refresh them, then
``python -m repro report``).  Simulated times are at 1/8192 scale;
multiply by 8192 for paper-equivalent seconds.  See EXPERIMENTS.md for
the paper-versus-measured analysis of each artifact.
"""


def generate_report(results_dir="results", output_path=None):
    """Write ``REPORT.md`` from the files in ``results_dir``.

    Returns ``(output_path, included, missing)`` where ``included`` and
    ``missing`` list the section titles found and absent.
    """
    output_path = output_path or os.path.join(results_dir, "REPORT.md")
    sections = []
    included = []
    missing = []
    listed = set()
    for title, filename in REPORT_ORDER:
        listed.add(filename)
        path = os.path.join(results_dir, filename)
        if not os.path.exists(path):
            missing.append(title)
            continue
        with open(path) as handle:
            body = handle.read().rstrip()
        sections.append("## %s\n\n```\n%s\n```\n" % (title, body))
        included.append(title)
    extras = sorted(
        name for name in os.listdir(results_dir)
        if name.endswith(".txt") and name not in listed
    ) if os.path.isdir(results_dir) else []
    if extras:
        sections.append("## Additional results\n")
        for name in extras:
            with open(os.path.join(results_dir, name)) as handle:
                body = handle.read().rstrip()
            sections.append("### %s\n\n```\n%s\n```\n" % (name, body))
            included.append(name)
    with open(output_path, "w") as handle:
        handle.write(_HEADER + "\n" + "\n".join(sections))
    return output_path, included, missing
