"""ASCII bar charts: figure-shaped rendering of experiment results.

The paper's Figures 6–9 are grouped bar charts with a log-scale Y axis.
``results/`` tables carry the numbers; this module renders the same data
as horizontal bars so the *shape* — who wins, by what factor, where
O.O.M. holes sit — is visible at a glance in a terminal.

Bars are horizontal (one row per system per dataset group) and scaled
logarithmically by default, mirroring the paper's log-scale axes: each
doubling of elapsed time extends a bar by a fixed number of cells.
"""

import math

from repro.units import format_seconds

#: Character used for bar bodies.
BAR = "#"


def _bar_length(value, v_min, v_max, width, log_scale):
    if value <= 0 or v_max <= 0:
        return 0
    if not log_scale or v_min <= 0 or v_max == v_min:
        return max(1, int(round(width * value / v_max)))
    position = (math.log(value) - math.log(v_min)) \
        / (math.log(v_max) - math.log(v_min))
    return max(1, int(round(1 + position * (width - 1))))


def render_bar_chart(title, groups, series, width=46, log_scale=True,
                     value_formatter=format_seconds):
    """Render grouped horizontal bars.

    Parameters
    ----------
    title:
        Chart heading.
    groups:
        Group labels in display order (the paper's datasets).
    series:
        ``{system name: {group: value-or-None}}``; ``None`` (or a
        string such as ``"O.O.M."``) renders as a annotation instead of
        a bar.
    width:
        Maximum bar width in characters.
    log_scale:
        Log-scale bar lengths (the paper's Figure 6 axis).
    value_formatter:
        Renders the numeric annotation at the end of each bar.
    """
    numeric = [value
               for per_group in series.values()
               for value in per_group.values()
               if isinstance(value, (int, float)) and value > 0]
    v_min = min(numeric) if numeric else 0.0
    v_max = max(numeric) if numeric else 0.0
    name_width = max([len(name) for name in series] + [4])

    lines = [title, "=" * len(title)]
    if log_scale and numeric:
        lines.append("(log-scale bars: %s ... %s)"
                     % (value_formatter(v_min), value_formatter(v_max)))
    for group in groups:
        lines.append("")
        lines.append("%s:" % group)
        for name, per_group in series.items():
            value = per_group.get(group)
            if isinstance(value, (int, float)):
                length = _bar_length(value, v_min, v_max, width, log_scale)
                bar = BAR * length
                annotation = value_formatter(value)
            else:
                bar = ""
                annotation = str(value) if value is not None else "-"
            lines.append("  %-*s |%-*s| %s"
                         % (name_width, name, width, bar, annotation))
    return "\n".join(lines)


def chart_from_results(title, groups, outcomes, width=46, log_scale=True):
    """Build a chart from ``{system: {group: RunResult-or-"O.O.M."}}``."""
    series = {}
    for name, per_group in outcomes.items():
        series[name] = {
            group: (value.elapsed_seconds
                    if hasattr(value, "elapsed_seconds") else value)
            for group, value in per_group.items()
        }
    return render_bar_chart(title, groups, series, width=width,
                            log_scale=log_scale)
