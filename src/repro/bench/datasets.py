"""Scaled dataset registry mirroring the paper's Table 3.

Every dataset is scaled down uniformly by ``SCALE_FACTOR`` = 2¹³ = 8192:
RMAT-k becomes an R-MAT graph of ``2^(k-13)`` vertices (same 1:16
vertex:edge ratio), and the three real graphs become synthetic stand-ins
with their vertex counts divided by the same factor.  Machine capacities
are scaled identically (:func:`repro.hardware.specs.scaled_workstation`),
so which-graph-fits-where is preserved: RMAT30 is the largest graph that
fits the scaled 128 GB main memory, RMAT31/32 must stream from SSD, and
RMAT32's PageRank WA no longer fits a single scaled 12 GB GPU.

Page-format configurations follow Section 7.1: ``(p=2, q=2)`` with small
pages for RMAT26–29 and the real graphs, ``(p=3, q=3)`` with large pages
(the paper's 64 MB, scaled to 8 KB) for RMAT30–32.
"""

import dataclasses

import numpy as np

from repro.errors import ConfigurationError
from repro.format import PageFormatConfig, build_database
from repro.graphgen import (
    generate_rmat,
    generate_twitter_like,
    generate_uk2007_like,
    generate_yahooweb_like,
)
from repro.units import KB

#: Uniform dataset / capacity scale (2^13).
SCALE_FACTOR = 8192

#: Scaled page sizes for the paper's two format configurations.  The
#: paper's (3,3) configuration uses 64 MB pages; 64 MB / 8192 = 8 KB.
#: Its (2,2) configuration (the original slotted-page format) used ~1 MB
#: pages; scaling that far would leave pages smaller than a slot, so we
#: floor at 2 KB and record the deviation in EXPERIMENTS.md.
PAGE_SIZE_22 = 2 * KB
PAGE_SIZE_33 = 8 * KB


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """One row of the (scaled) Table 3."""

    name: str
    kind: str                 # "rmat" or one of the real-graph stand-ins
    paper_vertices: int
    paper_edges: int
    rmat_scale: int = 0       # paper-scale k for RMAT-k
    page_config: str = "(2,2)"
    seed: int = 0

    @property
    def scaled_vertices(self):
        return max(2, self.paper_vertices // SCALE_FACTOR)

    def format_config(self, weighted=False):
        weight_bytes = 4 if weighted else 0
        if self.page_config == "(3,3)":
            return PageFormatConfig(page_id_bytes=3, slot_bytes=3,
                                    page_size=PAGE_SIZE_33,
                                    weight_bytes=weight_bytes)
        return PageFormatConfig(page_id_bytes=2, slot_bytes=2,
                                page_size=PAGE_SIZE_22,
                                weight_bytes=weight_bytes)


def _rmat_spec(scale):
    return DatasetSpec(
        name="rmat%d" % scale,
        kind="rmat",
        paper_vertices=1 << scale,
        paper_edges=16 << scale,
        rmat_scale=scale,
        page_config="(3,3)" if scale >= 30 else "(2,2)",
        seed=scale,
    )


#: The evaluation datasets (Table 3 plus RMAT26, used by Figures 10/11).
DATASETS = {spec.name: spec for spec in (
    [_rmat_spec(scale) for scale in range(26, 33)]
    + [
        DatasetSpec(name="twitter", kind="twitter",
                    paper_vertices=42_000_000, paper_edges=1_468_000_000,
                    seed=10),
        DatasetSpec(name="uk2007", kind="uk2007",
                    paper_vertices=106_000_000, paper_edges=3_739_000_000,
                    seed=11),
        DatasetSpec(name="yahooweb", kind="yahooweb",
                    paper_vertices=1_414_000_000, paper_edges=6_636_000_000,
                    seed=12),
    ]
)}

_GRAPH_CACHE = {}
_DB_CACHE = {}


def dataset_spec(name):
    """Look up a registry dataset; raises on unknown names."""
    try:
        return DATASETS[name]
    except KeyError:
        raise ConfigurationError("unknown dataset %r" % (name,)) from None


def dataset_graph(name, weighted=False, symmetrised=False):
    """The scaled CSR graph for a registry dataset (cached)."""
    key = (name, weighted, symmetrised)
    if key in _GRAPH_CACHE:
        return _GRAPH_CACHE[key]
    spec = dataset_spec(name)
    if spec.kind == "rmat":
        scaled_scale = spec.rmat_scale - 13
        graph = generate_rmat(scaled_scale, edge_factor=16, seed=spec.seed)
    elif spec.kind == "twitter":
        graph = generate_twitter_like(spec.scaled_vertices, seed=spec.seed)
    elif spec.kind == "uk2007":
        graph = generate_uk2007_like(spec.scaled_vertices, seed=spec.seed)
    elif spec.kind == "yahooweb":
        graph = generate_yahooweb_like(spec.scaled_vertices, seed=spec.seed)
    else:
        raise ConfigurationError("unknown dataset kind %r" % spec.kind)
    if symmetrised:
        graph = graph.symmetrised()
    if weighted:
        graph = graph.with_random_weights(seed=spec.seed)
    _GRAPH_CACHE[key] = graph
    return graph


def dataset_database(name, weighted=False, symmetrised=False):
    """The slotted-page database for a registry dataset (cached)."""
    key = (name, weighted, symmetrised)
    if key in _DB_CACHE:
        return _DB_CACHE[key]
    spec = dataset_spec(name)
    graph = dataset_graph(name, weighted=weighted, symmetrised=symmetrised)
    db = build_database(graph, spec.format_config(weighted=weighted),
                        name=name)
    _DB_CACHE[key] = db
    return db


def default_start_vertex(graph):
    """A well-connected traversal source: the max-out-degree vertex.

    The paper traverses from a fixed start vertex; on our scaled R-MAT
    stand-ins a random vertex often has zero out-degree, so benches use
    the busiest vertex instead (recorded in EXPERIMENTS.md).
    """
    return int(np.argmax(graph.out_degrees()))


def clear_caches():
    """Drop cached graphs/databases (tests use this to bound memory)."""
    _GRAPH_CACHE.clear()
    _DB_CACHE.clear()
