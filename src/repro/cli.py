"""Command-line interface: ``python -m repro <command> ...``.

Subcommands:

* ``run`` — run one algorithm on a registry dataset (or an edge-list
  file) through the GTS engine and print the result summary.
* ``profile`` — a traced run: ASCII timeline, cost-model drift, and
  optional Perfetto trace / metrics artifacts.
* ``datasets`` — list the scaled experiment datasets (Table 3 view).
* ``recommend`` — cost-based configuration advice (Section 5).
* ``bench`` — regenerate one paper table/figure by ID.
* ``update`` — apply a mutation batch to a saved database through the
  WAL-backed dynamic layer (:mod:`repro.dynamic`).
* ``compact`` — fold accumulated deltas + WAL back into a clean base.
* ``obs`` — trace analytics and regression tooling:
  ``obs analyze`` reports occupancy / overlap-hiding / round
  attribution for a written trace, ``obs compare`` diffs two metrics
  artifacts (or a fresh run against its ``BENCH_history.jsonl``
  baseline) under tolerance rules and exits non-zero on regression,
  and ``obs history`` lists the benchmark trajectory.
* ``serve`` — run the multi-tenant query service
  (:mod:`repro.service`): open databases stay resident, queries run
  concurrently over an HTTP/JSON API with shared caches and admission
  control.  SIGINT/SIGTERM drain in-flight queries and exit cleanly.
* ``query`` — send one query to a running ``serve`` instance.  Exit
  codes: 0 on success, 2 when the service is at capacity (HTTP 429),
  3 while it is draining (HTTP 503), 1 for every other error.

Examples::

    python -m repro datasets
    python -m repro run --dataset rmat27 --algorithm pagerank --iterations 10
    python -m repro run --dataset rmat26 --algorithm bfs --json
    python -m repro run --dataset rmat26 --algorithm pagerank \\
        --trace-out trace.json --metrics-out metrics.json
    python -m repro run --dataset rmat26 --algorithm pagerank \\
        --faults chaos.json --fault-seed 1
    python -m repro profile --dataset rmat26 --algorithm pagerank
    python -m repro run --dataset rmat26 --algorithm pagerank \\
        --host-profile --flamegraph flame.txt --host-profile-out host.json
    python -m repro recommend --dataset rmat32 --algorithm pagerank
    python -m repro bench --experiment fig9 --algorithm BFS
    python -m repro update --db mygraph --batch updates.txt
    python -m repro run --db mygraph --algorithm bfs
    python -m repro compact --db mygraph
    python -m repro report
    python -m repro obs analyze trace.json
    python -m repro obs compare before.json after.json
    python -m repro obs compare --history BENCH_history.jsonl \\
        --benchmark wallclock_batched_vs_paged --match quick=true \\
        BENCH_wallclock.json
    python -m repro obs history --path BENCH_history.jsonl
    python -m repro serve --dataset rmat24 --port 8030
    python -m repro serve --db social=/data/social --port 8030
    python -m repro query --url http://127.0.0.1:8030 \\
        --database rmat24 --algorithm pagerank --iterations 10 --json
"""

import argparse
import json
import sys

import numpy as np

from repro.bench import experiments
from repro.bench.datasets import (
    DATASETS,
    dataset_database,
    dataset_graph,
    default_start_vertex,
)
from repro.core import (
    BCKernel,
    BFSKernel,
    DegreeKernel,
    GTSEngine,
    KCoreKernel,
    PageRankKernel,
    RWRKernel,
    SSSPKernel,
    WCCKernel,
)
from repro.core.optimizer import recommend_configuration
from repro.errors import ConfigurationError, GTSError
from repro.format import PageFormatConfig, build_database
from repro.graphgen.io import read_edge_list
from repro.hardware.specs import scaled_workstation
from repro.units import KB

#: CLI algorithm name -> (kernel factory, needs weighted db, needs
#: symmetrised db).  Factories take (args, start_vertex).
ALGORITHMS = {
    "bfs": (lambda args, start: BFSKernel(start), False, False),
    "pagerank": (lambda args, start: PageRankKernel(
        iterations=args.iterations), False, False),
    "sssp": (lambda args, start: SSSPKernel(start), True, False),
    "cc": (lambda args, start: WCCKernel(), False, True),
    "bc": (lambda args, start: BCKernel(sources=(start,)), False, False),
    "rwr": (lambda args, start: RWRKernel(
        query_vertex=start, iterations=args.iterations), False, False),
    "degree": (lambda args, start: DegreeKernel(), False, False),
    "kcore": (lambda args, start: KCoreKernel(k=args.k), False, True),
}

#: Experiment IDs for the ``bench`` subcommand.
EXPERIMENTS = {
    "table1": lambda args: experiments.table1_transfer_kernel_ratios(),
    "table2": lambda args: experiments.table2_id_configurations(),
    "table3": lambda args: experiments.table3_dataset_statistics(),
    "table4": lambda args: experiments.table4_wa_sizes(),
    "table5": lambda args: experiments.table5_totem_partitions(),
    "fig6": lambda args: experiments.figure6_distributed(args.algorithm),
    "fig7": lambda args: experiments.figure7_cpu(args.algorithm),
    "fig8": lambda args: experiments.figure8_gpu(args.algorithm),
    "fig9": lambda args: experiments.figure9_strategies(args.algorithm),
    "fig10": lambda args: experiments.figure10_streams(args.algorithm),
    "fig11": lambda args: experiments.figure11_cache(),
    "fig13": lambda args: experiments.figure13_algorithms(
        args.algorithm if args.algorithm in ("SSSP", "CC", "BC")
        else "SSSP"),
    "fig14": lambda args: experiments.figure14_micro(args.algorithm),
    "drift": lambda args: experiments.cost_model_drift_report(),
}


def build_parser():
    """Construct the argparse command tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GTS (SIGMOD 2016) reproduction command line")
    commands = parser.add_subparsers(dest="command", required=True)

    def add_run_arguments(sub):
        source = sub.add_mutually_exclusive_group(required=True)
        source.add_argument("--dataset", choices=sorted(DATASETS),
                            help="registry dataset name")
        source.add_argument("--edges", help="edge-list text file to load")
        source.add_argument("--db", metavar="PREFIX",
                            help="saved database prefix (loads "
                                 "<PREFIX>.meta.json/.pages and replays "
                                 "<PREFIX>.wal if present; the topology "
                                 "is used as-is, so it must already be "
                                 "weighted/symmetrised if the algorithm "
                                 "needs that)")
        sub.add_argument("--algorithm", choices=sorted(ALGORITHMS),
                         default="bfs")
        sub.add_argument("--start", type=int, default=None,
                         help="start/query vertex (default: busiest "
                              "vertex)")
        sub.add_argument("--iterations", type=int, default=10)
        sub.add_argument("--k", type=int, default=2, help="k for k-core")
        sub.add_argument("--strategy",
                         choices=("performance", "scalability"),
                         default="performance")
        sub.add_argument("--streams", type=int, default=16)
        sub.add_argument("--gpus", type=int, default=2)
        sub.add_argument("--ssds", type=int, default=2)
        sub.add_argument("--micro", choices=("edge", "vertex", "hybrid"),
                         default="edge")
        sub.add_argument("--execution",
                         choices=("auto", "paged", "batched"),
                         default="auto",
                         help="round execution path: 'batched' forces the "
                              "vectorized fast path (errors for kernels "
                              "without one), 'paged' the per-page loop, "
                              "'auto' picks per kernel")
        sub.add_argument("--no-cache", action="store_true")
        sub.add_argument("--backend", choices=("serial", "process"),
                         default="serial",
                         help="host execution backend: 'process' shards "
                              "each round's segment reduction across a "
                              "forked worker pool (results bit-identical "
                              "to serial; needs a sharded kernel and the "
                              "batched path)")
        sub.add_argument("--backend-workers", type=int, default=None,
                         metavar="N",
                         help="worker processes for --backend process "
                              "(default: cores minus one, capped at 8)")
        sub.add_argument("--io-merge", action="store_true",
                         help="coalesce adjacent page misses per round "
                              "into ranged storage fetches; changes the "
                              "simulated I/O plan (latency amortised "
                              "across the run), so off by default")
        sub.add_argument("--store-mode", choices=("copy", "mmap"),
                         default="copy",
                         help="--db page store mode: 'mmap' maps "
                              "<PREFIX>.pages and serves payloads "
                              "zero-copy (lazy pool; WAL overlays still "
                              "use the copy path)")
        sub.add_argument("--page-size", type=int, default=2 * KB)
        sub.add_argument("--faults", default=None, metavar="PLAN.json",
                         help="inject faults from a JSON FaultPlan "
                              "(transient SSD errors, corrupt pages, "
                              "copy errors, stream stalls, device "
                              "loss); recoverable faults slow the "
                              "simulated run but leave results "
                              "bit-identical")
        sub.add_argument("--fault-seed", type=int, default=None,
                         metavar="N",
                         help="override the fault plan's seed (one "
                              "plan file, many chaos runs)")
        sub.add_argument("--trace-out", default=None, metavar="PATH",
                         help="write a Chrome trace-event JSON file "
                              "(open in Perfetto / chrome://tracing)")
        sub.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="write run metrics (counters, gauges, "
                              "histograms, cost-model drift) as JSON")
        sub.add_argument("--host-profile", action="store_true",
                         help="profile the *host* runtime (not the "
                              "simulation): phase wall-clock timers, "
                              "tracemalloc peak and real I/O counters; "
                              "prints a phase table after the summary")
        sub.add_argument("--flamegraph", default=None, metavar="PATH",
                         help="write host phases as collapsed-stack "
                              "flamegraph text (implies --host-profile; "
                              "feed to flamegraph.pl or speedscope)")
        sub.add_argument("--host-profile-out", default=None,
                         metavar="PATH",
                         help="write the host profile as JSON (implies "
                              "--host-profile); the artifact is "
                              "'repro obs compare' compatible")

    run = commands.add_parser("run", help="run an algorithm through GTS")
    add_run_arguments(run)
    run.add_argument("--json", action="store_true",
                     help="print the full RunResult as JSON instead of "
                          "the one-line summary")

    profile = commands.add_parser(
        "profile",
        help="traced run: ASCII timeline + cost-model drift report")
    add_run_arguments(profile)
    profile.add_argument("--width", type=int, default=72,
                         help="ASCII timeline width in cells")

    commands.add_parser("datasets", help="list experiment datasets")

    recommend = commands.add_parser(
        "recommend", help="cost-based configuration advice")
    recommend.add_argument("--dataset", choices=sorted(DATASETS),
                           required=True)
    recommend.add_argument("--algorithm",
                           choices=("bfs", "pagerank", "sssp", "cc"),
                           default="pagerank")
    recommend.add_argument("--iterations", type=int, default=10)
    recommend.add_argument("--gpus", type=int, default=2)

    bench = commands.add_parser("bench",
                                help="regenerate a paper table/figure")
    bench.add_argument("--experiment", choices=sorted(EXPERIMENTS),
                       required=True)
    bench.add_argument("--algorithm", default="BFS",
                       help="BFS / PageRank (SSSP / CC / BC for fig13)")

    update = commands.add_parser(
        "update",
        help="apply a mutation batch to a saved database (WAL-logged) "
             "or to a running serve instance (--service)")
    update.add_argument("--db", metavar="PREFIX", default=None,
                        help="saved database prefix (offline mode)")
    update.add_argument("--service", metavar="URL", default=None,
                        help="send the batch to a running serve "
                             "instance instead of opening the database; "
                             "commits a new MVCC version while queries "
                             "keep running")
    update.add_argument("--database", default=None,
                        help="served database name (with --service)")
    update.add_argument("--batch", required=True, metavar="FILE",
                        help="batch file: one 'add U V [W]' / 'del U V' "
                             "/ 'vertex [N]' per line")
    update.add_argument("--no-fsync", action="store_true",
                        help="skip fsync on WAL appends (faster, less "
                             "durable)")
    update.add_argument("--compact-threshold", type=int, default=None,
                        metavar="BYTES",
                        help="fold deltas into the base once they "
                             "exceed this many bytes")
    update.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write dynamic-layer metrics as JSON")

    compact_cmd = commands.add_parser(
        "compact",
        help="fold deltas + WAL into a clean base database")
    compact_cmd.add_argument("--db", metavar="PREFIX", required=True,
                             help="saved database prefix")
    compact_cmd.add_argument("--threshold", type=int, default=0,
                             metavar="BYTES",
                             help="only compact when delta bytes exceed "
                                  "this (default: always)")
    compact_cmd.add_argument("--metrics-out", default=None,
                             metavar="PATH",
                             help="write dynamic-layer metrics as JSON")

    report = commands.add_parser(
        "report", help="aggregate results/ into REPORT.md")
    report.add_argument("--results-dir", default="results")
    report.add_argument("--output", default=None)

    obs = commands.add_parser(
        "obs",
        help="trace analytics, run comparison and benchmark history")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    analyze = obs_sub.add_parser(
        "analyze",
        help="occupancy / overlap-hiding / round attribution for a "
             "written Chrome trace")
    analyze.add_argument("trace", metavar="TRACE.json",
                         help="trace file written by --trace-out")
    analyze.add_argument("--json", action="store_true",
                         help="print the full analysis as JSON")
    analyze.add_argument("--out", default=None, metavar="PATH",
                         help="also write the JSON report (the artifact "
                              "'obs compare' diffs)")

    compare = obs_sub.add_parser(
        "compare",
        help="diff metrics artifacts under tolerance rules; exits "
             "non-zero on regression")
    compare.add_argument("files", nargs="+", metavar="FILE",
                         help="two artifacts (before, after), or one "
                              "current artifact with --history")
    compare.add_argument("--history", default=None, metavar="JSONL",
                         help="compare FILE against its latest matching "
                              "baseline in this history log")
    compare.add_argument("--benchmark", default=None,
                         help="history record name to baseline against "
                              "(required with --history)")
    compare.add_argument("--match", action="append", default=[],
                         metavar="KEY=VALUE",
                         help="baseline meta filter, repeatable (values "
                              "parse as JSON: quick=true, scale=13)")
    compare.add_argument("--rules", default=None, metavar="RULES.json",
                         help="tolerance rules (default: built-in rules "
                              "for run/analysis artifacts)")
    compare.add_argument("--json", action="store_true",
                         help="print the comparison report as JSON")

    history = obs_sub.add_parser(
        "history", help="list the benchmark history log")
    history.add_argument("--path", default="BENCH_history.jsonl",
                         metavar="JSONL")
    history.add_argument("--benchmark", default=None,
                         help="only records from this benchmark")
    history.add_argument("--limit", type=int, default=None,
                         help="show only the newest N records")
    history.add_argument("--json", action="store_true",
                         help="print records as a JSON list")

    requests = obs_sub.add_parser(
        "requests",
        help="tail / filter / summarize a service slow-query ring")
    requests.add_argument("ring", metavar="RING_DIR",
                          help="slow-query ring directory "
                               "(serve --telemetry-ring)")
    requests.add_argument("--tail", type=int, default=None, metavar="N",
                          help="show only the newest N records")
    requests.add_argument("--status", default=None,
                          choices=("ok", "error", "deadline"),
                          help="only records with this outcome")
    requests.add_argument("--database", default=None,
                          help="only records for this database")
    requests.add_argument("--slower-than", type=float, default=None,
                          metavar="MS",
                          help="only records with wall_ms >= MS")
    requests.add_argument("--summarize", action="store_true",
                          help="print an aggregate summary instead of "
                               "per-request lines")
    requests.add_argument("--json", action="store_true",
                          help="print full records (or the summary) "
                               "as JSON")

    serve = commands.add_parser(
        "serve",
        help="run the multi-tenant query service over HTTP/JSON")
    serve.add_argument("--db", action="append", default=[],
                       metavar="NAME=PREFIX",
                       help="serve a saved database prefix under NAME "
                            "(repeatable; opened through the WAL-aware "
                            "dynamic layer)")
    serve.add_argument("--dataset", action="append", default=[],
                       metavar="NAME",
                       help="serve a registry dataset, built weighted "
                            "so every algorithm can run (repeatable)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8030,
                       help="TCP port; 0 picks a free one (printed on "
                            "startup)")
    serve.add_argument("--max-in-flight", type=int, default=8,
                       help="queries executing at once")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="queries allowed to wait beyond the "
                            "in-flight set; more are rejected with "
                            "HTTP 429")
    serve.add_argument("--shared-cache-pages", type=int, default=None,
                       metavar="N",
                       help="cross-query shared page cache capacity "
                            "per database (default: unbounded; 0 "
                            "disables caching but keeps accounting)")
    serve.add_argument("--pool-pages", type=int, default=256,
                       help="per-database decoded-page pool for --db "
                            "prefixes")
    serve.add_argument("--store-mode", choices=("copy", "mmap"),
                       default="copy",
                       help="page store mode for --db prefixes: 'mmap' "
                            "serves base pages zero-copy from the "
                            "mapped pages file")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    serve.add_argument("--stats-out", default=None, metavar="PATH",
                       help="write final service metrics JSON on "
                            "shutdown ('obs compare' compatible)")
    serve.add_argument("--telemetry", action="store_true",
                       help="enable request telemetry: lifecycle "
                            "spans, rolling-window metrics on "
                            "/metrics, structured request logging")
    serve.add_argument("--slow-ms", type=float, default=250.0,
                       metavar="MS",
                       help="tail-capture threshold: requests slower "
                            "than this (or erroring) keep their span "
                            "tree in the slow-query ring")
    serve.add_argument("--sample-every", type=int, default=0,
                       metavar="N",
                       help="head-sample every Nth request with a "
                            "full engine trace attached to its "
                            "tail-capture record (0 disables)")
    serve.add_argument("--telemetry-ring", default=None,
                       metavar="DIR",
                       help="slow-query ring directory (inspect with "
                            "'obs requests'); implies --telemetry")
    serve.add_argument("--ring-capacity", type=int, default=64,
                       help="slow-query ring size bound")
    serve.add_argument("--telemetry-log", default=None, metavar="PATH",
                       help="append structured JSON request log lines "
                            "here ('-' for stderr); implies "
                            "--telemetry")

    query = commands.add_parser(
        "query", help="send one query to a running serve instance")
    query.add_argument("--url", default="http://127.0.0.1:8030",
                       help="service base URL")
    query.add_argument("--database", required=True,
                       help="served database name")
    query.add_argument("--algorithm", choices=sorted(ALGORITHMS),
                       default="bfs")
    query.add_argument("--start", type=int, default=None,
                       help="start/query vertex (default: the "
                            "service picks the busiest vertex)")
    query.add_argument("--iterations", type=int, default=10)
    query.add_argument("--k", type=int, default=2, help="k for k-core")
    query.add_argument("--strategy",
                       choices=("performance", "scalability"),
                       default=None)
    query.add_argument("--streams", type=int, default=None)
    query.add_argument("--gpus", type=int, default=None)
    query.add_argument("--execution",
                       choices=("auto", "paged", "batched"),
                       default=None)
    query.add_argument("--backend", choices=("serial", "process"),
                       default=None,
                       help="host execution backend for this query "
                            "(process shards reductions across the "
                            "service's per-database worker pool)")
    query.add_argument("--backend-workers", type=int, default=None)
    query.add_argument("--io-merge", action="store_true",
                       help="coalesce adjacent page misses into ranged "
                            "fetches for this query")
    query.add_argument("--query-id", default=None,
                       help="tag for traces/metrics (default: "
                            "server-assigned)")
    query.add_argument("--timeout", type=float, default=60.0,
                       help="HTTP timeout in seconds (covers the "
                            "admission wait)")
    query.add_argument("--retries", type=int, default=0,
                       help="retry HTTP 429 admission rejections up "
                            "to N times, honouring Retry-After with "
                            "capped backoff (503 is never retried)")
    query.add_argument("--timeout-ms", type=float, default=None,
                       help="per-query deadline in milliseconds "
                            "(queue wait included); the server answers "
                            "504 and the command exits 4 when exceeded")
    query.add_argument("--include-values", action="store_true",
                       help="return full output vectors, not summaries")
    query.add_argument("--json", action="store_true",
                       help="print the full RunResult dict as JSON")
    return parser


def _load_database(args):
    weighted = ALGORITHMS[args.algorithm][1]
    symmetrised = ALGORITHMS[args.algorithm][2]
    if getattr(args, "db", None):
        # A saved topology is used exactly as built — it cannot be
        # re-weighted or symmetrised here, so check it satisfies the
        # algorithm's requirements instead of silently mis-running.
        from repro.dynamic import open_dynamic_database
        if getattr(args, "store_mode", "copy") == "mmap":
            # mmap needs the lazy file-backed pool; the WAL overlay
            # stacks on top and keeps using decoded copies.
            db = open_dynamic_database(args.db, pool_pages=256,
                                       store_mode="mmap")
        else:
            db = open_dynamic_database(args.db)
        if weighted and db.config.weight_bytes == 0:
            raise ConfigurationError(
                "algorithm %r needs edge weights, but the database "
                "saved at %r was built without them (weight_bytes=0); "
                "rebuild it from a weighted edge list"
                % (args.algorithm, args.db))
        if symmetrised:
            print("warning: %s expects a symmetrised graph; the saved "
                  "topology at %r is used as-is (directed edges stay "
                  "directed)" % (args.algorithm, args.db),
                  file=sys.stderr)
        return None, db, args.db
    if args.dataset:
        graph = dataset_graph(args.dataset, weighted=weighted,
                              symmetrised=symmetrised)
        db = dataset_database(args.dataset, weighted=weighted,
                              symmetrised=symmetrised)
        return graph, db, args.dataset
    graph = read_edge_list(args.edges)
    if symmetrised:
        graph = graph.symmetrised()
    config = PageFormatConfig(
        page_id_bytes=2, slot_bytes=2, page_size=args.page_size,
        weight_bytes=4 if (weighted and graph.weights is not None) else 0)
    db = build_database(graph, config, name=args.edges)
    return graph, db, args.edges


def _wants_host_profile(args):
    return bool(getattr(args, "host_profile", False)
                or getattr(args, "flamegraph", None)
                or getattr(args, "host_profile_out", None))


def _execute_run(args, tracing=False):
    """Shared by ``run`` and ``profile``: build everything and run."""
    profiler = None
    if _wants_host_profile(args):
        # One CLI-owned profiler spans load *and* run: the engine
        # snapshots it non-destructively, so ``result.host_profile``
        # covers the whole command, database load included.
        from repro.obs.host import HostProfiler
        profiler = HostProfiler()
        profiler.push("load")
    graph, db, name = _load_database(args)
    if profiler is not None:
        profiler.pop()  # load
    if args.start is not None:
        start = args.start
    elif graph is not None:
        start = default_start_vertex(graph)
    else:
        # No Graph object for --db sources; seed from the busiest vertex.
        start = int(np.argmax(db.out_degrees))
    kernel = ALGORITHMS[args.algorithm][0](args, start)
    machine = scaled_workstation(num_gpus=args.gpus, num_ssds=args.ssds)
    faults = None
    if getattr(args, "faults", None):
        from repro.faults import FaultPlan
        faults = FaultPlan.from_json_file(args.faults)
    engine = GTSEngine(db, machine, strategy=args.strategy,
                       num_streams=args.streams,
                       micro_technique=args.micro,
                       enable_caching=not args.no_cache,
                       tracing=tracing,
                       execution=getattr(args, "execution", "auto"),
                       backend=getattr(args, "backend", "serial"),
                       backend_workers=getattr(args, "backend_workers",
                                               None),
                       io_merge=getattr(args, "io_merge", False),
                       faults=faults,
                       fault_seed=getattr(args, "fault_seed", None),
                       host_profile=profiler if profiler is not None
                       else False)
    try:
        result = engine.run(kernel, dataset_name=name)
    finally:
        engine.close()  # drains any process-backend worker pools
    if profiler is not None:
        # The engine snapshotted the externally-owned profiler; stop
        # tracemalloc now that the measurement is over.
        profiler.finish()
    return result, db, machine, kernel


def _write_artifacts(args, result, db, machine, kernel):
    """Handle ``--trace-out`` / ``--metrics-out`` and the host-profile
    artifacts (``--flamegraph`` / ``--host-profile-out``) for run and
    profile."""
    written = []
    profile = result.host_profile
    if args.trace_out:
        from repro.obs import write_chrome_trace
        trace = result.trace
        if profile is not None and trace is not None:
            # Merge the host lanes into the exported file only; the
            # live recorder (and result.analyze()) stay untouched.
            from repro.obs.host import merge_host_lanes
            trace = merge_host_lanes(trace, profile)
        write_chrome_trace(trace, args.trace_out)
        written.append(("trace", args.trace_out))
    if getattr(args, "flamegraph", None):
        from repro.obs.host import write_flamegraph
        write_flamegraph(profile, args.flamegraph)
        written.append(("flamegraph", args.flamegraph))
    if getattr(args, "host_profile_out", None):
        from repro.obs.host import write_host_profile
        write_host_profile(profile, args.host_profile_out)
        written.append(("host profile", args.host_profile_out))
    if args.metrics_out:
        from repro.obs import (
            collect_run_metrics,
            cost_model_drift,
            record_drift,
        )
        registry = collect_run_metrics(result)
        record_drift(cost_model_drift(result, db, machine, kernel),
                     registry)
        if hasattr(db, "dynamic_stats"):
            from repro.obs import collect_dynamic_metrics
            collect_dynamic_metrics(db, registry)
        registry.to_json(args.metrics_out)
        written.append(("metrics", args.metrics_out))
    return written


def _command_run(args):
    result, db, machine, kernel = _execute_run(
        args, tracing=bool(args.trace_out))
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.summary())
        for key, values in result.values.items():
            values = np.asarray(values)
            if values.size <= 4:
                print("  %s: %s" % (key, values))
            elif np.issubdtype(values.dtype, np.floating):
                print("  %s: min %.4g  max %.4g  mean %.4g"
                      % (key, values.min(), values.max(),
                         values.mean()))
            else:
                print("  %s: min %s  max %s" % (key, values.min(),
                                                values.max()))
        if result.host_profile is not None:
            print()
            print(result.host_profile.summary())
    for label, path in _write_artifacts(args, result, db, machine,
                                        kernel):
        print("wrote %s to %s" % (label, path), file=sys.stderr)
    return 0


def _command_profile(args):
    from repro.obs import ascii_timeline, cost_model_drift
    result, db, machine, kernel = _execute_run(args, tracing=True)
    print(result.summary())
    print()
    print(ascii_timeline(result.trace, width=args.width))
    print()
    print(cost_model_drift(result, db, machine, kernel).summary())
    if result.host_profile is not None:
        print()
        print(result.host_profile.summary())
    for label, path in _write_artifacts(args, result, db, machine,
                                        kernel):
        print("wrote %s to %s" % (label, path), file=sys.stderr)
    return 0


def _command_datasets(args):
    print("%-10s %12s %14s %8s %18s" % ("name", "vertices", "edges",
                                        "(p,q)", "paper vertices"))
    for name in sorted(DATASETS):
        spec = DATASETS[name]
        print("%-10s %12d %14d %8s %18s"
              % (name, spec.scaled_vertices,
                 spec.scaled_vertices * max(
                     1, spec.paper_edges // spec.paper_vertices),
                 spec.page_config, "{:,}".format(spec.paper_vertices)))
    return 0


def _command_recommend(args):
    kernels = {
        "bfs": BFSKernel(0),
        "pagerank": PageRankKernel(iterations=args.iterations),
        "sssp": SSSPKernel(0),
        "cc": WCCKernel(),
    }
    kernel = kernels[args.algorithm]
    db = dataset_database(args.dataset)
    machine = scaled_workstation(num_gpus=args.gpus)
    rounds = args.iterations if args.algorithm in ("pagerank",) else 1
    recommendation = recommend_configuration(db, machine, kernel,
                                             rounds=rounds)
    print(recommendation.describe())
    return 0


def _command_update(args):
    from repro.dynamic import (
        maybe_compact,
        open_dynamic_database,
        parse_batch_file,
    )
    if (args.db is None) == (args.service is None):
        print("update needs exactly one of --db or --service",
              file=sys.stderr)
        return 1
    if args.service is not None:
        return _command_update_service(args)
    batch = parse_batch_file(args.batch)
    db = open_dynamic_database(args.db, fsync=not args.no_fsync)
    report = db.apply(batch)
    print("applied %s to %s: %d page(s) dirtied, WAL record %s"
          % (batch, args.db, len(report.affected_pids), report.lsn))
    print("  " + repr(db))
    if args.compact_threshold is not None:
        outcome = maybe_compact(db, args.compact_threshold,
                                save_prefix=args.db)
        if outcome is not None:
            print("  " + outcome.summary())
    if args.metrics_out:
        from repro.obs import collect_dynamic_metrics
        collect_dynamic_metrics(db).to_json(args.metrics_out)
        print("wrote metrics to %s" % args.metrics_out, file=sys.stderr)
    return 0


def _command_update_service(args):
    """``update --service URL --database NAME``: live MVCC commit."""
    from repro.dynamic import parse_batch_file
    from repro.errors import ServiceError, ShutdownError
    from repro.service import ServiceClient
    if not args.database:
        print("update --service needs --database NAME", file=sys.stderr)
        return 1
    batch = parse_batch_file(args.batch)
    client = ServiceClient(args.service)
    try:
        report = client.update(args.database, batch,
                               compact_threshold=args.compact_threshold)
    except ShutdownError as error:
        print("draining: %s" % error, file=sys.stderr)
        return 3
    except ServiceError as error:
        print("rejected: %s" % error, file=sys.stderr)
        return 1
    print("applied %s to %s@%s: now topology v%d, +%d/-%d edges, "
          "+%d vertices, %dB delta%s"
          % (batch, args.database, args.service,
             report["topology_version"], report["edges_inserted"],
             report["edges_deleted"], report["vertices_added"],
             report["delta_bytes"],
             ", compacted" if report["compacted"] else ""))
    mvcc = report.get("mvcc")
    if mvcc:
        print("  mvcc: %d version(s) retained, %d pinned snapshot(s), "
              "%d reclaimed"
              % (mvcc["version_chain_length"], mvcc["pinned_snapshots"],
                 mvcc["reclaimed_versions"]))
    if args.metrics_out:
        print("--metrics-out is unavailable with --service (use the "
              "server's /stats endpoint)", file=sys.stderr)
    return 0


def _command_compact(args):
    from repro.dynamic import maybe_compact, open_dynamic_database
    db = open_dynamic_database(args.db)
    outcome = maybe_compact(db, args.threshold, save_prefix=args.db)
    if outcome is None:
        print("nothing to do: %d delta byte(s) below threshold %d"
              % (db.delta_bytes, args.threshold))
    else:
        print(outcome.summary())
        print("saved compacted base to %s.meta.json/.pages and reset "
              "the WAL" % args.db)
    if args.metrics_out:
        from repro.obs import collect_dynamic_metrics
        collect_dynamic_metrics(db).to_json(args.metrics_out)
        print("wrote metrics to %s" % args.metrics_out, file=sys.stderr)
    return 0


def _command_report(args):
    from repro.bench.report import generate_report
    path, included, missing = generate_report(args.results_dir,
                                              args.output)
    print("wrote %s with %d section(s)" % (path, len(included)))
    if missing:
        print("missing artifacts (run pytest benchmarks/ first): %s"
              % ", ".join(missing))
    return 0


def _parse_match(items):
    """``KEY=VALUE`` pairs -> a meta-match dict (values parse as JSON
    when they can, so ``quick=true`` and ``scale=13`` type correctly)."""
    match = {}
    for item in items:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise ConfigurationError(
                "--match expects KEY=VALUE, got %r" % item)
        try:
            match[key] = json.loads(value)
        except ValueError:
            match[key] = value
    return match


def _command_obs_analyze(args):
    from repro.obs import analyze_trace
    analysis = analyze_trace(args.trace)
    if args.json:
        print(json.dumps(analysis.to_dict(), indent=2, sort_keys=True))
    else:
        print(analysis.summary())
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(analysis.to_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print("wrote analysis to %s" % args.out, file=sys.stderr)
    return 0


def _command_obs_compare(args):
    from repro.obs import compare_metrics, load_rules
    from repro.obs.history import compare_to_baseline
    rules = load_rules(args.rules) if args.rules else None
    if args.history:
        if len(args.files) != 1:
            raise ConfigurationError(
                "--history compares exactly one current artifact "
                "against the log; got %d files" % len(args.files))
        if not args.benchmark:
            raise ConfigurationError(
                "--history needs --benchmark to pick baseline records")
        with open(args.files[0]) as handle:
            payload = json.load(handle)
        report, baseline = compare_to_baseline(
            args.history, args.benchmark, payload, rules=rules,
            match_meta=_parse_match(args.match))
        if report is None:
            print("no matching %r baseline in %s — nothing to gate "
                  "(append this run to start a trajectory)"
                  % (args.benchmark, args.history))
            return 0
    else:
        if len(args.files) != 2:
            raise ConfigurationError(
                "compare takes exactly two artifacts (before, after) "
                "unless --history is given; got %d" % len(args.files))
        payloads = []
        for path in args.files:
            with open(path) as handle:
                payloads.append(json.load(handle))
        report = compare_metrics(payloads[0], payloads[1], rules=rules,
                                 before_label=args.files[0],
                                 after_label=args.files[1])
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return report.exit_code


def _command_obs_history(args):
    from repro.obs.history import describe_history, load_history
    records = load_history(args.path, benchmark=args.benchmark)
    if args.json:
        shown = (records if args.limit is None
                 else records[-args.limit:])
        print(json.dumps(shown, indent=2, sort_keys=True))
    else:
        print(describe_history(records, limit=args.limit))
    return 0


def _command_obs_requests(args):
    from repro.obs.telemetry import load_ring, summarize_requests

    records = load_ring(args.ring)
    if args.status is not None:
        records = [r for r in records if r.get("status") == args.status]
    if args.database is not None:
        records = [r for r in records
                   if r.get("database") == args.database]
    if args.slower_than is not None:
        records = [r for r in records
                   if (r.get("wall_ms") or 0.0) >= args.slower_than]
    if args.tail is not None:
        records = records[-args.tail:]
    if args.summarize:
        summary = summarize_requests(records)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
            return 0
        print("%d captured request(s)" % summary["requests"])
        for key in ("by_status", "by_error_type", "by_database"):
            if summary[key]:
                print("  %s: %s" % (key[3:], ", ".join(
                    "%s=%d" % (name, count)
                    for name, count in sorted(summary[key].items()))))
        if summary["wall_ms"]:
            wall = summary["wall_ms"]
            print("  wall ms: min %.1f  p50 %.1f  p95 %.1f  max %.1f"
                  % (wall["min"], wall["p50"], wall["p95"],
                     wall["max"]))
        for name, mean in sorted(summary["phase_mean_ms"].items()):
            print("  phase %-14s mean %10.3f ms" % (name, mean))
        return 0
    if args.json:
        print(json.dumps(records, indent=2, sort_keys=True))
        return 0
    if not records:
        print("no captured requests match")
        return 0
    for record in records:
        phases = {child["name"]: child["duration_ms"]
                  for child in (record.get("span") or {}).get(
                      "children") or []}
        detail = "  ".join("%s=%.1f" % (name, phases[name])
                           for name in ("queue_wait", "gate_acquire",
                                        "engine", "serialize")
                           if name in phases)
        wall = record.get("wall_ms")
        print("%-12s %-10s %-9s %9s ms  %s%s"
              % (record.get("query_id"), record.get("database"),
                 record.get("status"),
                 "%.1f" % wall if wall is not None else "-", detail,
                 "  [sampled]" if record.get("sampled") else ""))
        if record.get("error_type"):
            print("             %s: %s"
                  % (record["error_type"], record.get("error")))
    return 0


def _command_obs(args):
    handlers = {
        "analyze": _command_obs_analyze,
        "compare": _command_obs_compare,
        "history": _command_obs_history,
        "requests": _command_obs_requests,
    }
    return handlers[args.obs_command](args)


def _command_serve(args):
    import signal
    import threading

    from repro.service import GraphService, make_server
    if not args.db and not args.dataset:
        raise ConfigurationError(
            "serve needs at least one --db NAME=PREFIX or --dataset "
            "NAME")
    telemetry = None
    log_handle = None
    if args.telemetry or args.telemetry_ring or args.telemetry_log:
        from repro.obs.telemetry import TelemetryConfig
        log_stream = None
        if args.telemetry_log == "-":
            log_stream = sys.stderr
        elif args.telemetry_log:
            log_handle = open(args.telemetry_log, "a")
            log_stream = log_handle
        telemetry = TelemetryConfig(
            slow_ms=args.slow_ms,
            sample_every=args.sample_every,
            ring_dir=args.telemetry_ring,
            ring_capacity=args.ring_capacity,
            log_stream=log_stream)
    service = GraphService(max_in_flight=args.max_in_flight,
                           max_queue=args.max_queue,
                           shared_cache_pages=args.shared_cache_pages,
                           telemetry=telemetry)
    if telemetry is not None:
        print("telemetry on: slow-ms %.0f, sample-every %d%s%s"
              % (args.slow_ms, args.sample_every,
                 ", ring %s" % args.telemetry_ring
                 if args.telemetry_ring else "",
                 ", log %s" % args.telemetry_log
                 if args.telemetry_log else ""), file=sys.stderr)
    for item in args.db:
        name, sep, prefix = item.partition("=")
        if not sep or not name or not prefix:
            raise ConfigurationError(
                "--db expects NAME=PREFIX, got %r" % item)
        db = service.add_database(name, prefix=prefix,
                                  pool_pages=args.pool_pages,
                                  store_mode=args.store_mode)
        print("serving %r from %s (%d vertices, %d edges)"
              % (name, prefix, db.num_vertices, db.num_edges),
              file=sys.stderr)
    for name in args.dataset:
        if name not in DATASETS:
            raise ConfigurationError(
                "unknown dataset %r (see 'repro datasets')" % name)
        db = dataset_database(name, weighted=True)
        service.add_database(name, db=db)
        print("serving dataset %r (%d vertices, %d edges)"
              % (name, db.num_vertices, db.num_edges), file=sys.stderr)
    server = make_server(service, host=args.host, port=args.port,
                         verbose=args.verbose)
    host, port = server.server_address[:2]

    def _begin_shutdown(signum, frame):
        # serve_forever() must be unblocked from another thread; the
        # drain itself happens below, after the listener stops.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGINT, _begin_shutdown)
    signal.signal(signal.SIGTERM, _begin_shutdown)
    print("serving on http://%s:%d (databases: %s)"
          % (host, port, ", ".join(service.database_names())),
          flush=True)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        service.drain(wait=True)
    stats = service.stats()
    if args.stats_out:
        from repro.obs import collect_service_metrics
        collect_service_metrics(stats).to_json(args.stats_out)
        print("wrote service stats to %s" % args.stats_out,
              file=sys.stderr)
    print("clean shutdown: %d completed, %d failed, %d rejected"
          % (stats["completed"], stats["failed"],
             stats["rejected_admission"] + stats["rejected_shutdown"]),
          file=sys.stderr)
    if log_handle is not None:
        log_handle.close()
    return 0


def _command_query(args):
    from repro.errors import (AdmissionError, DeadlineError,
                              ShutdownError)
    from repro.service import ServiceClient
    client = ServiceClient(args.url, timeout=args.timeout,
                           retries=args.retries)
    params = {"iterations": args.iterations, "k": args.k}
    if args.start is not None:
        params["start"] = args.start
    options = {}
    if args.strategy:
        options["strategy"] = args.strategy
    if args.streams is not None:
        options["num_streams"] = args.streams
    if args.gpus is not None:
        options["num_gpus"] = args.gpus
    if args.execution:
        options["execution"] = args.execution
    if args.backend:
        options["backend"] = args.backend
    if args.backend_workers is not None:
        options["backend_workers"] = args.backend_workers
    if args.io_merge:
        options["io_merge"] = True
    if args.timeout_ms is not None:
        options["timeout_ms"] = args.timeout_ms
    try:
        result = client.query(args.database, args.algorithm,
                              params=params, options=options or None,
                              query_id=args.query_id,
                              include_values=args.include_values)
    except AdmissionError as error:
        print("busy: %s" % error, file=sys.stderr)
        return 2
    except ShutdownError as error:
        print("draining: %s" % error, file=sys.stderr)
        return 3
    except DeadlineError as error:
        print("deadline exceeded: %s" % error, file=sys.stderr)
        return 4
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print("%s on %s [%s]: %.6f s simulated, %d rounds, "
              "%d pages streamed, shared-cache hit rate %.1f%% "
              "(query %s)"
              % (result["algorithm"], result["dataset"],
                 result["strategy"], result["elapsed_seconds"],
                 result["num_rounds"], result["pages_streamed"],
                 100.0 * result["shared_hit_rate"],
                 result["query_id"]))
    return 0


def _command_bench(args):
    outcome = EXPERIMENTS[args.experiment](args)
    tables = outcome if isinstance(outcome, tuple) else (outcome,)
    for table in tables:
        print(table.render())
        print()
    return 0


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "profile": _command_profile,
        "datasets": _command_datasets,
        "recommend": _command_recommend,
        "bench": _command_bench,
        "update": _command_update,
        "compact": _command_compact,
        "report": _command_report,
        "obs": _command_obs,
        "serve": _command_serve,
        "query": _command_query,
    }
    try:
        return handlers[args.command](args)
    except GTSError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    except OSError as error:
        # Artifact paths (--trace-out/--metrics-out) are user input.
        print("error: %s" % error, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
