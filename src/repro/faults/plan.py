"""FaultPlan: the declarative, seed-driven description of what breaks.

A plan is pure data — rates for the probabilistic fault classes, a
schedule for whole-device losses, and the retry policy that absorbs the
recoverable ones.  The same plan plus the same seed always produces the
same faults at the same points (see :mod:`repro.faults.inject`), so a
chaos run is exactly as reproducible as a fault-free one.

Fault taxonomy
--------------
========================  ======================================  ============
fault                      injection point                         recovery
========================  ======================================  ============
``ssd_transient_rate``     ``StorageArray.fetch``                  retry + backoff on the SSD channel
``ssd_corrupt_rate``       ``StorageArray.fetch``                  checksum-verified re-fetch
``copy_error_rate``        ``StreamScheduler.dispatch_streamed``   retry + backoff on the copy engine
``stall_rate``             stream dispatch (cached or streamed)    none needed — kernel delayed ``stall_seconds``
``gpu_loss``               engine round boundary                   Strategy-P: drain + redistribute; Strategy-S: :class:`~repro.errors.DeviceLostError`
``ssd_loss``               ``StorageArray.fetch``                  none — :class:`~repro.errors.DeviceLostError`
``host_corrupt_reads``     ``FileBackedDatabase._parse_page``      CRC32-verified re-read; persistent ⇒ :class:`~repro.errors.IntegrityError`
========================  ======================================  ============

Plans load from JSON (the CLI's ``run --faults plan.json``)::

    {
      "seed": 7,
      "ssd_transient_rate": 0.02,
      "ssd_corrupt_rate": 0.01,
      "copy_error_rate": 0.01,
      "stall_rate": 0.05,
      "stall_seconds": 0.0005,
      "gpu_loss": {"1": 0.002},
      "host_corrupt_reads": {"3": 1},
      "retry": {"max_attempts": 6}
    }
"""

import dataclasses
import json
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.faults.retry import RetryPolicy

_RATE_FIELDS = ("ssd_transient_rate", "ssd_corrupt_rate",
                "copy_error_rate", "stall_rate")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Deterministic description of the faults a run must survive.

    Rates are per-opportunity probabilities in ``[0, 1)`` — e.g.
    ``ssd_transient_rate=0.02`` means each (round, page) storage read
    independently fails with probability 2 %.  ``gpu_loss`` /
    ``ssd_loss`` map device index to the simulated time at which the
    device dies (a GPU dead at round start is drained; an SSD is simply
    gone).  ``host_corrupt_reads`` maps a page ID to how many of its
    first host file reads come back corrupted (exercising the CRC32
    verified re-read path in :class:`~repro.format.io.FileBackedDatabase`).
    """

    seed: int = 0
    ssd_transient_rate: float = 0.0
    ssd_corrupt_rate: float = 0.0
    copy_error_rate: float = 0.0
    stall_rate: float = 0.0
    #: Kernel-launch delay charged when a stream stall fires.
    stall_seconds: float = 1e-4
    gpu_loss: Dict[int, float] = dataclasses.field(default_factory=dict)
    ssd_loss: Dict[int, float] = dataclasses.field(default_factory=dict)
    host_corrupt_reads: Dict[int, int] = dataclasses.field(
        default_factory=dict)
    retry: Optional[RetryPolicy] = None

    def __post_init__(self):
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(
                    "%s must be in [0, 1) (got %r)" % (name, rate))
        if self.stall_seconds < 0:
            raise ConfigurationError("stall_seconds cannot be negative")
        for name in ("gpu_loss", "ssd_loss"):
            schedule = getattr(self, name)
            clean = {}
            for index, at in schedule.items():
                index = int(index)
                if index < 0:
                    raise ConfigurationError(
                        "%s device index cannot be negative" % name)
                if at < 0:
                    raise ConfigurationError(
                        "%s time cannot be negative" % name)
                clean[index] = float(at)
            object.__setattr__(self, name, clean)
        clean = {}
        for pid, count in self.host_corrupt_reads.items():
            pid, count = int(pid), int(count)
            if pid < 0 or count < 0:
                raise ConfigurationError(
                    "host_corrupt_reads entries cannot be negative")
            clean[pid] = count
        object.__setattr__(self, "host_corrupt_reads", clean)
        if self.retry is not None and not isinstance(self.retry,
                                                     RetryPolicy):
            object.__setattr__(self, "retry",
                               RetryPolicy.from_dict(dict(self.retry)))

    # ------------------------------------------------------------------
    @property
    def any_rates(self):
        """True when any probabilistic fault class can fire."""
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    @property
    def active(self):
        """True when this plan can inject anything at all."""
        return (self.any_rates or bool(self.gpu_loss)
                or bool(self.ssd_loss) or bool(self.host_corrupt_reads))

    def with_seed(self, seed):
        """A copy of this plan under a different seed (CLI override)."""
        return dataclasses.replace(self, seed=int(seed))

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data):
        """Build a plan from a plain (JSON-decoded) dict."""
        data = dict(data)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                "unknown fault plan field(s): %s"
                % ", ".join(sorted(unknown)))
        return cls(**data)

    @classmethod
    def from_json_file(cls, path):
        """Load a plan from a JSON file (``run --faults plan.json``)."""
        with open(path) as handle:
            try:
                data = json.load(handle)
            except ValueError as error:
                raise ConfigurationError(
                    "%s: not valid JSON: %s" % (path, error)) from None
        if not isinstance(data, dict):
            raise ConfigurationError(
                "%s: fault plan must be a JSON object" % path)
        return cls.from_dict(data)

    def to_dict(self):
        """JSON-ready dict (inverse of :meth:`from_dict`)."""
        out = dataclasses.asdict(self)
        if self.retry is not None:
            out["retry"] = self.retry.to_dict()
        return out
