"""Bounded retry with exponential backoff, booked in simulated time.

Every recoverable fault in :mod:`repro.faults` is absorbed the same
way: the failed operation is re-attempted up to ``max_attempts`` times,
and each failure charges a backoff delay *on the faulted device's
simulated timeline* — so a run that survives faults is measurably
slower, and the Eq. 1 / Eq. 2 drift reports (:mod:`repro.obs.drift`)
show the degradation instead of hiding it.
"""

import dataclasses

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a faulted operation, and at what cost.

    Attempt ``k`` (zero-based) that fails is followed by a backoff of
    ``backoff_seconds * multiplier ** k``, capped at
    ``max_backoff_seconds``.  The backoff is booked as real simulated
    time on the device channel that faulted, serializing behind (and
    delaying) that device's other work.
    """

    max_attempts: int = 4
    backoff_seconds: float = 1e-4
    multiplier: float = 2.0
    max_backoff_seconds: float = 0.1

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError(
                "retry policy needs at least one attempt (got %r)"
                % self.max_attempts)
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ConfigurationError("backoff times cannot be negative")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                "backoff multiplier must be >= 1 (got %r)"
                % self.multiplier)

    def backoff(self, attempt):
        """Backoff charged after failed attempt ``attempt`` (0-based)."""
        delay = self.backoff_seconds * self.multiplier ** attempt
        return min(delay, self.max_backoff_seconds)

    def total_backoff(self, attempts):
        """Sum of backoffs over ``attempts`` consecutive failures."""
        return sum(self.backoff(k) for k in range(attempts))

    @classmethod
    def from_dict(cls, data):
        """Build from a plain dict (the ``retry`` key of a fault plan)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                "unknown retry policy field(s): %s"
                % ", ".join(sorted(unknown)))
        return cls(**data)

    def to_dict(self):
        """JSON-ready dict (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)


#: The policy engines use when a fault plan does not override it.
DEFAULT_RETRY_POLICY = RetryPolicy()
