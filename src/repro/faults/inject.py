"""FaultInjector: deterministic, probe-able fault draws plus counters.

Every probabilistic fault decision is a *pure function* of
``(seed, site, round, device, page, attempt)`` — a splitmix64-style
integer hash folded over the key, mapped to a uniform in ``[0, 1)`` and
compared against the plan's rate.  Purity buys two properties the chaos
tests rely on:

* **Determinism** — the same plan + seed faults the same operations in
  the same order, every run, on every platform (no RNG stream to drift
  when call order changes).
* **Probe-ability** — the engine can ask *"will any fault fire in this
  round?"* (:meth:`FaultInjector.round_faulted`) before committing to
  the vectorized batched dispatch path, and the answer is guaranteed to
  agree with what the per-page injection points would actually do,
  because both evaluate the identical hash on the identical key.

The injector also carries the run's fault bookkeeping (what fired, what
was retried, how much simulated backoff was charged), which the engine
snapshots into :attr:`repro.core.result.RunResult.fault_stats` and
:func:`repro.obs.metrics.collect_run_metrics` turns into counters.
"""

import numpy as np

from repro.faults.plan import FaultPlan
from repro.faults.retry import DEFAULT_RETRY_POLICY

# splitmix64 finalizer constants (Steele et al.), kept as uint64 scalars
# so numpy wraps multiplications instead of upcasting.
_M1 = np.uint64(0xbf58476d1ce4e5b9)
_M2 = np.uint64(0x94d049bb133111eb)
_GOLD = np.uint64(0x9e3779b97f4a7c15)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)
_U64 = 2.0 ** 64

#: Hash-domain separators, one per fault class.
SITE_SSD_TRANSIENT = 1
SITE_SSD_CORRUPT = 2
SITE_COPY = 3
SITE_STALL = 4

#: Simulated outcomes of one storage read attempt.
READ_OK = None
READ_TRANSIENT = "transient"
READ_CORRUPT = "corrupt"


def _mix(x):
    """splitmix64 finalizer over a uint64 scalar or array."""
    with np.errstate(over="ignore"):  # uint64 wraparound is the point
        x = (x ^ (x >> _S30)) * _M1
        x = (x ^ (x >> _S27)) * _M2
        return x ^ (x >> _S31)


def _fold(h, v):
    """Fold one key component into the running hash."""
    with np.errstate(over="ignore"):
        return _mix(h ^ (v * _GOLD))


class FaultInjector:
    """One run's fault oracle and bookkeeping.

    Built fresh per :meth:`repro.core.engine.GTSEngine.run` so counters
    attribute to exactly one run.  ``seed`` overrides the plan's seed
    (the CLI's ``--fault-seed``); ``retry`` overrides the plan's retry
    policy.
    """

    def __init__(self, plan, seed=None, retry=None):
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan.from_dict(plan)
        if seed is not None:
            plan = plan.with_seed(seed)
        self.plan = plan
        self.retry = retry or plan.retry or DEFAULT_RETRY_POLICY
        self._seed = np.uint64(plan.seed & 0xFFFFFFFFFFFFFFFF)
        self._round = 0
        # -- bookkeeping ------------------------------------------------
        self.ssd_transient_faults = 0
        self.ssd_corrupt_faults = 0
        self.copy_faults = 0
        self.stream_stalls = 0
        self.host_corrupt_faults = 0
        self.retries = 0
        self.backoff_seconds = 0.0
        self.stall_seconds_injected = 0.0
        self.fallback_rounds = 0
        self.devices_lost = 0
        self._host_reads_seen = {}

    # ------------------------------------------------------------------
    # Pure draws
    # ------------------------------------------------------------------
    def _uniform(self, site, *key, vector=None):
        """Uniform in ``[0, 1)`` for ``(site, *key)``; with ``vector``
        the last key component is an int array and an array returns."""
        h = _fold(self._seed, np.uint64(site))
        for component in key:
            h = _fold(h, np.uint64(component))
        if vector is not None:
            h = _fold(h, np.asarray(vector).astype(np.uint64))
        return h / _U64

    # ------------------------------------------------------------------
    # Round context
    # ------------------------------------------------------------------
    def begin_round(self, round_index):
        """Scope subsequent draws to engine round ``round_index``."""
        self._round = int(round_index)

    def round_faulted(self, pids, assignments):
        """Would any probabilistic fault fire in the current round?

        ``pids`` / ``assignments`` are the round's page IDs and per-page
        GPU tuples.  Evaluates the exact draws the injection points
        would, at attempt 0, so a ``False`` here guarantees the round's
        dispatch is fault-free and safe for the batched fast path.
        """
        plan = self.plan
        if not plan.any_rates:
            return False
        pids = np.asarray(pids, dtype=np.int64)
        if not len(pids):
            return False
        r = self._round
        if plan.ssd_transient_rate and bool(
                (self._uniform(SITE_SSD_TRANSIENT, r, 0, vector=pids)
                 < plan.ssd_transient_rate).any()):
            return True
        if plan.ssd_corrupt_rate and bool(
                (self._uniform(SITE_SSD_CORRUPT, r, 0, vector=pids)
                 < plan.ssd_corrupt_rate).any()):
            return True
        if plan.copy_error_rate or plan.stall_rate:
            per_gpu = {}
            for pid, gpus in zip(pids.tolist(), assignments):
                for g in gpus:
                    per_gpu.setdefault(g, []).append(pid)
            for g, gpu_pids in per_gpu.items():
                gpu_pids = np.asarray(gpu_pids, dtype=np.int64)
                if plan.copy_error_rate and bool(
                        (self._uniform(SITE_COPY, r, g, 0,
                                       vector=gpu_pids)
                         < plan.copy_error_rate).any()):
                    return True
                if plan.stall_rate and bool(
                        (self._uniform(SITE_STALL, r, g, vector=gpu_pids)
                         < plan.stall_rate).any()):
                    return True
        return False

    # ------------------------------------------------------------------
    # Injection points
    # ------------------------------------------------------------------
    def ssd_read_outcome(self, page_id, attempt):
        """Outcome of one storage read attempt for ``page_id``.

        Returns :data:`READ_OK`, :data:`READ_TRANSIENT` (the read
        failed outright) or :data:`READ_CORRUPT` (the read completed
        but its bytes fail checksum verification).  Counts what fired.
        """
        plan = self.plan
        if plan.ssd_transient_rate and bool(
                self._uniform(SITE_SSD_TRANSIENT, self._round, attempt,
                              vector=page_id)
                < plan.ssd_transient_rate):
            self.ssd_transient_faults += 1
            return READ_TRANSIENT
        if plan.ssd_corrupt_rate and bool(
                self._uniform(SITE_SSD_CORRUPT, self._round, attempt,
                              vector=page_id)
                < plan.ssd_corrupt_rate):
            self.ssd_corrupt_faults += 1
            return READ_CORRUPT
        return READ_OK

    def copy_fault(self, gpu_index, page_id, attempt):
        """Does this host-to-device copy attempt fail?"""
        plan = self.plan
        if plan.copy_error_rate and bool(
                self._uniform(SITE_COPY, self._round, gpu_index, attempt,
                              vector=page_id)
                < plan.copy_error_rate):
            self.copy_faults += 1
            return True
        return False

    def stall_seconds(self, gpu_index, page_id):
        """Stream-stall delay (0.0 when no stall fires) for a dispatch."""
        plan = self.plan
        if plan.stall_rate and bool(
                self._uniform(SITE_STALL, self._round, gpu_index,
                              vector=page_id)
                < plan.stall_rate):
            self.stream_stalls += 1
            self.stall_seconds_injected += plan.stall_seconds
            return plan.stall_seconds
        return 0.0

    def ssd_lost(self, device_index, at_time):
        """Loss time if storage device ``device_index`` is dead by
        ``at_time``, else ``None``."""
        lost_at = self.plan.ssd_loss.get(device_index)
        if lost_at is not None and at_time >= lost_at:
            return lost_at
        return None

    def gpu_losses_by(self, at_time):
        """GPU indices whose scheduled loss time has passed."""
        return [g for g, lost_at in sorted(self.plan.gpu_loss.items())
                if at_time >= lost_at]

    def host_read_corrupt(self, page_id):
        """Should this host file read of ``page_id`` come back corrupted?

        Consumes one unit of the plan's ``host_corrupt_reads`` budget
        for the page (the first N reads are corrupted, later ones are
        clean — modelling transient bit-rot on the read path that a
        verified re-read recovers from).
        """
        budget = self.plan.host_corrupt_reads.get(page_id, 0)
        if not budget:
            return False
        seen = self._host_reads_seen.get(page_id, 0)
        self._host_reads_seen[page_id] = seen + 1
        if seen < budget:
            self.host_corrupt_faults += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def note_retry(self, backoff):
        """Record one retry and the simulated backoff it charged."""
        self.retries += 1
        self.backoff_seconds += backoff

    def note_fallback(self):
        """Record one batched round degraded to the paged path."""
        self.fallback_rounds += 1

    def note_device_lost(self):
        """Record one whole-device loss the run absorbed."""
        self.devices_lost += 1

    @property
    def faults_injected(self):
        """Total probabilistic faults that fired (all classes)."""
        return (self.ssd_transient_faults + self.ssd_corrupt_faults
                + self.copy_faults + self.stream_stalls
                + self.host_corrupt_faults)

    def stats(self):
        """JSON-ready snapshot of what this run's faults cost."""
        return {
            "seed": self.plan.seed,
            "faults_injected": self.faults_injected,
            "ssd_transient_faults": self.ssd_transient_faults,
            "ssd_corrupt_faults": self.ssd_corrupt_faults,
            "copy_faults": self.copy_faults,
            "stream_stalls": self.stream_stalls,
            "host_corrupt_faults": self.host_corrupt_faults,
            "retries": self.retries,
            "backoff_seconds": self.backoff_seconds,
            "stall_seconds_injected": self.stall_seconds_injected,
            "fallback_rounds": self.fallback_rounds,
            "devices_lost": self.devices_lost,
        }
