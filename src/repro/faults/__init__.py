"""Fault injection & recovery for the streaming pipeline (``repro.faults``).

GTS's pipeline — PCI-E SSDs feeding one copy engine feeding many GPU
streams — is exactly where real deployments see transient read errors,
corrupted pages and device loss.  This package makes the reproduction
model the failure half of that story:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, the declarative,
  seed-driven description of what breaks (rates, device-loss schedule,
  host read corruption) loaded from JSON by ``run --faults``;
* :mod:`repro.faults.inject` — :class:`FaultInjector`, pure hash-based
  fault draws (deterministic and probe-able) plus the run's fault
  bookkeeping;
* :mod:`repro.faults.retry` — :class:`RetryPolicy`, bounded attempts
  with exponential backoff charged as real simulated time on the
  faulted device channel.

The invariant the chaos suite (``tests/test_chaos.py``) locks in: a
fault-injected run whose faults are all recoverable produces
**bit-identical algorithm results** to the fault-free run (only slower),
and an unrecoverable plan raises a typed
:class:`~repro.errors.GTSError` subclass — never a wrong answer.
"""

from repro.faults.inject import (
    FaultInjector,
    READ_CORRUPT,
    READ_OK,
    READ_TRANSIENT,
)
from repro.faults.plan import FaultPlan
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "READ_OK",
    "READ_TRANSIENT",
    "READ_CORRUPT",
]
