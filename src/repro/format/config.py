"""Slotted-page format configuration: addressing widths and page size.

The original slotted page format (Han et al., KDD 2013) uses a 4-byte
physical record ID: a 2-byte page ID (``ADJ_PID``) and a 2-byte slot number
(``ADJ_OFF``).  Section 6.1 of the GTS paper generalises this to ``p``-byte
page IDs and ``q``-byte slot numbers so that trillion-scale graphs can be
addressed, and Table 2 works through the three balanced configurations of a
6-byte physical ID.  This module reproduces that arithmetic exactly.

A page's byte layout is::

    +-------------------------------------------------------------+
    | record 0 | record 1 | ...      free space      ... | slot 1 | slot 0 |
    +-------------------------------------------------------------+

Records grow forward from the start of the page and slots grow backward from
the end (Section 2).  A slot is ``(VID, OFF)`` and a record is
``(ADJLIST_SZ, ADJLIST)`` where each adjacency entry is a physical ID of
``p + q`` bytes.
"""

import dataclasses

from repro.errors import ConfigurationError
from repro.units import MB


@dataclasses.dataclass(frozen=True)
class PageFormatConfig:
    """Widths and sizes defining a slotted-page layout.

    Parameters
    ----------
    page_id_bytes:
        ``p`` — bytes used for the page-ID half of a physical record ID.
    slot_bytes:
        ``q`` — bytes used for the slot-number half of a physical record ID.
    page_size:
        Size of every slotted page in bytes.  The paper uses 64 MB for its
        ``(3, 3)`` configuration; scaled-down experiments in this repo use
        much smaller pages (see ``repro.bench.datasets``).
    vid_bytes:
        Width of a logical vertex ID stored in a slot.  The paper's Table 2
        assumes 6 bytes.
    offset_bytes:
        Width of the record-offset field stored in a slot (paper: 4 bytes).
    adjlist_size_bytes:
        Width of the ``ADJLIST_SZ`` field leading each record (paper: 4).
    weight_bytes:
        Bytes per adjacency entry reserved for an edge weight, 0 for
        unweighted topology.  SSSP experiments use 4-byte weights.
    """

    page_id_bytes: int = 2
    slot_bytes: int = 2
    page_size: int = 64 * MB
    vid_bytes: int = 6
    offset_bytes: int = 4
    adjlist_size_bytes: int = 4
    weight_bytes: int = 0

    def __post_init__(self):
        if self.page_id_bytes < 1 or self.slot_bytes < 1:
            raise ConfigurationError("physical ID widths must be >= 1 byte")
        if self.page_size <= self.min_page_bytes():
            raise ConfigurationError(
                "page_size %d is too small to hold a single minimal record"
                % self.page_size
            )

    # ------------------------------------------------------------------
    # Derived widths
    # ------------------------------------------------------------------
    @property
    def record_id_bytes(self):
        """Width of one physical record ID (``p + q`` bytes)."""
        return self.page_id_bytes + self.slot_bytes

    @property
    def adjacency_entry_bytes(self):
        """Bytes per adjacency-list entry: a physical ID plus any weight."""
        return self.record_id_bytes + self.weight_bytes

    @property
    def slot_entry_bytes(self):
        """Bytes per slot: logical VID plus the record offset."""
        return self.vid_bytes + self.offset_bytes

    @property
    def max_page_id(self):
        """Largest addressable page ID (exclusive), ``2 ** (8 p)``."""
        return 1 << (8 * self.page_id_bytes)

    @property
    def max_slot_number(self):
        """Largest addressable slot number (exclusive), ``2 ** (8 q)``."""
        return 1 << (8 * self.slot_bytes)

    @property
    def max_vertex_id(self):
        """Largest representable logical vertex ID (exclusive)."""
        return 1 << (8 * self.vid_bytes)

    def min_page_bytes(self):
        """Bytes consumed by one minimal record (degree 1) plus its slot.

        This is the per-slot cost Table 2 multiplies by the maximum slot
        count to obtain the theoretical maximum page size.
        """
        record = self.adjlist_size_bytes + self.adjacency_entry_bytes
        return record + self.slot_entry_bytes

    def theoretical_max_page_size(self):
        """The Table 2 "max. page size" column for this configuration.

        The paper computes it as the maximum number of slots times the cost
        of one minimal (degree-1) record plus its slot: with ``VID`` of
        6 bytes, ``OFF`` of 4 bytes, ``ADJLIST_SZ`` of 4 bytes and a 6-byte
        physical ID this is 20 bytes per slot, giving 80 GB / 320 MB /
        1.25 MB for ``(2,4)`` / ``(3,3)`` / ``(4,2)``.
        """
        return self.max_slot_number * self.min_page_bytes()

    # ------------------------------------------------------------------
    # Capacity helpers used by the builder
    # ------------------------------------------------------------------
    def record_bytes(self, degree):
        """Bytes of the record for a vertex with ``degree`` neighbours."""
        return self.adjlist_size_bytes + degree * self.adjacency_entry_bytes

    def vertex_bytes(self, degree):
        """Record plus slot bytes for a vertex with ``degree`` neighbours."""
        return self.record_bytes(degree) + self.slot_entry_bytes

    def max_degree_in_one_page(self):
        """Largest adjacency list that still fits in a single (small) page.

        Vertices with more neighbours than this become large-page vertices.
        """
        available = self.page_size - self.slot_entry_bytes - self.adjlist_size_bytes
        return available // self.adjacency_entry_bytes

    def large_page_capacity(self):
        """Adjacency entries one large page can hold for its single vertex."""
        return self.max_degree_in_one_page()

    def describe(self):
        """One-line human-readable summary, used by benches and examples."""
        return (
            "(p=%d, q=%d) page_size=%d vid=%dB off=%dB adjsz=%dB weight=%dB"
            % (
                self.page_id_bytes,
                self.slot_bytes,
                self.page_size,
                self.vid_bytes,
                self.offset_bytes,
                self.adjlist_size_bytes,
                self.weight_bytes,
            )
        )


#: The three 6-byte physical ID configurations of the paper's Table 2.
#: Page sizes here are the *theoretical maxima* from the table; actual
#: deployments choose a page size at or below the maximum (the paper picks
#: 64 MB pages under (3, 3)).
SIX_BYTE_CONFIGS = {
    (2, 4): PageFormatConfig(page_id_bytes=2, slot_bytes=4, page_size=64 * MB),
    (3, 3): PageFormatConfig(page_id_bytes=3, slot_bytes=3, page_size=64 * MB),
    (4, 2): PageFormatConfig(page_id_bytes=4, slot_bytes=2, page_size=1 * MB),
}
