"""GraphDatabase: a built slotted-page store plus its metadata.

This is what the GTS engine streams from.  It owns:

* the pages themselves (``SmallPage`` / ``LargePage`` objects),
* a page directory (sizes and kinds, for storage accounting),
* the RVT (record-ID → vertex-ID mapping, kept in main memory),
* per-vertex metadata the kernels need (total out-degree; the page a
  vertex lives in, which seeds ``nextPIDSet`` for BFS-like algorithms).

The ``num_small_pages`` / ``num_large_pages`` statistics are the #SP / #LP
columns of the paper's Table 3.
"""

import dataclasses

import numpy as np

from repro.concurrency import InstrumentedLock
from repro.errors import FormatError
from repro.format.page import PageKind, sorted_scatter_index


@dataclasses.dataclass(frozen=True)
class PageDirectoryEntry:
    """Directory row describing one page without holding its data."""

    page_id: int
    kind: str              # "SP" or "LP"
    start_vid: int
    num_records: int
    num_edges: int
    used_bytes: int


class GraphDatabase:
    """A slotted-page graph database (see :mod:`repro.format.builder`)."""

    def __init__(self, pages, directory, rvt, config, num_vertices,
                 num_edges, out_degrees, vertex_page, name=None):
        self.pages = pages
        self.directory = directory
        self.rvt = rvt
        self.config = config
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.out_degrees = np.asarray(out_degrees, dtype=np.int64)
        #: For every vertex, the page under which other vertices address it
        #: (its small page, or the first of its large pages).
        self.vertex_page = np.asarray(vertex_page, dtype=np.int64)
        self.name = name or "graph"
        #: Monotone counter bumped whenever the topology mutates (the
        #: dynamic layer increments it per applied batch and per
        #: compaction); engines compare it against the value seen at
        #: construction to invalidate page-derived indexes.
        self.topology_version = 0
        self._small_page_ids = np.array(
            [e.page_id for e in directory if e.kind == "SP"], dtype=np.int64)
        self._large_page_ids = np.array(
            [e.page_id for e in directory if e.kind == "LP"], dtype=np.int64)
        #: Sorted-scatter indexes keyed by ``(page_id, topology_version)``
        #: so they survive file-pool evictions (a re-parsed page object
        #: loses its ``_scatter_index`` attribute, but the argsort only
        #: depends on the topology, not on the page instance).
        self._scatter_cache = {}
        self.scatter_hits = 0
        self.scatter_misses = 0
        #: Guards scatter-cache insertion when concurrent service
        #: queries share one database; the probe stays lock-free.
        self._scatter_lock = InstrumentedLock()
        #: Optional :class:`~repro.obs.host.HostProfiler` attached by
        #: the engine for the duration of a profiled run; ``None``
        #: keeps the page/scatter hot paths free of profiling work.
        self.host_profiler = None
        #: Optional :class:`~repro.core.cache.SharedPageCache` attached
        #: by the service (or ``GTSEngine(shared_cache=...)``); consulted
        #: only by the file-backed loader's miss path, so eager
        #: databases carry the attribute but never touch it.
        self.shared_cache = None

    # ------------------------------------------------------------------
    # Page access
    # ------------------------------------------------------------------
    @property
    def num_pages(self):
        return len(self.pages)

    @property
    def num_small_pages(self):
        """#SP — the paper's Table 3 statistic."""
        return len(self._small_page_ids)

    @property
    def num_large_pages(self):
        """#LP — the paper's Table 3 statistic."""
        return len(self._large_page_ids)

    def small_page_ids(self):
        return self._small_page_ids

    def large_page_ids(self):
        return self._large_page_ids

    def page(self, page_id):
        if page_id < 0 or page_id >= len(self.pages):
            raise FormatError("unknown page ID %d" % page_id)
        return self.pages[page_id]

    def is_small(self, page_id):
        return self.pages[page_id].kind is PageKind.SMALL

    def page_for_vertex(self, vid):
        """Page ID containing ``vid`` — seeds BFS's initial ``nextPIDSet``."""
        return int(self.vertex_page[vid])

    def scatter_index(self, page):
        """Database-level sorted-scatter index for ``page``.

        Keyed by ``(page_id, topology_version)``, so snapshots pinned
        at different MVCC versions share one cache without thrashing:
        entries for versions still pinned stay warm side by side, pool
        evictions in :class:`~repro.format.io.FileBackedDatabase` never
        force an argsort recompute, and the reclamation path prunes
        keys of reclaimed versions via :meth:`drop_scatter_version`.
        ``scatter_hits`` / ``scatter_misses`` feed the engine's per-run
        counters.

        Thread-safe for the service's concurrent queries: the hit path
        is a lock-free dict probe (entries are immutable, and a racy
        hit-counter increment may undercount slightly under heavy
        threading — the counters are rates, not ledgers); the miss path
        computes the argsort outside the lock and inserts under it, so
        two simultaneous missers at worst duplicate one argsort and the
        last identical value wins.
        """
        key = (page.page_id, self.topology_version)
        cached = self._scatter_cache.get(key)
        if cached is not None:
            self.scatter_hits += 1
            return cached
        # Profiling hooks live on the miss path only: cache hits stay a
        # dict probe regardless of profiling.
        hp = self.host_profiler
        if hp is not None:
            hp.push("scatter_build")
            index = sorted_scatter_index(page.adj_vids)
            hp.pop()
        else:
            index = sorted_scatter_index(page.adj_vids)
        with self._scatter_lock:
            self.scatter_misses += 1
            self._scatter_cache[key] = index
        return index

    def drop_scatter_version(self, version):
        """Prune scatter-index entries cached under ``version``.

        Called by the MVCC reclamation path when a topology version
        loses its last pin; without it, a long-lived dynamic database
        would accumulate one generation of argsort arrays per batch.
        """
        with self._scatter_lock:
            stale = [k for k in self._scatter_cache if k[1] == version]
            for k in stale:
                del self._scatter_cache[k]
            return len(stale)

    def scatter_lock_stats(self):
        """Scatter-cache lock contention counters (service stats)."""
        return self._scatter_lock.stats()

    # ------------------------------------------------------------------
    # Cross-query shared cache (service layer)
    # ------------------------------------------------------------------
    def attach_shared_cache(self, cache):
        """Attach a :class:`~repro.core.cache.SharedPageCache`.

        Idempotent; the cache outlives any single run.  Eager databases
        accept the attachment for API symmetry but never consult it
        (their pages are already decoded and resident).
        """
        self.shared_cache = cache

    def detach_shared_cache(self):
        """Detach the shared cache (runs fall back to their own I/O)."""
        self.shared_cache = None

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------
    def topology_bytes(self):
        """Total on-storage size: every page occupies exactly ``page_size``."""
        return self.num_pages * self.config.page_size

    def page_bytes(self, page_id=None):
        """On-storage size of one page (all pages are fixed-size)."""
        return self.config.page_size

    def used_bytes(self):
        """Sum of actually-used bytes across pages (excludes padding)."""
        return sum(entry.used_bytes for entry in self.directory)

    def fill_factor(self):
        """Used bytes over allocated bytes; a builder-quality metric."""
        total = self.topology_bytes()
        return self.used_bytes() / total if total else 0.0

    # ------------------------------------------------------------------
    # Attribute-vector sizing (Table 4)
    # ------------------------------------------------------------------
    def attribute_vector_bytes(self, bytes_per_vertex):
        """Size of one attribute vector at the paper's field width."""
        return self.num_vertices * bytes_per_vertex

    def ra_subvector_bytes(self, page_id, bytes_per_vertex):
        """Size of the RA subvector streamed alongside one page.

        For a small page, this covers the page's consecutive VID range.
        For a large page it is a single vertex's value (Section 3.4: "RA_j
        for LP is a subvector of a single attribute value").
        """
        entry = self.directory[page_id]
        return entry.num_records * bytes_per_vertex

    # ------------------------------------------------------------------
    # Consistency checking (used by tests and the builder's callers)
    # ------------------------------------------------------------------
    def validate(self):
        """Check structural invariants; raises :class:`FormatError` on bugs.

        Invariants: directory matches pages; VID coverage is exact and
        consecutive; every adjacency physical ID translates through the RVT
        to the pre-materialised logical VID; edge counts add up.
        """
        if len(self.directory) != len(self.pages):
            raise FormatError("directory and page list lengths differ")
        covered = 0
        total_edges = 0
        for entry, page in zip(self.directory, self.pages):
            if entry.page_id != page.page_id:
                raise FormatError("directory out of order")
            if entry.kind == "SP":
                covered += entry.num_records
            elif entry.kind == "LP" and page.chunk_index == 0:
                covered += 1
            total_edges += page.num_edges
            translated = self.rvt.translate(page.adj_pids, page.adj_slots)
            if not np.array_equal(translated, page.adj_vids):
                raise FormatError(
                    "RVT translation mismatch in page %d" % page.page_id)
        if covered != self.num_vertices:
            raise FormatError(
                "pages cover %d vertices, expected %d"
                % (covered, self.num_vertices))
        if total_edges != self.num_edges:
            raise FormatError(
                "pages hold %d edges, expected %d"
                % (total_edges, self.num_edges))
        return True

    def statistics(self):
        """Summary dict used by the Table 3 bench and examples."""
        return {
            "name": self.name,
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "p": self.config.page_id_bytes,
            "q": self.config.slot_bytes,
            "page_size": self.config.page_size,
            "num_sp": self.num_small_pages,
            "num_lp": self.num_large_pages,
            "topology_bytes": self.topology_bytes(),
            "fill_factor": self.fill_factor(),
        }

    def __repr__(self):
        return "GraphDatabase(%s: V=%d, E=%d, SP=%d, LP=%d)" % (
            self.name, self.num_vertices, self.num_edges,
            self.num_small_pages, self.num_large_pages)
