"""Builder: turn a CSR graph into a slotted-page database.

The build runs in two passes, because adjacency lists store *physical* IDs
and a vertex's physical location must be known before any page that
references it can be encoded:

1. **Placement** — walk vertices in VID order and assign each to either the
   current small page (if its record and slot fit, and the page has slot
   numbers left) or to a run of large pages (if the record alone exceeds a
   page).  VIDs stay consecutive within every page, which is what makes the
   RVT's ``START_VID + ADJ_OFF`` translation work.
2. **Encoding** — materialise each page, rewriting every neighbour VID into
   the ``(page, slot)`` physical ID assigned in pass 1.  A large-page vertex
   is addressed through its *first* large page at slot 0.

Page IDs are assigned in vertex order, interleaving SPs and LPs exactly as
in Figure 1 (``SP0`` holds v0–v2, then ``LP1``/``LP2`` hold v3's list).
"""

import numpy as np

from repro.errors import FormatError
from repro.format.database import GraphDatabase, PageDirectoryEntry
from repro.format.page import LargePage, SmallPage
from repro.format.rvt import RecordVertexTable


class _PlacementPlan:
    """Output of pass 1: where every vertex and page will live."""

    def __init__(self, num_vertices):
        # Physical ID under which other vertices reference vertex v.
        self.vertex_pid = np.zeros(num_vertices, dtype=np.int64)
        self.vertex_slot = np.zeros(num_vertices, dtype=np.int64)
        # Page layout: each entry is either
        #   ("SP", start_vid, num_records) or ("LP", vid, chunk_index).
        self.pages = []

    @property
    def num_pages(self):
        return len(self.pages)


def _plan_placement(graph, config):
    """Pass 1: assign vertices to pages in VID order."""
    degrees = graph.out_degrees()
    plan = _PlacementPlan(graph.num_vertices)
    lp_capacity = config.large_page_capacity()
    page_budget = config.page_size

    current_start = None       # first VID of the open small page
    current_records = 0
    current_bytes = 0

    def close_small_page():
        nonlocal current_start, current_records, current_bytes
        if current_start is not None and current_records > 0:
            plan.pages.append(("SP", current_start, current_records))
        current_start = None
        current_records = 0
        current_bytes = 0

    for v in range(graph.num_vertices):
        degree = int(degrees[v])
        need = config.vertex_bytes(degree)
        if need > page_budget:
            # Large vertex: close the open SP, emit a run of LPs.
            close_small_page()
            num_chunks = -(-degree // lp_capacity)  # ceil division
            first_pid = plan.num_pages
            for chunk in range(num_chunks):
                plan.pages.append(("LP", v, chunk))
            plan.vertex_pid[v] = first_pid
            plan.vertex_slot[v] = 0
            continue
        if current_start is None:
            current_start = v
        fits_bytes = current_bytes + need <= page_budget
        fits_slots = current_records < config.max_slot_number
        if not (fits_bytes and fits_slots):
            close_small_page()
            current_start = v
        plan.vertex_pid[v] = plan.num_pages  # the page being filled
        plan.vertex_slot[v] = current_records
        current_records += 1
        current_bytes += need
    close_small_page()

    if plan.num_pages > config.max_page_id:
        raise FormatError(
            "graph needs %d pages but (p=%d) addresses only %d"
            % (plan.num_pages, config.page_id_bytes, config.max_page_id))
    return plan


def build_database(graph, config, name=None):
    """Build a :class:`~repro.format.database.GraphDatabase` from ``graph``.

    Parameters
    ----------
    graph:
        A :class:`~repro.graphgen.graph.Graph` (CSR).  If it carries edge
        weights and ``config.weight_bytes`` is nonzero, weights are stored
        in the pages.
    config:
        The :class:`~repro.format.config.PageFormatConfig` to build under.
    name:
        Optional dataset name recorded in the database for reporting.
    """
    if graph.weights is not None and config.weight_bytes == 0:
        # Permitted: topology-only databases can be built from weighted
        # graphs; weights are simply not stored.
        pass
    plan = _plan_placement(graph, config)
    lp_capacity = config.large_page_capacity()
    degrees = graph.out_degrees()

    pages = []
    directory = []
    start_vids = np.zeros(plan.num_pages, dtype=np.int64)
    lp_ranges = np.full(plan.num_pages, -1, dtype=np.int64)
    vertex_first_pid = plan.vertex_pid
    weighted = graph.weights is not None and config.weight_bytes > 0

    for pid, entry in enumerate(plan.pages):
        kind = entry[0]
        if kind == "SP":
            _, start_vid, num_records = entry
            lo = graph.indptr[start_vid]
            hi = graph.indptr[start_vid + num_records]
            neighbour_vids = graph.targets[lo:hi]
            adj_pids = plan.vertex_pid[neighbour_vids]
            adj_slots = plan.vertex_slot[neighbour_vids]
            indptr = (graph.indptr[start_vid:start_vid + num_records + 1]
                      - lo)
            weights = graph.weights[lo:hi] if weighted else None
            page = SmallPage(pid, start_vid, indptr, adj_pids, adj_slots,
                             neighbour_vids.copy(), config,
                             adj_weights=weights)
            directory.append(PageDirectoryEntry(
                page_id=pid, kind="SP", start_vid=start_vid,
                num_records=num_records, num_edges=page.num_edges,
                used_bytes=page.used_bytes()))
            start_vids[pid] = start_vid
        else:
            _, vid, chunk = entry
            base = graph.indptr[vid]
            lo = base + chunk * lp_capacity
            hi = min(base + (chunk + 1) * lp_capacity, graph.indptr[vid + 1])
            neighbour_vids = graph.targets[lo:hi]
            adj_pids = plan.vertex_pid[neighbour_vids]
            adj_slots = plan.vertex_slot[neighbour_vids]
            weights = graph.weights[lo:hi] if weighted else None
            page = LargePage(pid, vid, chunk, adj_pids, adj_slots,
                             neighbour_vids.copy(), config,
                             adj_weights=weights,
                             total_degree=int(degrees[vid]))
            directory.append(PageDirectoryEntry(
                page_id=pid, kind="LP", start_vid=vid, num_records=1,
                num_edges=page.num_edges, used_bytes=page.used_bytes()))
            start_vids[pid] = vid
            lp_ranges[pid] = chunk
        pages.append(page)

    rvt = RecordVertexTable(start_vids, lp_ranges)
    return GraphDatabase(
        pages=pages,
        directory=directory,
        rvt=rvt,
        config=config,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        out_degrees=degrees,
        vertex_page=vertex_first_pid.copy(),
        name=name,
    )
