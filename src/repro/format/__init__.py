"""The slotted page format: GTS's on-SSD graph topology representation.

This subpackage implements the external-memory graph format the paper adopts
(Section 2 and Section 6.1): a graph is stored as a set of fixed-size
*slotted pages*.  Low-degree vertices share a *small page* (SP); a
high-degree vertex whose adjacency list does not fit in one page is split
over several *large pages* (LP).  Neighbours are referenced by *physical
record IDs* — a ``(page id, slot number)`` pair — and a small in-memory
mapping table (the RVT, Appendix A) translates record IDs back to logical
vertex IDs during kernel execution.

Public entry points:

* :class:`~repro.format.config.PageFormatConfig` — addressing widths
  ``(p, q)`` and page size, including the three 6-byte configurations of the
  paper's Table 2.
* :func:`~repro.format.builder.build_database` — turn an edge list into a
  :class:`~repro.format.database.GraphDatabase` of slotted pages.
* :class:`~repro.format.database.GraphDatabase` — the built page store with
  its RVT and statistics (``num_small_pages`` / ``num_large_pages`` feed the
  paper's Table 3).
"""

from repro.format.config import PageFormatConfig, SIX_BYTE_CONFIGS
from repro.format.page import SmallPage, LargePage, PageKind
from repro.format.rvt import RecordVertexTable
from repro.format.builder import build_database
from repro.format.database import GraphDatabase

__all__ = [
    "PageFormatConfig",
    "SIX_BYTE_CONFIGS",
    "SmallPage",
    "LargePage",
    "PageKind",
    "RecordVertexTable",
    "build_database",
    "GraphDatabase",
]
