"""Slotted pages: the fixed-size on-storage units GTS streams to GPUs.

Two page kinds exist (Section 2, Figure 1):

* :class:`SmallPage` — many low-degree vertices.  Each vertex occupies one
  slot (``VID``, ``OFF``) at the back of the page and one record
  (``ADJLIST_SZ``, ``ADJLIST``) at the front.
* :class:`LargePage` — one chunk of a single high-degree vertex's adjacency
  list.  A vertex whose list does not fit in one page is split over a run of
  consecutive large pages.

Adjacency entries are *physical record IDs*: ``(ADJ_PID, ADJ_OFF)`` pairs
pointing at the page and slot where the neighbour lives.  Kernels translate
them back to logical vertex IDs through the RVT (Appendix A).

Pages carry their data as NumPy arrays for kernel execution, and can be
serialized to / parsed from the exact byte layout (records growing forward,
slots growing backward) so that storage accounting and round-trip tests
operate on the real format.
"""

import enum
import struct
import sys

import numpy as np

from repro.errors import FormatError


class PageKind(enum.Enum):
    """Discriminates small pages from large pages."""

    SMALL = "SP"
    LARGE = "LP"


def sorted_scatter_index(adj_vids):
    """Sorted-scatter index over a page's target VIDs.

    Full-scan kernels accumulate per-edge contributions into a WA vector
    indexed by target VID; sorting the targets once lets every round use
    ``np.add.reduceat`` over contiguous segments instead of ``np.add.at``.
    Returns ``(order, unique_targets, segment_starts)`` where ``order``
    is the stable permutation sorting ``adj_vids``, and each segment
    ``[starts[i], starts[i+1])`` of the permuted edges shares the target
    ``unique_targets[i]``.
    """
    adj_vids = np.asarray(adj_vids)
    order = np.argsort(adj_vids, kind="stable")
    if len(order):
        sorted_targets = adj_vids[order]
        # Segment boundaries: positions where the sorted target changes
        # (computed without np.diff's wrapper overhead — this runs once
        # per page when a plan is built over tens of thousands of pages).
        change = np.empty(len(order), dtype=bool)
        change[0] = True
        np.not_equal(sorted_targets[1:], sorted_targets[:-1],
                     out=change[1:])
        segment_starts = np.nonzero(change)[0]
        unique_targets = sorted_targets[segment_starts]
    else:
        segment_starts = np.zeros(0, dtype=np.int64)
        unique_targets = np.zeros(0, dtype=np.int64)
    return order, unique_targets, segment_starts


def _check_fits(name, value, width_bytes):
    if value < 0 or value >= (1 << (8 * width_bytes)):
        raise FormatError(
            "%s value %d does not fit in %d byte(s)" % (name, value, width_bytes)
        )


def _decode_le(data, offsets, width):
    """Vectorized little-endian integer decode.

    Reads ``width`` bytes starting at every position in ``offsets`` from
    the ``uint8`` array ``data`` and assembles them as unsigned
    little-endian integers — exactly what ``int.from_bytes`` computes in
    the per-byte reference parsers, for any of the format's odd field
    widths (the widest field, a 6-byte VID, fits int64 comfortably).
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    if not len(offsets):
        return np.empty(0, dtype=np.int64)
    columns = offsets[:, None] + np.arange(width, dtype=np.int64)
    weights = np.int64(256) ** np.arange(width, dtype=np.int64)
    return data[columns].astype(np.int64) @ weights


def _decode_f32(data, offsets):
    """Vectorized ``struct.unpack('<f', ...)`` over ``uint8`` data."""
    offsets = np.asarray(offsets, dtype=np.int64)
    if not len(offsets):
        return np.empty(0, dtype=np.float32)
    rows = data[offsets[:, None] + np.arange(4, dtype=np.int64)]
    raw = np.ascontiguousarray(rows).view(np.uint32).ravel()
    if sys.byteorder != "little":  # pragma: no cover - x86/arm are LE
        raw = raw.byteswap()
    return raw.view(np.float32)


def _as_page_u8(data, page_size):
    """``data`` (bytes or a uint8 view over a mapping) as a uint8 array."""
    if isinstance(data, np.ndarray):
        u8 = data
    else:
        u8 = np.frombuffer(data, dtype=np.uint8)
    if len(u8) != page_size:
        raise FormatError("serialized page has wrong size")
    return u8


class SmallPage:
    """A slotted page holding several low-degree vertices.

    Parameters
    ----------
    page_id:
        This page's ID in the database's page numbering.
    start_vid:
        Logical ID of the first vertex stored here.  Vertex IDs are
        consecutive within a page (Section 2), so slot ``i`` holds vertex
        ``start_vid + i``.
    adj_indptr:
        ``int64`` array of length ``num_records + 1``; record ``i``'s
        adjacency entries occupy ``adj_pids[indptr[i]:indptr[i+1]]``.
    adj_pids / adj_slots:
        Physical IDs of neighbours (page ID and slot number halves).
    adj_vids:
        Pre-translated logical neighbour IDs.  Semantically this is derived
        data — kernels conceptually compute it through the RVT — but it is
        materialised once at build time so NumPy kernels stay vectorised.
    adj_weights:
        Optional ``float32`` edge weights aligned with the adjacency arrays.
    config:
        The :class:`~repro.format.config.PageFormatConfig` this page obeys.
    """

    kind = PageKind.SMALL

    def __init__(self, page_id, start_vid, adj_indptr, adj_pids, adj_slots,
                 adj_vids, config, adj_weights=None):
        self.page_id = page_id
        self.start_vid = start_vid
        self.adj_indptr = np.asarray(adj_indptr, dtype=np.int64)
        self.adj_pids = np.asarray(adj_pids, dtype=np.int64)
        self.adj_slots = np.asarray(adj_slots, dtype=np.int64)
        self.adj_vids = np.asarray(adj_vids, dtype=np.int64)
        self.adj_weights = (
            None if adj_weights is None else np.asarray(adj_weights, dtype=np.float32)
        )
        self.config = config
        if len(self.adj_pids) != self.adj_indptr[-1]:
            raise FormatError("adjacency arrays inconsistent with indptr")

    # ------------------------------------------------------------------
    @property
    def num_records(self):
        """Number of vertices (slots / records) stored in this page."""
        return len(self.adj_indptr) - 1

    @property
    def num_edges(self):
        """Total adjacency entries stored in this page."""
        return int(self.adj_indptr[-1])

    def vids(self):
        """Logical vertex IDs stored here, in slot order."""
        return np.arange(self.start_vid, self.start_vid + self.num_records,
                         dtype=np.int64)

    def degrees(self):
        """Per-record adjacency list sizes (``ADJLIST_SZ`` values)."""
        return np.diff(self.adj_indptr)

    def used_bytes(self):
        """Bytes of page space consumed by records plus slots."""
        cfg = self.config
        records = (
            self.num_records * cfg.adjlist_size_bytes
            + self.num_edges * cfg.adjacency_entry_bytes
        )
        slots = self.num_records * cfg.slot_entry_bytes
        return records + slots

    # ------------------------------------------------------------------
    # Byte serialization (records forward, slots backward)
    # ------------------------------------------------------------------
    def to_bytes(self):
        """Serialize to the on-storage layout, padded to ``page_size``.

        Raises :class:`FormatError` if the contents overflow the page or any
        field exceeds its configured width.
        """
        cfg = self.config
        if self.used_bytes() > cfg.page_size:
            raise FormatError(
                "page %d contents (%d B) overflow page size %d B"
                % (self.page_id, self.used_bytes(), cfg.page_size)
            )
        buf = bytearray(cfg.page_size)
        degrees = self.degrees()
        # Records grow forward from offset 0.
        cursor = 0
        offsets = []
        for i in range(self.num_records):
            offsets.append(cursor)
            degree = int(degrees[i])
            _check_fits("ADJLIST_SZ", degree, cfg.adjlist_size_bytes)
            buf[cursor:cursor + cfg.adjlist_size_bytes] = degree.to_bytes(
                cfg.adjlist_size_bytes, "little")
            cursor += cfg.adjlist_size_bytes
            lo, hi = int(self.adj_indptr[i]), int(self.adj_indptr[i + 1])
            for j in range(lo, hi):
                pid = int(self.adj_pids[j])
                slot = int(self.adj_slots[j])
                _check_fits("ADJ_PID", pid, cfg.page_id_bytes)
                _check_fits("ADJ_OFF", slot, cfg.slot_bytes)
                buf[cursor:cursor + cfg.page_id_bytes] = pid.to_bytes(
                    cfg.page_id_bytes, "little")
                cursor += cfg.page_id_bytes
                buf[cursor:cursor + cfg.slot_bytes] = slot.to_bytes(
                    cfg.slot_bytes, "little")
                cursor += cfg.slot_bytes
                if cfg.weight_bytes:
                    weight = 0.0 if self.adj_weights is None else float(
                        self.adj_weights[j])
                    buf[cursor:cursor + 4] = struct.pack("<f", weight)
                    cursor += cfg.weight_bytes
        # Slots grow backward from the end of the page.
        back = cfg.page_size
        for i in range(self.num_records):
            vid = self.start_vid + i
            _check_fits("VID", vid, cfg.vid_bytes)
            back -= cfg.slot_entry_bytes
            buf[back:back + cfg.vid_bytes] = int(vid).to_bytes(
                cfg.vid_bytes, "little")
            buf[back + cfg.vid_bytes:back + cfg.slot_entry_bytes] = int(
                offsets[i]).to_bytes(cfg.offset_bytes, "little")
        return bytes(buf)

    @classmethod
    def from_bytes(cls, data, page_id, num_records, config):
        """Parse a serialized small page back into arrays.

        ``num_records`` comes from page metadata (the database knows how
        many slots each page holds); the byte layout itself is headerless,
        matching the original format.
        """
        cfg = config
        if len(data) != cfg.page_size:
            raise FormatError("serialized page has wrong size")
        # Read slots from the back.
        back = cfg.page_size
        vids = []
        offsets = []
        for _ in range(num_records):
            back -= cfg.slot_entry_bytes
            vid = int.from_bytes(data[back:back + cfg.vid_bytes], "little")
            off = int.from_bytes(
                data[back + cfg.vid_bytes:back + cfg.slot_entry_bytes], "little")
            vids.append(vid)
            offsets.append(off)
        if vids and vids != list(range(vids[0], vids[0] + num_records)):
            raise FormatError("slot VIDs are not consecutive")
        start_vid = vids[0] if vids else 0
        indptr = [0]
        pids = []
        slots = []
        weights = [] if cfg.weight_bytes else None
        for off in offsets:
            cursor = off
            degree = int.from_bytes(
                data[cursor:cursor + cfg.adjlist_size_bytes], "little")
            cursor += cfg.adjlist_size_bytes
            for _ in range(degree):
                pid = int.from_bytes(
                    data[cursor:cursor + cfg.page_id_bytes], "little")
                cursor += cfg.page_id_bytes
                slot = int.from_bytes(
                    data[cursor:cursor + cfg.slot_bytes], "little")
                cursor += cfg.slot_bytes
                pids.append(pid)
                slots.append(slot)
                if cfg.weight_bytes:
                    weights.append(struct.unpack("<f", data[cursor:cursor + 4])[0])
                    cursor += cfg.weight_bytes
            indptr.append(len(pids))
        # adj_vids must be re-derived through an RVT by the caller; fill a
        # placeholder so the object is structurally complete.
        placeholder_vids = np.full(len(pids), -1, dtype=np.int64)
        return cls(page_id, start_vid, indptr, pids, slots, placeholder_vids,
                   cfg, adj_weights=weights)

    @classmethod
    def from_buffer(cls, data, page_id, num_records, config):
        """Vectorized :meth:`from_bytes` over a ``uint8`` buffer view.

        Accepts ``bytes`` or a NumPy ``uint8`` view (e.g. a slice of a
        memory-mapped pages file) and decodes without Python-level
        per-edge loops.  Every output array is freshly materialised —
        nothing aliases ``data`` — so callers may hand in short-lived
        views over a mapping that can later be closed.
        """
        cfg = config
        u8 = _as_page_u8(data, cfg.page_size)
        # Slots from the back: slot i lives at page_size-(i+1)*entry.
        slot_pos = (
            cfg.page_size
            - (np.arange(num_records, dtype=np.int64) + 1) * cfg.slot_entry_bytes
        )
        vids = _decode_le(u8, slot_pos, cfg.vid_bytes)
        offsets = _decode_le(u8, slot_pos + cfg.vid_bytes, cfg.offset_bytes)
        if num_records and not np.array_equal(
                vids, vids[0] + np.arange(num_records, dtype=np.int64)):
            raise FormatError("slot VIDs are not consecutive")
        start_vid = int(vids[0]) if num_records else 0
        if num_records and int(offsets.max()) + cfg.adjlist_size_bytes > cfg.page_size:
            raise FormatError("record offset overruns page")
        degrees = _decode_le(u8, offsets, cfg.adjlist_size_bytes)
        indptr = np.zeros(num_records + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        num_edges = int(indptr[-1])
        entry = cfg.adjacency_entry_bytes
        if num_edges:
            rec_of_edge = np.repeat(
                np.arange(num_records, dtype=np.int64), degrees)
            within = np.arange(num_edges, dtype=np.int64) - indptr[rec_of_edge]
            base = offsets[rec_of_edge] + cfg.adjlist_size_bytes + within * entry
            if int(base.max()) + entry > cfg.page_size:
                raise FormatError("adjacency record overruns page")
            pids = _decode_le(u8, base, cfg.page_id_bytes)
            slots = _decode_le(u8, base + cfg.page_id_bytes, cfg.slot_bytes)
            weights = (
                _decode_f32(u8, base + cfg.page_id_bytes + cfg.slot_bytes)
                if cfg.weight_bytes else None
            )
        else:
            pids = np.empty(0, dtype=np.int64)
            slots = np.empty(0, dtype=np.int64)
            weights = np.empty(0, dtype=np.float32) if cfg.weight_bytes else None
        placeholder_vids = np.full(num_edges, -1, dtype=np.int64)
        return cls(page_id, start_vid, indptr, pids, slots, placeholder_vids,
                   cfg, adj_weights=weights)


class LargePage:
    """One chunk of a single high-degree vertex's adjacency list.

    Attributes mirror :class:`SmallPage` where they overlap; the differences
    are that exactly one vertex is represented, ``ADJLIST_SZ`` counts only
    the entries stored *in this page*, and ``chunk_index`` records this
    page's position in the vertex's run of large pages.
    """

    kind = PageKind.LARGE

    def __init__(self, page_id, vid, chunk_index, adj_pids, adj_slots,
                 adj_vids, config, adj_weights=None, total_degree=None):
        self.page_id = page_id
        self.vid = vid
        self.chunk_index = chunk_index
        self.adj_pids = np.asarray(adj_pids, dtype=np.int64)
        self.adj_slots = np.asarray(adj_slots, dtype=np.int64)
        self.adj_vids = np.asarray(adj_vids, dtype=np.int64)
        self.adj_weights = (
            None if adj_weights is None else np.asarray(adj_weights, dtype=np.float32)
        )
        self.config = config
        #: The vertex's degree across *all* of its large pages; the PageRank
        #: LP kernel divides by this (Appendix B.2 uses ``v.ADJLIST_SZ`` of
        #: the whole vertex).
        self.total_degree = (
            total_degree if total_degree is not None else len(self.adj_pids)
        )

    @property
    def start_vid(self):
        """The single vertex stored here (mirrors ``SmallPage.start_vid``)."""
        return self.vid

    @property
    def num_records(self):
        return 1

    @property
    def num_edges(self):
        return len(self.adj_pids)

    def vids(self):
        """The single vertex as a one-element array (SP-compatible)."""
        return np.asarray([self.vid], dtype=np.int64)

    def degrees(self):
        return np.asarray([self.num_edges], dtype=np.int64)

    def used_bytes(self):
        cfg = self.config
        return (
            cfg.slot_entry_bytes
            + cfg.adjlist_size_bytes
            + self.num_edges * cfg.adjacency_entry_bytes
        )

    def to_bytes(self):
        """Serialize with the same record/slot layout as a small page."""
        cfg = self.config
        if self.used_bytes() > cfg.page_size:
            raise FormatError(
                "large page %d overflows page size" % self.page_id)
        buf = bytearray(cfg.page_size)
        cursor = 0
        _check_fits("ADJLIST_SZ", self.num_edges, cfg.adjlist_size_bytes)
        buf[cursor:cursor + cfg.adjlist_size_bytes] = self.num_edges.to_bytes(
            cfg.adjlist_size_bytes, "little")
        cursor += cfg.adjlist_size_bytes
        for j in range(self.num_edges):
            pid = int(self.adj_pids[j])
            slot = int(self.adj_slots[j])
            _check_fits("ADJ_PID", pid, cfg.page_id_bytes)
            _check_fits("ADJ_OFF", slot, cfg.slot_bytes)
            buf[cursor:cursor + cfg.page_id_bytes] = pid.to_bytes(
                cfg.page_id_bytes, "little")
            cursor += cfg.page_id_bytes
            buf[cursor:cursor + cfg.slot_bytes] = slot.to_bytes(
                cfg.slot_bytes, "little")
            cursor += cfg.slot_bytes
            if cfg.weight_bytes:
                weight = 0.0 if self.adj_weights is None else float(
                    self.adj_weights[j])
                buf[cursor:cursor + 4] = struct.pack("<f", weight)
                cursor += cfg.weight_bytes
        back = cfg.page_size - cfg.slot_entry_bytes
        _check_fits("VID", self.vid, cfg.vid_bytes)
        buf[back:back + cfg.vid_bytes] = int(self.vid).to_bytes(
            cfg.vid_bytes, "little")
        buf[back + cfg.vid_bytes:back + cfg.slot_entry_bytes] = (0).to_bytes(
            cfg.offset_bytes, "little")
        return bytes(buf)

    @classmethod
    def from_bytes(cls, data, page_id, chunk_index, config, total_degree=None):
        """Parse a serialized large page back into arrays."""
        cfg = config
        if len(data) != cfg.page_size:
            raise FormatError("serialized page has wrong size")
        back = cfg.page_size - cfg.slot_entry_bytes
        vid = int.from_bytes(data[back:back + cfg.vid_bytes], "little")
        cursor = 0
        degree = int.from_bytes(
            data[cursor:cursor + cfg.adjlist_size_bytes], "little")
        cursor += cfg.adjlist_size_bytes
        pids = []
        slots = []
        weights = [] if cfg.weight_bytes else None
        for _ in range(degree):
            pids.append(int.from_bytes(
                data[cursor:cursor + cfg.page_id_bytes], "little"))
            cursor += cfg.page_id_bytes
            slots.append(int.from_bytes(
                data[cursor:cursor + cfg.slot_bytes], "little"))
            cursor += cfg.slot_bytes
            if cfg.weight_bytes:
                weights.append(struct.unpack("<f", data[cursor:cursor + 4])[0])
                cursor += cfg.weight_bytes
        placeholder_vids = np.full(len(pids), -1, dtype=np.int64)
        return cls(page_id, vid, chunk_index, pids, slots, placeholder_vids,
                   cfg, adj_weights=weights, total_degree=total_degree)

    @classmethod
    def from_buffer(cls, data, page_id, chunk_index, config, total_degree=None):
        """Vectorized :meth:`from_bytes` over a ``uint8`` buffer view."""
        cfg = config
        u8 = _as_page_u8(data, cfg.page_size)
        back = cfg.page_size - cfg.slot_entry_bytes
        vid = int(_decode_le(u8, np.asarray([back]), cfg.vid_bytes)[0])
        degree = int(_decode_le(u8, np.asarray([0]), cfg.adjlist_size_bytes)[0])
        entry = cfg.adjacency_entry_bytes
        if cfg.adjlist_size_bytes + degree * entry > cfg.page_size:
            raise FormatError("adjacency record overruns page")
        base = (cfg.adjlist_size_bytes
                + np.arange(degree, dtype=np.int64) * entry)
        pids = _decode_le(u8, base, cfg.page_id_bytes)
        slots = _decode_le(u8, base + cfg.page_id_bytes, cfg.slot_bytes)
        if cfg.weight_bytes:
            weights = _decode_f32(u8, base + cfg.page_id_bytes + cfg.slot_bytes)
        else:
            weights = None
        placeholder_vids = np.full(degree, -1, dtype=np.int64)
        return cls(page_id, vid, chunk_index, pids, slots, placeholder_vids,
                   cfg, adj_weights=weights, total_degree=total_degree)
