"""The RID-to-VID mapping table (RVT) of Appendix A.

Adjacency lists store *physical* record IDs; graph algorithms need *logical*
vertex IDs.  The RVT holds one tuple per page — ``(START_VID, LP_RANGE)`` —
and translates a physical ID ``(ADJ_PID, ADJ_OFF)`` to a logical ID by
computing ``RVT[ADJ_PID].START_VID + ADJ_OFF`` (Figure 12).

For a small page, ``START_VID`` is the VID of slot 0 and ``LP_RANGE`` is -1.
For large pages, ``START_VID`` is the (single) vertex's VID and ``LP_RANGE``
is the page's position within that vertex's run of large pages, so the run
can be enumerated.
"""

import numpy as np

from repro.errors import FormatError


class RecordVertexTable:
    """Vectorised RVT: per-page ``START_VID`` and ``LP_RANGE`` columns."""

    def __init__(self, start_vids, lp_ranges):
        self.start_vids = np.asarray(start_vids, dtype=np.int64)
        self.lp_ranges = np.asarray(lp_ranges, dtype=np.int64)
        if self.start_vids.shape != self.lp_ranges.shape:
            raise FormatError("RVT columns must have equal length")

    def __len__(self):
        return len(self.start_vids)

    def translate(self, adj_pids, adj_slots):
        """Translate physical IDs to logical VIDs.

        Accepts scalars or arrays; returns the same shape.  This is the
        ``RVT[ADJ_PID].START_VID + ADJ_OFF`` computation of Appendix A.
        """
        pids = np.asarray(adj_pids, dtype=np.int64)
        if np.any(pids < 0) or np.any(pids >= len(self.start_vids)):
            raise FormatError("physical ID references unknown page")
        return self.start_vids[pids] + np.asarray(adj_slots, dtype=np.int64)

    def is_large(self, page_id):
        """True when ``page_id`` is a large page (``LP_RANGE`` >= 0)."""
        return bool(self.lp_ranges[page_id] >= 0)

    def memory_bytes(self, start_vid_bytes=6, lp_range_bytes=4):
        """Main-memory footprint of the table at the paper's field widths."""
        return len(self) * (start_vid_bytes + lp_range_bytes)
