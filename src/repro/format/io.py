"""Persist slotted-page databases to disk and load them back.

GTS stores its slotted pages on SSDs; this module gives the reproduction
the same durable artefact: :func:`save_database` writes every page in its
exact byte layout into one pages file plus a JSON metadata sidecar, and
:func:`load_database` reconstructs a fully usable
:class:`~repro.format.database.GraphDatabase` (pages are parsed from
their serialized bytes and re-linked through the RVT, exercising the real
decode path end to end).

For graphs whose decoded pages should not all live in Python memory at
once, :class:`FileBackedDatabase` opens the same files *lazily*: pages
are parsed on demand and kept in a bounded LRU pool, so the engine's
page requests hit the real storage file exactly the way GTS's MMBuf
misses hit the SSD.

Layout on disk::

    <prefix>.meta.json   format config, directory, RVT, degrees
    <prefix>.pages       page 0 bytes, page 1 bytes, ... (fixed stride)
    <prefix>.wal         dynamic-update write-ahead log (optional; only
                         present once :mod:`repro.dynamic` has mutated
                         the database).  Layout: 8-byte magic
                         ``GTSWAL02`` plus an 8-byte LE *epoch*, then
                         length/CRC32-framed JSON update batches — see
                         :mod:`repro.dynamic.wal`.  Folded into
                         ``.meta.json``/``.pages`` (and emptied) by
                         compaction, which bumps the epoch recorded in
                         both files; a log whose epoch is behind its
                         base is stale (crash mid-compaction) and is
                         discarded on open, never replayed.

Both base files are written to temporaries and moved into place with
``os.replace``, so a crash mid-save leaves the previous pair intact
rather than a torn half-write.
"""

import json
import mmap
import os
import warnings
import zlib
from collections import OrderedDict

import numpy as np

from repro.concurrency import InstrumentedLock
from repro.errors import ConfigurationError, FormatError, IntegrityError
from repro.format.config import PageFormatConfig
from repro.format.database import GraphDatabase, PageDirectoryEntry
from repro.format.page import LargePage, SmallPage
from repro.format.rvt import RecordVertexTable

#: Bumped whenever the on-disk layout changes.
FORMAT_VERSION = 1


def _fsync_directory(path):
    """fsync the directory holding ``path``, making renames durable.

    ``os.replace`` is atomic but not durable: the new directory entry
    can still be lost on power failure until the directory itself is
    synced.  Best-effort — platforms that cannot open a directory for
    reading (e.g. Windows) simply skip it.
    """
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def save_database(db, prefix, wal_epoch=None):
    """Write ``db`` under ``<prefix>.meta.json`` / ``<prefix>.pages``.

    Returns the pair of paths written.  The write is atomic per file:
    content goes to ``<path>.tmp`` first and is renamed into place with
    ``os.replace``, pages before metadata — a crash can leave a stale
    temp file behind but never a corrupt or mismatched pair (the
    metadata always describes a fully written pages file).  After both
    renames the parent directory is fsynced, so a crash immediately
    after a successful save cannot roll the pair back to the old
    version (the WAL epoch protocol depends on a saved base staying
    saved).

    Every page's CRC32 is recorded in the metadata
    (``page_checksums``), which readers verify on every page load —
    bit-rot or a torn write surfaces as a typed
    :class:`~repro.errors.IntegrityError` naming the page instead of a
    silently wrong topology.

    ``wal_epoch`` pairs the base with its ``<prefix>.wal`` (see the
    layout note above); ``None`` carries over ``db.wal_epoch`` when the
    database has one, else 0.  Compaction passes the bumped epoch here.
    """
    meta_path = prefix + ".meta.json"
    pages_path = prefix + ".pages"
    config = db.config
    if wal_epoch is None:
        wal_epoch = getattr(db, "wal_epoch", 0)
    metadata = {
        "version": FORMAT_VERSION,
        "wal_epoch": wal_epoch,
        "name": db.name,
        "num_vertices": db.num_vertices,
        "num_edges": db.num_edges,
        "config": {
            "page_id_bytes": config.page_id_bytes,
            "slot_bytes": config.slot_bytes,
            "page_size": config.page_size,
            "vid_bytes": config.vid_bytes,
            "offset_bytes": config.offset_bytes,
            "adjlist_size_bytes": config.adjlist_size_bytes,
            "weight_bytes": config.weight_bytes,
        },
        "directory": [
            {
                "page_id": entry.page_id,
                "kind": entry.kind,
                "start_vid": entry.start_vid,
                "num_records": entry.num_records,
                "num_edges": entry.num_edges,
                "used_bytes": entry.used_bytes,
            }
            for entry in db.directory
        ],
        "rvt": {
            "start_vids": db.rvt.start_vids.tolist(),
            "lp_ranges": db.rvt.lp_ranges.tolist(),
        },
        "out_degrees": db.out_degrees.tolist(),
        "vertex_page": db.vertex_page.tolist(),
        "lp_total_degrees": {
            str(page.page_id): page.total_degree
            for page in db.pages if page.kind.value == "LP"
        },
        # Physical layout contract for the pages file.  Readers validate
        # this before memory-mapping: a stride or endianness mismatch
        # must surface as a typed IntegrityError, never a garbled parse
        # of a file whose geometry the loader guessed wrong.
        "pages_layout": {
            "stride": config.page_size,
            "count": len(db.pages),
            "checksum": "crc32",
            "endianness": "little",
        },
    }
    checksums = []
    with open(pages_path + ".tmp", "wb") as handle:
        for page in db.pages:
            data = page.to_bytes()
            checksums.append(zlib.crc32(data))
            handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    # Index i is the checksum of page i (page IDs are dense, so the
    # directory index and the page ID coincide).
    metadata["page_checksums"] = checksums
    with open(meta_path + ".tmp", "w") as handle:
        json.dump(metadata, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(pages_path + ".tmp", pages_path)
    os.replace(meta_path + ".tmp", meta_path)
    _fsync_directory(meta_path)
    return meta_path, pages_path


def _checksums_from_metadata(metadata, source):
    """The ``page_checksums`` list, or ``None`` (with a warning) for
    databases saved before checksums existed."""
    checksums = metadata.get("page_checksums")
    if checksums is None:
        warnings.warn(
            "%s predates page checksums; integrity verification is "
            "disabled for this database (re-save it to add checksums)"
            % source, stacklevel=3)
        return None
    return checksums


def _validate_pages_layout(metadata, config, num_pages, source):
    """Check the ``pages_layout`` stanza against the loader's geometry.

    Databases saved before the stanza existed pass (legacy layout is the
    current layout); a *present but wrong* stanza raises a typed
    :class:`IntegrityError` so the mismatch is caught before any byte of
    the pages file is interpreted — mapping a file at the wrong stride
    would otherwise decode as plausible-looking garbage.
    """
    layout = metadata.get("pages_layout")
    if layout is None:
        return
    expected = {
        "stride": config.page_size,
        "count": num_pages,
        "checksum": "crc32",
        "endianness": "little",
    }
    for key, want in expected.items():
        got = layout.get(key)
        if got != want:
            raise IntegrityError(
                "%s: pages_layout %s mismatch (metadata says %r, loader "
                "expects %r); refusing to interpret the pages file"
                % (source, key, got, want))


def _verify_page_bytes(data, page_id, expected_crc, source):
    """Raise :class:`IntegrityError` unless ``data`` matches its CRC."""
    actual = zlib.crc32(data)
    if actual != expected_crc:
        raise IntegrityError(
            "page %d in %s failed checksum verification "
            "(expected CRC32 0x%08x, got 0x%08x)"
            % (page_id, source, expected_crc, actual),
            page_id=page_id, expected_crc=expected_crc,
            actual_crc=actual)


def load_database(prefix, host_profiler=None):
    """Load a database previously written by :func:`save_database`.

    ``host_profiler`` is an optional
    :class:`~repro.obs.host.HostProfiler`; when given, the metadata
    parse and the page deserialization loop report as nested
    ``load/...`` phases (``None``, the default, records nothing).
    """
    hp = host_profiler
    meta_path = prefix + ".meta.json"
    pages_path = prefix + ".pages"
    if hp is not None:
        hp.push("load")
        hp.push("load_meta")
    with open(meta_path) as handle:
        metadata = json.load(handle)
    if hp is not None:
        hp.pop()
    if metadata.get("version") != FORMAT_VERSION:
        raise FormatError(
            "%s: unsupported database version %r"
            % (meta_path, metadata.get("version")))
    config = PageFormatConfig(**metadata["config"])
    rvt = RecordVertexTable(metadata["rvt"]["start_vids"],
                            metadata["rvt"]["lp_ranges"])
    lp_total_degrees = {int(k): v for k, v
                        in metadata["lp_total_degrees"].items()}
    checksums = _checksums_from_metadata(metadata, meta_path)
    _validate_pages_layout(metadata, config, len(metadata["directory"]),
                           meta_path)

    directory = []
    pages = []
    expected = len(metadata["directory"]) * config.page_size
    actual = os.path.getsize(pages_path)
    if actual != expected:
        raise FormatError(
            "%s: expected %d bytes of pages, found %d"
            % (pages_path, expected, actual))
    if hp is not None:
        hp.push("load_pages")
    with open(pages_path, "rb") as handle:
        for record in metadata["directory"]:
            entry = PageDirectoryEntry(**record)
            directory.append(entry)
            data = handle.read(config.page_size)
            if checksums is not None:
                _verify_page_bytes(data, entry.page_id,
                                   checksums[entry.page_id], pages_path)
            if entry.kind == "SP":
                page = SmallPage.from_bytes(
                    data, entry.page_id, entry.num_records, config)
            else:
                chunk_index = int(rvt.lp_ranges[entry.page_id])
                page = LargePage.from_bytes(
                    data, entry.page_id, chunk_index, config,
                    total_degree=lp_total_degrees.get(entry.page_id))
            # Re-derive the logical neighbour IDs through the RVT (the
            # serialized form stores only physical IDs).
            page.adj_vids = rvt.translate(page.adj_pids, page.adj_slots)
            pages.append(page)
    if hp is not None:
        hp.pop()  # load_pages

    db = GraphDatabase(
        pages=pages,
        directory=directory,
        rvt=rvt,
        config=config,
        num_vertices=metadata["num_vertices"],
        num_edges=metadata["num_edges"],
        out_degrees=np.asarray(metadata["out_degrees"], dtype=np.int64),
        vertex_page=np.asarray(metadata["vertex_page"], dtype=np.int64),
        name=metadata["name"],
    )
    db.wal_epoch = metadata.get("wal_epoch", 0)
    if hp is not None:
        hp.push("load_validate")
        db.validate()
        hp.pop()
        hp.pop()  # load
    else:
        db.validate()
    return db


def _read_metadata(prefix):
    meta_path = prefix + ".meta.json"
    with open(meta_path) as handle:
        metadata = json.load(handle)
    if metadata.get("version") != FORMAT_VERSION:
        raise FormatError(
            "%s: unsupported database version %r"
            % (meta_path, metadata.get("version")))
    return metadata


class FileBackedDatabase(GraphDatabase):
    """A GraphDatabase whose pages load lazily from the pages file.

    Metadata (directory, RVT, degrees) is resident; page payloads are
    parsed from disk on first use and cached in an LRU pool of
    ``pool_pages`` entries.  Everything the engine needs —
    :meth:`page`, :meth:`page_for_vertex`, the ID lists, the statistics
    — behaves identically to the eager database, so GTS runs unchanged
    on top of it; only this process's memory footprint differs.

    Thread safety: the pool (probe, LRU refresh, eviction, insert) and
    the host-I/O counters are guarded by instrumented locks so the
    service layer can run many queries against one handle.  Page parses
    happen *outside* the pool lock — two threads missing on the same
    page at worst parse it twice, and the second inserter adopts the
    first's resident instance.  When a
    :class:`~repro.core.cache.SharedPageCache` is attached
    (``self.shared_cache``), pool misses consult it before touching the
    pages file and populate it after a checksum-verified parse, so warm
    queries skip the disk read and the byte-level decode entirely.

    Store modes (``mode=``):

    * ``"copy"`` (default) — every pool/shared miss issues one
      ``os.pread`` on a persistent descriptor, verifies the bytes, and
      decodes them with the reference per-byte parsers.
    * ``"mmap"`` — the pages file is memory-mapped read-only once at
      open; misses decode straight from a NumPy view over the mapping
      with the vectorized ``from_buffer`` parsers.  Each page-sized
      region is checksum-verified exactly once, on first touch (the
      ``_verified`` bitmap), and that first touch books the host-I/O
      counters — later touches are zero-copy ``mmap_hits``.  Decoded
      pages materialise fresh arrays (nothing aliases the mapping), so
      the shared cache never holds mmap views and cached pages outlive
      :meth:`close`.  The copy path remains the fallback whenever the
      mapping cannot be trusted: a fault injector is attached (injected
      corruption needs mutable bytes), or a mapped region fails its
      checksum (verified re-read recovers transient damage; persistent
      damage raises :class:`IntegrityError`, never a poisoned view).
    """

    def __init__(self, prefix, pool_pages=256, mode="copy"):
        if mode not in ("copy", "mmap"):
            raise ConfigurationError(
                "unknown store mode %r (expected 'copy' or 'mmap')" % (mode,))
        metadata = _read_metadata(prefix)
        config = PageFormatConfig(**metadata["config"])
        rvt = RecordVertexTable(metadata["rvt"]["start_vids"],
                                metadata["rvt"]["lp_ranges"])
        directory = [PageDirectoryEntry(**record)
                     for record in metadata["directory"]]
        super().__init__(
            pages=[None] * len(directory),
            directory=directory,
            rvt=rvt,
            config=config,
            num_vertices=metadata["num_vertices"],
            num_edges=metadata["num_edges"],
            out_degrees=np.asarray(metadata["out_degrees"],
                                   dtype=np.int64),
            vertex_page=np.asarray(metadata["vertex_page"],
                                   dtype=np.int64),
            name=metadata["name"],
        )
        self.wal_epoch = metadata.get("wal_epoch", 0)
        self._pages_path = prefix + ".pages"
        expected = len(directory) * config.page_size
        actual = os.path.getsize(self._pages_path)
        if actual != expected:
            raise FormatError(
                "%s: expected %d bytes of pages, found %d"
                % (self._pages_path, expected, actual))
        self._lp_total_degrees = {
            int(k): v for k, v in metadata["lp_total_degrees"].items()}
        self._page_checksums = _checksums_from_metadata(
            metadata, prefix + ".meta.json")
        _validate_pages_layout(metadata, config, len(directory),
                               prefix + ".meta.json")
        if pool_pages < 1:
            raise FormatError("page pool needs at least one slot")
        self._pool_pages = pool_pages
        #: Public pool capacity, used by plan builders to size prefetch
        #: chunks so a warm-ahead never evicts its own pages.
        self.pool_capacity = pool_pages
        self._pool = OrderedDict()
        self.pool_hits = 0
        self.pool_misses = 0
        #: Guards the pool's probe/refresh/evict/insert and its hit
        #: counters; parses run outside it (see the class docstring).
        self._pool_lock = InstrumentedLock()
        #: Guards the real-I/O counters below; the reads themselves use
        #: a per-call file handle and need no serialisation.
        self._io_lock = InstrumentedLock()
        #: Optional :class:`~repro.faults.FaultInjector`; when attached,
        #: host page reads consult its ``host_corrupt_reads`` budget.
        self.fault_injector = None
        #: Host reads that failed verification and were re-read clean.
        self.integrity_retries = 0
        #: Real-I/O accounting (always on — three integer updates per
        #: actual file read): bytes read, reads issued, and reads whose
        #: page immediately follows the previous one (adjacent-read
        #: opportunities — the sequential-access baseline for a future
        #: mmap/readahead store).
        self.host_bytes_read = 0
        self.host_reads = 0
        self.host_adjacent_reads = 0
        self._last_read_pid = -2
        #: Store mode and the zero-copy machinery.  ``mmap_hits`` counts
        #: parses served zero-copy from an already-verified mapped
        #: region; ``mmap_misses`` counts parses that paid first-touch
        #: verification or fell back to the copy path.
        self.store_mode = mode
        self.mmap_hits = 0
        self.mmap_misses = 0
        self._fd = os.open(self._pages_path, os.O_RDONLY)
        self._mmap = None
        self._mmap_view = None
        self._verified = None
        if mode == "mmap" and actual > 0:
            self._mmap = mmap.mmap(self._fd, 0, access=mmap.ACCESS_READ)
            self._mmap_view = np.frombuffer(self._mmap, dtype=np.uint8)
            self._verified = np.zeros(len(directory), dtype=bool)

    # ------------------------------------------------------------------
    def close(self):
        """Release the mapping and the file descriptor (idempotent).

        Pages already decoded (pool, shared cache, plan arrays) hold
        only materialised arrays, so they stay valid after close.
        """
        self._mmap_view = None
        self._verified = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __del__(self):  # best-effort; close() is the real API
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def attach_fault_injector(self, injector):
        """Route this database's host page reads through ``injector``.

        Refuses plans that corrupt host reads when the database has no
        checksums to catch them — silently wrong topology is the one
        outcome the fault model must never produce.
        """
        if (injector.plan.host_corrupt_reads
                and self._page_checksums is None):
            raise ConfigurationError(
                "fault plan corrupts host page reads but this database "
                "predates page checksums; corruption would go "
                "undetected (re-save the database first)")
        self.fault_injector = injector

    def detach_fault_injector(self):
        self.fault_injector = None

    # ------------------------------------------------------------------
    def page(self, page_id):
        if page_id < 0 or page_id >= len(self.directory):
            raise FormatError("unknown page ID %d" % page_id)
        with self._pool_lock:
            page = self._pool.get(page_id)
            if page is not None:
                self._pool.move_to_end(page_id)
                self.pool_hits += 1
                return page
            self.pool_misses += 1
        # Pool miss: consult the cross-query shared cache (if the
        # service attached one) before paying the disk read and the
        # parse.  It stores only checksum-verified decoded pages keyed
        # by topology version, so a warm hit is exactly the object a
        # fresh parse would produce.
        shared = self.shared_cache
        page = shared.get(page_id, self.topology_version) \
            if shared is not None else None
        if page is None:
            # The profiling hook sits on the parse path only; pool and
            # shared-cache hits stay dict probes no matter what.
            hp = self.host_profiler
            if hp is not None:
                hp.push("page_parse")
                page = self._parse_page(page_id)
                hp.pop()
            else:
                page = self._parse_page(page_id)
            if shared is not None:
                # Only verified parses reach this line (_parse_page
                # raises on persistent checksum mismatch), so injected
                # or real corruption can never poison the shared cache.
                # Safe in mmap mode too: from_buffer materialises fresh
                # arrays, so the cached page never aliases the mapping.
                shared.put(page_id, self.topology_version, page)
        with self._pool_lock:
            racer = self._pool.get(page_id)
            if racer is not None:
                # Another thread parsed the same page meanwhile; adopt
                # the resident instance so callers share one object.
                self._pool.move_to_end(page_id)
                return racer
            while len(self._pool) >= self._pool_pages:
                self._pool.popitem(last=False)
            self._pool[page_id] = page
        return page

    def _pool_insert(self, page_id, page):
        """Insert a parsed page into the pool (evicting LRU entries)."""
        with self._pool_lock:
            racer = self._pool.get(page_id)
            if racer is not None:
                self._pool.move_to_end(page_id)
                return racer
            while len(self._pool) >= self._pool_pages:
                self._pool.popitem(last=False)
            self._pool[page_id] = page
        return page

    def prefetch(self, page_ids):
        """Warm the pool with ``page_ids``, merging adjacent disk reads.

        Runs of consecutive page IDs (in request order) that miss both
        the pool and the shared cache are fetched as single ranged
        reads.  In copy mode each run is one ``pread`` booking one
        ``host_reads`` plus ``len(run) - 1`` ``host_adjacent_reads`` —
        the same shape :class:`~repro.hardware.StorageArray` models for
        its simulated adjacent fetches.  In mmap mode each region's
        first-touch verification is booked individually, with the
        adjacency counter tracking the run shape.  Pool hit/miss and
        shared-cache accounting per page matches what per-page
        :meth:`page` calls would record.  Returns the number of pages
        actually read.

        With a fault injector attached the per-page path is used
        unchanged (injection and retry semantics are per-read).
        """
        pending = []
        with self._pool_lock:
            for pid in page_ids:
                pid = int(pid)
                if pid < 0 or pid >= len(self.directory):
                    raise FormatError("unknown page ID %d" % pid)
                if pid in self._pool:
                    self._pool.move_to_end(pid)
                    self.pool_hits += 1
                else:
                    self.pool_misses += 1
                    pending.append(pid)
        if not pending:
            return 0
        seen = set()
        misses = [p for p in pending if not (p in seen or seen.add(p))]
        shared = self.shared_cache
        disk = []
        for pid in misses:
            page = shared.get(pid, self.topology_version) \
                if shared is not None else None
            if page is not None:
                self._pool_insert(pid, page)
            else:
                disk.append(pid)
        if self.fault_injector is not None:
            for pid in disk:
                page = self._parse_page(pid)
                if shared is not None:
                    shared.put(pid, self.topology_version, page)
                self._pool_insert(pid, page)
            return len(disk)
        # Same profiling hook as :meth:`page`: the span covers reads and
        # decodes only, never the pool/shared-cache dict probes above.
        hp = self.host_profiler
        if hp is not None and disk:
            hp.push("page_parse")
        try:
            self._prefetch_disk(disk, shared)
        finally:
            if hp is not None and disk:
                hp.pop()
        return len(disk)

    def _prefetch_disk(self, disk, shared):
        """Read + decode ``disk``'s pages (deduped pool/shared misses),
        coalescing consecutive runs into ranged reads."""
        size = self.config.page_size
        start = 0
        while start < len(disk):
            stop = start + 1
            while stop < len(disk) and disk[stop] == disk[stop - 1] + 1:
                stop += 1
            run = disk[start:stop]
            start = stop
            if self._mmap_view is not None:
                pages = [self._parse_page_mmap(pid) for pid in run]
            else:
                buf = os.pread(self._fd, len(run) * size, run[0] * size)
                with self._io_lock:
                    self.host_bytes_read += len(buf)
                    self.host_reads += 1
                    if run[0] == self._last_read_pid + 1:
                        self.host_adjacent_reads += 1
                    self.host_adjacent_reads += len(run) - 1
                    self._last_read_pid = run[-1]
                pages = []
                for i, pid in enumerate(run):
                    data = buf[i * size:(i + 1) * size]
                    try:
                        pages.append(self._decode_verified(pid, data))
                    except IntegrityError:
                        # Damaged slice of the ranged read: retry it as
                        # a standalone read with the full verify loop.
                        with self._io_lock:
                            self.integrity_retries += 1
                        pages.append(self._parse_page_copy(pid))
            for pid, page in zip(run, pages):
                if shared is not None:
                    shared.put(pid, self.topology_version, page)
                self._pool_insert(pid, page)

    def _decode_verified(self, page_id, data):
        """Verify one page's bytes and decode them (copy path)."""
        if self._page_checksums is not None:
            _verify_page_bytes(data, page_id,
                               self._page_checksums[page_id],
                               self._pages_path)
        entry = self.directory[page_id]
        if entry.kind == "SP":
            page = SmallPage.from_bytes(data, page_id, entry.num_records,
                                        self.config)
        else:
            chunk_index = int(self.rvt.lp_ranges[page_id])
            page = LargePage.from_bytes(
                data, page_id, chunk_index, self.config,
                total_degree=self._lp_total_degrees.get(page_id))
        page.adj_vids = self.rvt.translate(page.adj_pids, page.adj_slots)
        return page

    def pool_lock_stats(self):
        """Pool and I/O-counter lock contention (service stats)."""
        return {"pool": self._pool_lock.stats(),
                "io": self._io_lock.stats()}

    def _read_page_bytes(self, page_id):
        """One raw page read; a fault injector may corrupt the result.

        ``os.pread`` on the persistent descriptor: offset-explicit, so
        concurrent readers (threads or forked worker processes sharing
        the descriptor) never race on a seek position.
        """
        data = os.pread(self._fd, self.config.page_size,
                        page_id * self.config.page_size)
        with self._io_lock:
            self.host_bytes_read += len(data)
            self.host_reads += 1
            if page_id == self._last_read_pid + 1:
                self.host_adjacent_reads += 1
            self._last_read_pid = page_id
        injector = self.fault_injector
        if injector is not None and injector.host_read_corrupt(page_id):
            data = bytes([data[0] ^ 0xFF]) + data[1:]
        return data

    def _parse_page(self, page_id):
        if self._mmap_view is not None and self.fault_injector is None:
            return self._parse_page_mmap(page_id)
        if self._mmap_view is not None:
            # Injected corruption needs mutable bytes; route this parse
            # through the copy path so the fault model stays intact.
            with self._io_lock:
                self.mmap_misses += 1
        return self._parse_page_copy(page_id)

    def _touch_mapped_region(self, page_id):
        """First-touch verify + I/O booking for one mapped page region.

        Returns ``True`` when the region is (now) verified, ``False``
        when its bytes fail the checksum — the caller must fall back to
        a verified copy re-read instead of decoding a damaged view.
        """
        if self._verified[page_id]:
            return True
        size = self.config.page_size
        if self._page_checksums is not None:
            view = self._mmap_view[page_id * size:(page_id + 1) * size]
            if zlib.crc32(view) != self._page_checksums[page_id]:
                return False
        with self._io_lock:
            if not self._verified[page_id]:
                self._verified[page_id] = True
                self.host_bytes_read += size
                self.host_reads += 1
                if page_id == self._last_read_pid + 1:
                    self.host_adjacent_reads += 1
                self._last_read_pid = page_id
        return True

    def _parse_page_mmap(self, page_id):
        entry = self.directory[page_id]
        size = self.config.page_size
        first_touch = not self._verified[page_id]
        if not self._touch_mapped_region(page_id):
            # The mapped bytes are damaged.  A copy re-read goes through
            # the kernel read path and may observe clean bytes (transient
            # page-cache damage); persistent file damage raises the typed
            # IntegrityError from the copy path's verify loop.  Either
            # way no caller ever decodes the poisoned view.
            with self._io_lock:
                self.integrity_retries += 1
                self.mmap_misses += 1
            return self._parse_page_copy(page_id)
        with self._io_lock:
            if first_touch:
                self.mmap_misses += 1
            else:
                self.mmap_hits += 1
        view = self._mmap_view[page_id * size:(page_id + 1) * size]
        if entry.kind == "SP":
            page = SmallPage.from_buffer(view, page_id, entry.num_records,
                                         self.config)
        else:
            chunk_index = int(self.rvt.lp_ranges[page_id])
            page = LargePage.from_buffer(
                view, page_id, chunk_index, self.config,
                total_degree=self._lp_total_degrees.get(page_id))
        page.adj_vids = self.rvt.translate(page.adj_pids, page.adj_slots)
        return page

    def _parse_page_copy(self, page_id):
        entry = self.directory[page_id]
        data = self._read_page_bytes(page_id)
        if self._page_checksums is not None:
            # Transient corruption on the host read path (bit flips in
            # transit, bad cable, cosmic ray in the page cache) is
            # recoverable: the checksum catches it and a re-read gets a
            # clean copy.  Persistent mismatch means the file itself is
            # damaged — surface the typed error.
            injector = self.fault_injector
            attempts = (injector.retry.max_attempts
                        if injector is not None else 2)
            expected = self._page_checksums[page_id]
            for attempt in range(attempts):
                try:
                    _verify_page_bytes(data, page_id, expected,
                                       self._pages_path)
                    break
                except IntegrityError:
                    if attempt + 1 >= attempts:
                        raise
                    with self._io_lock:
                        self.integrity_retries += 1
                    data = self._read_page_bytes(page_id)
        if entry.kind == "SP":
            page = SmallPage.from_bytes(data, page_id, entry.num_records,
                                        self.config)
        else:
            chunk_index = int(self.rvt.lp_ranges[page_id])
            page = LargePage.from_bytes(
                data, page_id, chunk_index, self.config,
                total_degree=self._lp_total_degrees.get(page_id))
        page.adj_vids = self.rvt.translate(page.adj_pids, page.adj_slots)
        return page

    def is_small(self, page_id):
        return self.directory[page_id].kind == "SP"

    def validate(self):
        """Validate through the lazy loader (every page decodes once)."""
        covered = 0
        total_edges = 0
        for entry in self.directory:
            page = self._parse_page(entry.page_id)
            if entry.kind == "SP":
                covered += entry.num_records
            elif page.chunk_index == 0:
                covered += 1
            total_edges += page.num_edges
        if covered != self.num_vertices:
            raise FormatError(
                "pages cover %d vertices, expected %d"
                % (covered, self.num_vertices))
        if total_edges != self.num_edges:
            raise FormatError(
                "pages hold %d edges, expected %d"
                % (total_edges, self.num_edges))
        return True

    def resident_pages(self):
        """Pages currently decoded in the pool."""
        return len(self._pool)
