"""Persist slotted-page databases to disk and load them back.

GTS stores its slotted pages on SSDs; this module gives the reproduction
the same durable artefact: :func:`save_database` writes every page in its
exact byte layout into one pages file plus a JSON metadata sidecar, and
:func:`load_database` reconstructs a fully usable
:class:`~repro.format.database.GraphDatabase` (pages are parsed from
their serialized bytes and re-linked through the RVT, exercising the real
decode path end to end).

For graphs whose decoded pages should not all live in Python memory at
once, :class:`FileBackedDatabase` opens the same files *lazily*: pages
are parsed on demand and kept in a bounded LRU pool, so the engine's
page requests hit the real storage file exactly the way GTS's MMBuf
misses hit the SSD.

Layout on disk::

    <prefix>.meta.json   format config, directory, RVT, degrees
    <prefix>.pages       page 0 bytes, page 1 bytes, ... (fixed stride)
    <prefix>.wal         dynamic-update write-ahead log (optional; only
                         present once :mod:`repro.dynamic` has mutated
                         the database).  Layout: 8-byte magic
                         ``GTSWAL02`` plus an 8-byte LE *epoch*, then
                         length/CRC32-framed JSON update batches — see
                         :mod:`repro.dynamic.wal`.  Folded into
                         ``.meta.json``/``.pages`` (and emptied) by
                         compaction, which bumps the epoch recorded in
                         both files; a log whose epoch is behind its
                         base is stale (crash mid-compaction) and is
                         discarded on open, never replayed.

Both base files are written to temporaries and moved into place with
``os.replace``, so a crash mid-save leaves the previous pair intact
rather than a torn half-write.
"""

import json
import os
from collections import OrderedDict

import numpy as np

from repro.errors import FormatError
from repro.format.config import PageFormatConfig
from repro.format.database import GraphDatabase, PageDirectoryEntry
from repro.format.page import LargePage, SmallPage
from repro.format.rvt import RecordVertexTable

#: Bumped whenever the on-disk layout changes.
FORMAT_VERSION = 1


def save_database(db, prefix, wal_epoch=None):
    """Write ``db`` under ``<prefix>.meta.json`` / ``<prefix>.pages``.

    Returns the pair of paths written.  The write is atomic per file:
    content goes to ``<path>.tmp`` first and is renamed into place with
    ``os.replace``, pages before metadata — a crash can leave a stale
    temp file behind but never a corrupt or mismatched pair (the
    metadata always describes a fully written pages file).

    ``wal_epoch`` pairs the base with its ``<prefix>.wal`` (see the
    layout note above); ``None`` carries over ``db.wal_epoch`` when the
    database has one, else 0.  Compaction passes the bumped epoch here.
    """
    meta_path = prefix + ".meta.json"
    pages_path = prefix + ".pages"
    config = db.config
    if wal_epoch is None:
        wal_epoch = getattr(db, "wal_epoch", 0)
    metadata = {
        "version": FORMAT_VERSION,
        "wal_epoch": wal_epoch,
        "name": db.name,
        "num_vertices": db.num_vertices,
        "num_edges": db.num_edges,
        "config": {
            "page_id_bytes": config.page_id_bytes,
            "slot_bytes": config.slot_bytes,
            "page_size": config.page_size,
            "vid_bytes": config.vid_bytes,
            "offset_bytes": config.offset_bytes,
            "adjlist_size_bytes": config.adjlist_size_bytes,
            "weight_bytes": config.weight_bytes,
        },
        "directory": [
            {
                "page_id": entry.page_id,
                "kind": entry.kind,
                "start_vid": entry.start_vid,
                "num_records": entry.num_records,
                "num_edges": entry.num_edges,
                "used_bytes": entry.used_bytes,
            }
            for entry in db.directory
        ],
        "rvt": {
            "start_vids": db.rvt.start_vids.tolist(),
            "lp_ranges": db.rvt.lp_ranges.tolist(),
        },
        "out_degrees": db.out_degrees.tolist(),
        "vertex_page": db.vertex_page.tolist(),
        "lp_total_degrees": {
            str(page.page_id): page.total_degree
            for page in db.pages if page.kind.value == "LP"
        },
    }
    with open(pages_path + ".tmp", "wb") as handle:
        for page in db.pages:
            handle.write(page.to_bytes())
        handle.flush()
        os.fsync(handle.fileno())
    with open(meta_path + ".tmp", "w") as handle:
        json.dump(metadata, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(pages_path + ".tmp", pages_path)
    os.replace(meta_path + ".tmp", meta_path)
    return meta_path, pages_path


def load_database(prefix):
    """Load a database previously written by :func:`save_database`."""
    meta_path = prefix + ".meta.json"
    pages_path = prefix + ".pages"
    with open(meta_path) as handle:
        metadata = json.load(handle)
    if metadata.get("version") != FORMAT_VERSION:
        raise FormatError(
            "%s: unsupported database version %r"
            % (meta_path, metadata.get("version")))
    config = PageFormatConfig(**metadata["config"])
    rvt = RecordVertexTable(metadata["rvt"]["start_vids"],
                            metadata["rvt"]["lp_ranges"])
    lp_total_degrees = {int(k): v for k, v
                        in metadata["lp_total_degrees"].items()}

    directory = []
    pages = []
    expected = len(metadata["directory"]) * config.page_size
    actual = os.path.getsize(pages_path)
    if actual != expected:
        raise FormatError(
            "%s: expected %d bytes of pages, found %d"
            % (pages_path, expected, actual))
    with open(pages_path, "rb") as handle:
        for record in metadata["directory"]:
            entry = PageDirectoryEntry(**record)
            directory.append(entry)
            data = handle.read(config.page_size)
            if entry.kind == "SP":
                page = SmallPage.from_bytes(
                    data, entry.page_id, entry.num_records, config)
            else:
                chunk_index = int(rvt.lp_ranges[entry.page_id])
                page = LargePage.from_bytes(
                    data, entry.page_id, chunk_index, config,
                    total_degree=lp_total_degrees.get(entry.page_id))
            # Re-derive the logical neighbour IDs through the RVT (the
            # serialized form stores only physical IDs).
            page.adj_vids = rvt.translate(page.adj_pids, page.adj_slots)
            pages.append(page)

    db = GraphDatabase(
        pages=pages,
        directory=directory,
        rvt=rvt,
        config=config,
        num_vertices=metadata["num_vertices"],
        num_edges=metadata["num_edges"],
        out_degrees=np.asarray(metadata["out_degrees"], dtype=np.int64),
        vertex_page=np.asarray(metadata["vertex_page"], dtype=np.int64),
        name=metadata["name"],
    )
    db.wal_epoch = metadata.get("wal_epoch", 0)
    db.validate()
    return db


def _read_metadata(prefix):
    meta_path = prefix + ".meta.json"
    with open(meta_path) as handle:
        metadata = json.load(handle)
    if metadata.get("version") != FORMAT_VERSION:
        raise FormatError(
            "%s: unsupported database version %r"
            % (meta_path, metadata.get("version")))
    return metadata


class FileBackedDatabase(GraphDatabase):
    """A GraphDatabase whose pages load lazily from the pages file.

    Metadata (directory, RVT, degrees) is resident; page payloads are
    parsed from disk on first use and cached in an LRU pool of
    ``pool_pages`` entries.  Everything the engine needs —
    :meth:`page`, :meth:`page_for_vertex`, the ID lists, the statistics
    — behaves identically to the eager database, so GTS runs unchanged
    on top of it; only this process's memory footprint differs.
    """

    def __init__(self, prefix, pool_pages=256):
        metadata = _read_metadata(prefix)
        config = PageFormatConfig(**metadata["config"])
        rvt = RecordVertexTable(metadata["rvt"]["start_vids"],
                                metadata["rvt"]["lp_ranges"])
        directory = [PageDirectoryEntry(**record)
                     for record in metadata["directory"]]
        super().__init__(
            pages=[None] * len(directory),
            directory=directory,
            rvt=rvt,
            config=config,
            num_vertices=metadata["num_vertices"],
            num_edges=metadata["num_edges"],
            out_degrees=np.asarray(metadata["out_degrees"],
                                   dtype=np.int64),
            vertex_page=np.asarray(metadata["vertex_page"],
                                   dtype=np.int64),
            name=metadata["name"],
        )
        self.wal_epoch = metadata.get("wal_epoch", 0)
        self._pages_path = prefix + ".pages"
        expected = len(directory) * config.page_size
        actual = os.path.getsize(self._pages_path)
        if actual != expected:
            raise FormatError(
                "%s: expected %d bytes of pages, found %d"
                % (self._pages_path, expected, actual))
        self._lp_total_degrees = {
            int(k): v for k, v in metadata["lp_total_degrees"].items()}
        if pool_pages < 1:
            raise FormatError("page pool needs at least one slot")
        self._pool_pages = pool_pages
        self._pool = OrderedDict()
        self.pool_hits = 0
        self.pool_misses = 0

    # ------------------------------------------------------------------
    def page(self, page_id):
        if page_id < 0 or page_id >= len(self.directory):
            raise FormatError("unknown page ID %d" % page_id)
        if page_id in self._pool:
            self._pool.move_to_end(page_id)
            self.pool_hits += 1
            return self._pool[page_id]
        self.pool_misses += 1
        page = self._parse_page(page_id)
        while len(self._pool) >= self._pool_pages:
            self._pool.popitem(last=False)
        self._pool[page_id] = page
        return page

    def _parse_page(self, page_id):
        entry = self.directory[page_id]
        with open(self._pages_path, "rb") as handle:
            handle.seek(page_id * self.config.page_size)
            data = handle.read(self.config.page_size)
        if entry.kind == "SP":
            page = SmallPage.from_bytes(data, page_id, entry.num_records,
                                        self.config)
        else:
            chunk_index = int(self.rvt.lp_ranges[page_id])
            page = LargePage.from_bytes(
                data, page_id, chunk_index, self.config,
                total_degree=self._lp_total_degrees.get(page_id))
        page.adj_vids = self.rvt.translate(page.adj_pids, page.adj_slots)
        return page

    def is_small(self, page_id):
        return self.directory[page_id].kind == "SP"

    def validate(self):
        """Validate through the lazy loader (every page decodes once)."""
        covered = 0
        total_edges = 0
        for entry in self.directory:
            page = self._parse_page(entry.page_id)
            if entry.kind == "SP":
                covered += entry.num_records
            elif page.chunk_index == 0:
                covered += 1
            total_edges += page.num_edges
        if covered != self.num_vertices:
            raise FormatError(
                "pages cover %d vertices, expected %d"
                % (covered, self.num_vertices))
        if total_edges != self.num_edges:
            raise FormatError(
                "pages hold %d edges, expected %d"
                % (total_edges, self.num_edges))
        return True

    def resident_pages(self):
        """Pages currently decoded in the pool."""
        return len(self._pool)
