"""A small stdlib-only HTTP/JSON front end for :class:`GraphService`.

Endpoints:

* ``GET /healthz`` — liveness: ``{"status": "ok", "draining": ...}``.
* ``GET /stats`` — the service's full counter snapshot
  (:meth:`~repro.service.service.GraphService.stats`).
* ``GET /metrics`` — the same snapshot rendered as Prometheus text
  exposition format (version 0.0.4), including the rolling-window
  series when the service runs with telemetry; byte-deterministic
  given an unchanged snapshot, so scrapes diff cleanly.
* ``POST /query`` — run one query; the JSON body is a
  :meth:`~repro.service.service.QueryRequest.from_dict` payload, the
  response a :meth:`~repro.core.result.RunResult.to_dict` (pass
  ``"include_values": true`` in the body for full output vectors).
* ``POST /update`` — apply an update batch to a served dynamic
  database while queries run; the body is ``{"database": ...,
  "batch": {"ops": [...]}}`` (an
  :meth:`~repro.dynamic.UpdateBatch.to_dict` payload) plus an optional
  ``"compact_threshold"``; the response is
  :meth:`~repro.service.service.GraphService.update`'s commit report.

Typed service errors map to distinct status codes so clients can react
without parsing prose: 400 for invalid requests
(:class:`~repro.errors.ServiceError` and other
:class:`~repro.errors.GTSError`\\ s), 429 for admission rejections
(:class:`~repro.errors.AdmissionError`, with the controller's state in
the body), 503 while draining (:class:`~repro.errors.ShutdownError`),
504 when a query overruns its ``timeout_ms`` engine option
(:class:`~repro.errors.DeadlineError`, with the elapsed time in the
body), 500 for anything unexpected.  The server is a
:class:`~http.server.ThreadingHTTPServer`: each request gets its own
thread, which then blocks on the service's admission-controlled pool —
back-pressure comes from the service, not from the socket listener.

With telemetry enabled, successful query responses carry an
``X-Query-Id`` correlation header, the handler *defers* trace
completion so the response-rendering time lands in the request's
``serialize`` span, and 504 bodies include the ``query_id`` so a
timed-out request can be matched to its tail-captured trace in the
slow-query ring.
"""

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import (
    AdmissionError,
    DeadlineError,
    GTSError,
    ServiceError,
    ShutdownError,
)
from repro.service.service import QueryRequest

#: Largest accepted request body; queries are small JSON documents and
#: an oversized body is rejected before being read into memory.
MAX_BODY_BYTES = 1 << 20


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP requests onto the owning server's GraphService."""

    #: Quiet by default; ``python -m repro serve --verbose`` flips this.
    log_requests = False
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format, *args):
        """Respect :attr:`log_requests` (stdlib logs unconditionally)."""
        if self.log_requests:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(self, status, payload, extra_headers=None):
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (extra_headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------
    def do_GET(self):
        service = self.server.service
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok",
                                  "draining": service.draining})
        elif self.path == "/stats":
            self._send_json(200, service.stats())
        elif self.path == "/metrics":
            from repro.obs.exporters import PROMETHEUS_CONTENT_TYPE
            body = service.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_json(404, {"error": "unknown path %r" % self.path})

    def do_POST(self):
        if self.path not in ("/query", "/update"):
            self._send_json(404, {"error": "unknown path %r" % self.path})
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"error": "body must be 1..%d bytes"
                                           % MAX_BODY_BYTES})
            return
        try:
            payload = json.loads(self.rfile.read(length))
        except ValueError:
            self._send_json(400, {"error": "body is not valid JSON"})
            return
        include_values = bool(payload.pop("include_values", False)) \
            if isinstance(payload, dict) else False
        service = self.server.service
        tm = service.telemetry
        trace = None
        request = None
        headers = None
        try:
            if self.path == "/update":
                response = self._do_update(service, payload)
            else:
                request = QueryRequest.from_dict(payload)
                future = service.submit(request)
                # Take over completion so the serialize span (measured
                # around _send_json below) lands inside the trace.
                if tm is not None:
                    trace = tm.defer(request.query_id)
                result = future.result()
                response = result.to_dict(include_values=include_values)
                if result.query_id is not None:
                    headers = {"X-Query-Id": result.query_id}
        except AdmissionError as error:
            self._send_json(429, {
                "error": str(error),
                "type": "AdmissionError",
                "queue_depth": error.queue_depth,
                "in_flight": error.in_flight,
                "max_in_flight": error.max_in_flight,
                "max_queue": error.max_queue,
            }, extra_headers={"Retry-After": "1"})
        except ShutdownError as error:
            self._send_json(503, {"error": str(error),
                                  "type": "ShutdownError"})
        except DeadlineError as error:
            # 504: the query ran, but past its caller-supplied budget.
            body = {
                "error": str(error),
                "type": "DeadlineError",
                "timeout_ms": error.timeout_ms,
                "elapsed_seconds": error.elapsed_seconds,
                "rounds_completed": error.rounds_completed,
            }
            if request is not None and request.query_id is not None:
                body["query_id"] = request.query_id
            self._send_json(504, body)
        except ServiceError as error:
            self._send_json(400, {"error": str(error),
                                  "type": "ServiceError"})
        except GTSError as error:
            self._send_json(400, {"error": str(error),
                                  "type": type(error).__name__})
        except Exception as error:  # pragma: no cover - defensive
            self._send_json(500, {"error": str(error),
                                  "type": type(error).__name__})
        else:
            if trace is not None:
                start_ns = trace.now()
                self._send_json(200, response, extra_headers=headers)
                trace.add_phase("serialize", start_ns, trace.now())
                trace = self._complete(tm, trace)
                return
            self._send_json(200, response, extra_headers=headers)
        finally:
            # Error paths (and the defensive case where _send_json
            # itself raised) still finalize the deferred trace.
            self._complete(tm, trace)

    @staticmethod
    def _complete(tm, trace):
        """Finalize a deferred trace (idempotent); returns ``None``."""
        if trace is not None:
            tm.complete(trace)
        return None

    @staticmethod
    def _do_update(service, payload):
        """Validate and apply a ``POST /update`` body."""
        if not isinstance(payload, dict):
            raise ServiceError("update payload must be a JSON object")
        extras = set(payload) - {"database", "batch", "compact_threshold"}
        if extras:
            raise ServiceError(
                "unknown update key(s): %s" % ", ".join(sorted(extras)))
        if "database" not in payload or "batch" not in payload:
            raise ServiceError(
                "update payload needs 'database' and 'batch' keys")
        return service.update(payload["database"], payload["batch"],
                              compact_threshold=payload.get(
                                  "compact_threshold"))


def make_server(service, host="127.0.0.1", port=0, verbose=False):
    """Bind a :class:`ThreadingHTTPServer` fronting ``service``.

    ``port=0`` picks a free port (read it back from
    ``server.server_address[1]``); the caller owns the serve loop —
    ``server.serve_forever()`` to run, ``server.shutdown()`` +
    ``server.server_close()`` to stop.
    """
    handler = type("BoundHandler", (ServiceRequestHandler,),
                   {"log_requests": verbose})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    server.service = service
    return server
