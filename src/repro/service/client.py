"""A stdlib-only client for the service's HTTP/JSON API.

:class:`ServiceClient` wraps :mod:`urllib` and maps the server's typed
status codes back onto the exception hierarchy, so code talking to a
remote service handles the same :class:`~repro.errors.AdmissionError` /
:class:`~repro.errors.ShutdownError` / :class:`~repro.errors.ServiceError`
it would catch around an in-process :class:`GraphService`.  The CLI's
``query`` subcommand is a thin shell over this class.
Admission rejections (HTTP 429) carry the server's ``Retry-After``
header; with ``retries=`` the client honours it — bounded attempts,
exponentially growing but capped backoff — because a 429 means "the
queue is momentarily full", a transient the caller usually wants
absorbed.  503 (draining) is **never** retried: the server announced it
is going away, and hammering a draining service only delays its exit.
"""

import json
import time
import urllib.error
import urllib.request

from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DeadlineError,
    ServiceError,
    ShutdownError,
)


class ServiceClient:
    """Talk to a running ``python -m repro serve`` instance.

    ``base_url`` is e.g. ``http://127.0.0.1:8030``; ``timeout`` bounds
    each HTTP call in seconds (queries queue server-side, so allow for
    the admission wait, not just the run).  ``retries`` (default 0:
    fail fast, the old behaviour) bounds how many times a 429 admission
    rejection is retried after sleeping ``min(backoff_cap,
    retry_after * 2**attempt)`` seconds, where ``retry_after`` is the
    server's ``Retry-After`` header (falling back to 1 second).
    """

    def __init__(self, base_url, timeout=60.0, retries=0,
                 backoff_cap=5.0):
        if retries < 0:
            raise ConfigurationError(
                "retries must be >= 0, got %r" % (retries,))
        if backoff_cap <= 0:
            raise ConfigurationError(
                "backoff_cap must be positive, got %r" % (backoff_cap,))
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_cap = backoff_cap
        #: Injectable for tests (patched to skip real sleeping).
        self._sleep = time.sleep

    # ------------------------------------------------------------------
    def _request(self, path, payload=None):
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(url, data=data,
                                             headers=headers)
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout) as response:
                    return json.loads(response.read())
            except urllib.error.HTTPError as error:
                if error.code == 429 and attempt < self.retries:
                    try:
                        retry_after = float(
                            error.headers.get("Retry-After") or 1.0)
                    except ValueError:
                        retry_after = 1.0
                    error.read()  # drain so keep-alive sockets reuse
                    self._sleep(min(self.backoff_cap,
                                    retry_after * 2 ** attempt))
                    continue
                self._raise_typed(error)

    @staticmethod
    def _raise_typed(error):
        """Translate an HTTP error response into a typed exception."""
        try:
            body = json.loads(error.read())
        except ValueError:
            body = {}
        message = body.get("error", "HTTP %d" % error.code)
        if error.code == 429:
            raise AdmissionError(message,
                                 queue_depth=body.get("queue_depth"),
                                 in_flight=body.get("in_flight"),
                                 max_in_flight=body.get("max_in_flight"),
                                 max_queue=body.get("max_queue")) \
                from None
        if error.code == 503:
            raise ShutdownError(message) from None
        if error.code == 504:
            raise DeadlineError(
                message,
                timeout_ms=body.get("timeout_ms"),
                elapsed_seconds=body.get("elapsed_seconds"),
                rounds_completed=body.get("rounds_completed")) from None
        raise ServiceError("server rejected request (HTTP %d): %s"
                           % (error.code, message)) from None

    # ------------------------------------------------------------------
    def healthz(self):
        """Liveness probe: the ``/healthz`` payload."""
        return self._request("/healthz")

    def stats(self):
        """The service's counter snapshot (``/stats``)."""
        return self._request("/stats")

    def query(self, database, algorithm, params=None, options=None,
              faults=None, fault_seed=None, query_id=None,
              include_values=False):
        """Run one query; returns the RunResult dict from the server.

        Raises the same typed errors an in-process submit would:
        :class:`~repro.errors.AdmissionError` at capacity,
        :class:`~repro.errors.ShutdownError` while draining,
        :class:`~repro.errors.ServiceError` for invalid requests.
        """
        payload = {"database": database, "algorithm": algorithm}
        if params:
            payload["params"] = params
        if options:
            payload["options"] = options
        if faults is not None:
            payload["faults"] = faults
        if fault_seed is not None:
            payload["fault_seed"] = fault_seed
        if query_id is not None:
            payload["query_id"] = query_id
        if include_values:
            payload["include_values"] = True
        return self._request("/query", payload)

    def update(self, database, batch, compact_threshold=None):
        """Apply an update batch to a served dynamic database.

        ``batch`` is an :class:`~repro.dynamic.UpdateBatch` or its
        ``to_dict()`` payload; returns the server's commit report
        (new topology version, op counts, MVCC stats).
        """
        if hasattr(batch, "to_dict"):
            batch = batch.to_dict()
        payload = {"database": database, "batch": batch}
        if compact_threshold is not None:
            payload["compact_threshold"] = compact_threshold
        return self._request("/update", payload)
