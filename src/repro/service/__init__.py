"""repro.service: a multi-tenant graph query service.

A long-lived process serving many concurrent graph queries over shared
database handles, with the host-side caches (shared page cache, round
plan cache, scatter indexes, file pools) kept warm *across* queries —
see :mod:`repro.service.service` for the core, ARCHITECTURE.md §11 for
the design, and ``python -m repro serve`` for the CLI front end.

The load-bearing invariant: sharing caches across queries moves host
wall-clock only.  Every query's simulated timings and algorithm outputs
stay bit-identical to a cold one-shot ``GTSEngine.run()`` — the
concurrency property test in ``tests/test_service.py`` holds the
service to exactly that.
"""

from repro.service.client import ServiceClient
from repro.service.http import ServiceRequestHandler, make_server
from repro.service.service import (
    ALGORITHMS,
    ENGINE_OPTIONS,
    GraphService,
    QueryRequest,
)

__all__ = [
    "ALGORITHMS",
    "ENGINE_OPTIONS",
    "GraphService",
    "QueryRequest",
    "ServiceClient",
    "ServiceRequestHandler",
    "make_server",
]
