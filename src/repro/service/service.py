"""The multi-tenant graph query service core.

:class:`GraphService` is a long-lived object that owns open database
handles and runs many queries against them concurrently, sharing the
host-side caches that PRs 1-6 rebuilt per run:

* one :class:`~repro.core.cache.SharedPageCache` per database — decoded
  pages survive across queries, so a warm query skips the disk read and
  the byte-level parse (host wall-clock only; simulated timings and
  outputs stay bit-identical to a cold one-shot run);
* one :class:`~repro.core.plan.RoundPlanCache` per database — the
  batched execution path's flat-array plan is built once per topology
  version instead of once per engine;
* the database's own scatter-index cache and (for file-backed handles)
  page pool, which the :mod:`repro.concurrency` locks made safe to
  share.

Admission control keeps the service honest under load: at most
``max_in_flight`` queries execute at once on a thread pool, at most
``max_queue`` more wait, and anything beyond that is rejected with a
typed :class:`~repro.errors.AdmissionError` (never an unbounded queue).
:meth:`GraphService.drain` starts a graceful shutdown — queries already
admitted finish, new ones get :class:`~repro.errors.ShutdownError`.

Queries whose fault plan injects host-read corruption attach
process-global state to the shared database, so they take the
database's :class:`~repro.concurrency.ReadWriteGate` exclusively and
run alone; ordinary queries share the gate and run fully concurrently.

Live updates (:meth:`GraphService.update`) commit through the dynamic
store's MVCC path instead of the gate's exclusive mode: each query pins
the topology version current at its start and runs against that
snapshot end to end, so update batches — and even compaction — land
mid-query without blocking readers or perturbing their results.  A
query may bound its total latency with the ``timeout_ms`` engine
option; the engine checks the deadline between rounds and raises
:class:`~repro.errors.DeadlineError` (HTTP 504, CLI exit code 4).
"""

import itertools
import threading
import time as _time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.concurrency import InstrumentedLock, ReadWriteGate
from repro.core import (
    BCKernel,
    BFSKernel,
    DegreeKernel,
    GTSEngine,
    KCoreKernel,
    PageRankKernel,
    RWRKernel,
    SSSPKernel,
    WCCKernel,
)
from repro.core.cache import SharedPageCache
from repro.core.plan import RoundPlanCache
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DeadlineError,
    ServiceError,
    ShutdownError,
)
from repro.hardware.specs import scaled_workstation

#: Service algorithm name -> (kernel factory, needs weighted db).
#: Factories take (params dict, start vertex); parameters default the
#: same way the CLI's one-shot ``run`` command does.
ALGORITHMS = {
    "bfs": (lambda p, start: BFSKernel(start), False),
    "pagerank": (lambda p, start: PageRankKernel(
        iterations=int(p.get("iterations", 10))), False),
    "sssp": (lambda p, start: SSSPKernel(start), True),
    "cc": (lambda p, start: WCCKernel(), False),
    "bc": (lambda p, start: BCKernel(sources=(start,)), False),
    "rwr": (lambda p, start: RWRKernel(
        query_vertex=start, iterations=int(p.get("iterations", 10))),
        False),
    "degree": (lambda p, start: DegreeKernel(), False),
    "kcore": (lambda p, start: KCoreKernel(k=int(p.get("k", 2))), False),
}

#: Engine knobs a query request may override, with service defaults.
ENGINE_OPTIONS = {
    "strategy": "performance",
    "num_streams": 16,
    "num_gpus": 2,
    "num_ssds": 2,
    "execution": "auto",
    "micro_technique": "edge",
    "enable_caching": True,
    "cache_policy": "lru",
    "backend": "serial",
    "backend_workers": None,
    "io_merge": False,
    # Per-query deadline in milliseconds (None = unlimited).  The clock
    # starts at submit, so queue wait counts against the budget; the
    # engine checks it cooperatively between rounds and raises
    # DeadlineError (HTTP 504, CLI exit 4) when exceeded.
    "timeout_ms": None,
}


class QueryRequest:
    """One query against a served database.

    ``params`` feeds the algorithm factory (``start``, ``iterations``,
    ``k``); ``options`` overrides engine knobs from
    :data:`ENGINE_OPTIONS`; ``faults`` is an optional fault-plan dict
    (such queries run exclusively on their database, see the module
    docstring).  ``query_id`` tags the result, traces and metrics —
    ``None`` lets the service assign ``q<N>``.
    """

    __slots__ = ("database", "algorithm", "params", "options", "faults",
                 "fault_seed", "query_id")

    def __init__(self, database, algorithm, params=None, options=None,
                 faults=None, fault_seed=None, query_id=None):
        self.database = database
        self.algorithm = algorithm
        self.params = dict(params or {})
        self.options = dict(options or {})
        self.faults = faults
        self.fault_seed = fault_seed
        self.query_id = query_id
        unknown = set(self.options) - set(ENGINE_OPTIONS)
        if unknown:
            raise ServiceError(
                "unknown engine option(s): %s (valid: %s)"
                % (", ".join(sorted(unknown)),
                   ", ".join(sorted(ENGINE_OPTIONS))))

    @classmethod
    def from_dict(cls, payload):
        """Build a request from a JSON-ish dict (the HTTP body)."""
        if not isinstance(payload, dict):
            raise ServiceError("query payload must be a JSON object")
        if "database" not in payload or "algorithm" not in payload:
            raise ServiceError(
                "query payload needs 'database' and 'algorithm' keys")
        extras = set(payload) - {"database", "algorithm", "params",
                                 "options", "faults", "fault_seed",
                                 "query_id"}
        if extras:
            raise ServiceError(
                "unknown query key(s): %s" % ", ".join(sorted(extras)))
        return cls(payload["database"], payload["algorithm"],
                   params=payload.get("params"),
                   options=payload.get("options"),
                   faults=payload.get("faults"),
                   fault_seed=payload.get("fault_seed"),
                   query_id=payload.get("query_id"))


class _ServedDatabase:
    """A database handle plus the caches every query on it shares."""

    __slots__ = ("name", "db", "shared_cache", "plan_cache", "gate",
                 "queries", "worker_pools", "owns_db", "writer_lock",
                 "updates", "prefix")

    def __init__(self, name, db, shared_cache_pages=None, owns_db=False,
                 prefix=None):
        self.name = name
        self.db = db
        self.shared_cache = SharedPageCache(
            capacity_pages=shared_cache_pages)
        self.plan_cache = RoundPlanCache()
        self.gate = ReadWriteGate()
        self.queries = 0
        # Process-backend worker pools, shared across every query on
        # this handle (forked workers persist between runs); the service
        # shuts them down with the handle.
        from repro.core.parallel import WorkerPoolRegistry
        self.worker_pools = WorkerPoolRegistry()
        #: True when the service opened the database itself (via
        #: ``prefix=``) and therefore owns closing its file handles.
        self.owns_db = owns_db
        #: On-disk prefix when the service opened the database; lets
        #: in-service compaction persist the folded base durably.
        self.prefix = prefix
        # Serialises update batches on this handle.  Updates do NOT
        # take the gate exclusively: MVCC commits a new version while
        # pinned readers keep serving theirs.  They do share the gate
        # as readers, so fault-injecting queries still run alone.
        self.writer_lock = InstrumentedLock()
        self.updates = 0
        # Attach to the handle *and* its base (dynamic overlays keep
        # their file-backed pages on ``_base``, whose miss path is what
        # consults the shared cache).
        for candidate in (db, getattr(db, "_base", None)):
            if candidate is not None and hasattr(candidate,
                                                 "attach_shared_cache"):
                candidate.attach_shared_cache(self.shared_cache)

    def stats(self):
        """JSON-ready per-database cache/lock statistics."""
        db = self.db
        out = {
            "name": self.name,
            "vertices": db.num_vertices,
            "edges": db.num_edges,
            "pages": db.num_pages,
            "topology_version": getattr(db, "topology_version", 0),
            "queries": self.queries,
            "shared_cache": self.shared_cache.stats(),
            "plan_cache": self.plan_cache.stats(),
            "exclusive_queries": self.gate.exclusive_acquisitions,
            "gate": self.gate.stats(),
            "updates": self.updates,
        }
        if hasattr(db, "mvcc_stats"):
            out["mvcc"] = db.mvcc_stats()
        out["worker_pools"] = self.worker_pools.stats()
        if hasattr(db, "scatter_lock_stats"):
            out["scatter_lock"] = db.scatter_lock_stats()
        # Dynamic wrappers keep the page pool on their file-backed base.
        pooled = (db if hasattr(db, "pool_lock_stats")
                  else getattr(db, "_base", None))
        if pooled is not None and hasattr(pooled, "pool_lock_stats"):
            out["pool_locks"] = pooled.pool_lock_stats()
            out["pool_hits"] = pooled.pool_hits
            out["pool_misses"] = pooled.pool_misses
        return out


class GraphService:
    """Run graph queries concurrently over shared database handles.

    Parameters
    ----------
    max_in_flight:
        Queries executing at once (the worker-pool width).
    max_queue:
        Queries allowed to wait beyond the in-flight set; a submit
        that would exceed ``max_in_flight + max_queue`` total raises
        :class:`~repro.errors.AdmissionError` instead of queueing.
    shared_cache_pages:
        Per-database :class:`~repro.core.cache.SharedPageCache`
        capacity; ``None`` (default) is unbounded, ``0`` disables
        caching but keeps the accounting (the benchmark baseline).
    telemetry:
        Request telemetry (:mod:`repro.obs.telemetry`): ``None``
        (default) disables it entirely — the request path then
        performs **no** telemetry clock reads at all (the test suite
        proves this by counting) and results are bit-identical either
        way.  ``True`` enables it with defaults; a
        :class:`~repro.obs.telemetry.TelemetryConfig` or
        :class:`~repro.obs.telemetry.ServiceTelemetry` configures
        lifecycle spans, rolling windows, structured logging and the
        slow-query ring.
    """

    def __init__(self, max_in_flight=8, max_queue=64,
                 shared_cache_pages=None, telemetry=None):
        if max_in_flight < 1:
            raise ConfigurationError(
                "service needs at least one in-flight slot")
        if max_queue < 0:
            raise ConfigurationError("queue capacity cannot be negative")
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self.shared_cache_pages = shared_cache_pages
        self._databases = {}
        self._db_lock = InstrumentedLock()
        self._executor = ThreadPoolExecutor(
            max_workers=max_in_flight,
            thread_name_prefix="gts-query")
        self._lock = InstrumentedLock()
        self._queued = 0
        self._in_flight = 0
        self._draining = False
        self._drained = threading.Event()
        self._drained.set()
        self._query_ids = itertools.count()
        # Service-level counters (mutated under self._lock, so exact).
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected_admission = 0
        self.rejected_shutdown = 0
        self.peak_in_flight = 0
        self.peak_queued = 0
        self.deadline_exceeded = 0
        self.updates_applied = 0
        self._wall_latencies = []
        # Telemetry is imported lazily and only when requested, so an
        # untelemetered service never loads (or clocks through) the
        # telemetry module.
        if telemetry is None or telemetry is False:
            self.telemetry = None
        else:
            from repro.obs.telemetry import (ServiceTelemetry,
                                             TelemetryConfig)
            if isinstance(telemetry, ServiceTelemetry):
                self.telemetry = telemetry
            elif isinstance(telemetry, TelemetryConfig):
                self.telemetry = ServiceTelemetry(telemetry)
            elif telemetry is True:
                self.telemetry = ServiceTelemetry()
            else:
                raise ConfigurationError(
                    "telemetry must be None, True, a TelemetryConfig "
                    "or a ServiceTelemetry, got %r" % (telemetry,))

    # ------------------------------------------------------------------
    # Database registry
    # ------------------------------------------------------------------
    def add_database(self, name, db=None, prefix=None, pool_pages=256,
                     store_mode="copy"):
        """Serve ``db`` (or lazily open ``<prefix>.meta.json/.pages``
        through the WAL-aware dynamic opener) under ``name``.

        The handle gets its own shared page cache, plan cache,
        read/write gate and process-backend worker-pool registry;
        re-registering a name raises
        :class:`~repro.errors.ServiceError`.  ``store_mode="mmap"``
        serves a ``prefix=`` database's base pages zero-copy from the
        mapped pages file.  Returns the handle.
        """
        if (db is None) == (prefix is None):
            raise ServiceError(
                "add_database needs exactly one of db= or prefix=")
        owns_db = db is None
        if db is None:
            from repro.dynamic import open_dynamic_database
            db = open_dynamic_database(prefix, pool_pages=pool_pages,
                                       store_mode=store_mode)
        with self._db_lock:
            if name in self._databases:
                raise ServiceError(
                    "database %r is already being served" % name)
            self._databases[name] = _ServedDatabase(
                name, db, shared_cache_pages=self.shared_cache_pages,
                owns_db=owns_db, prefix=prefix)
        return db

    def remove_database(self, name):
        """Stop serving ``name`` (in-flight queries on it complete):
        detach the shared cache, shut the handle's worker pools down,
        and close the file store if the service opened it."""
        with self._db_lock:
            entry = self._databases.pop(name, None)
        if entry is None:
            raise ServiceError("unknown database %r" % name)
        for candidate in (entry.db, getattr(entry.db, "_base", None)):
            if candidate is not None and hasattr(candidate,
                                                 "detach_shared_cache"):
                candidate.detach_shared_cache()
        entry.worker_pools.shutdown()
        if entry.owns_db:
            for candidate in (entry.db, getattr(entry.db, "_base", None)):
                if candidate is not None and hasattr(candidate, "close"):
                    candidate.close()

    def database_names(self):
        """Names currently served, sorted."""
        with self._db_lock:
            return sorted(self._databases)

    def _entry(self, name):
        with self._db_lock:
            entry = self._databases.get(name)
        if entry is None:
            raise ServiceError(
                "unknown database %r (served: %s)"
                % (name, ", ".join(sorted(self._databases)) or "none"))
        return entry

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def submit(self, request):
        """Admit ``request`` and return a Future of its RunResult.

        Raises :class:`~repro.errors.ShutdownError` when draining and
        :class:`~repro.errors.AdmissionError` when full — both *before*
        any work is enqueued, so rejected queries cost nothing.
        """
        if not isinstance(request, QueryRequest):
            request = QueryRequest.from_dict(request)
        # Validate the cheap parts up front so malformed queries fail
        # typed instead of occupying a queue slot.
        entry = self._entry(request.database)
        self._validate(request, entry)
        tm = self.telemetry
        admit_ns = tm.now() if tm is not None else None
        rejection = None
        with self._lock:
            if self._draining:
                self.rejected_shutdown += 1
                rejection = ShutdownError(
                    "service is draining; query %r rejected"
                    % request.database)
            elif (self._queued + self._in_flight
                    >= self.max_in_flight + self.max_queue):
                self.rejected_admission += 1
                rejection = AdmissionError(
                    "service at capacity (%d in flight, %d queued)"
                    % (self._in_flight, self._queued),
                    queue_depth=self._queued,
                    in_flight=self._in_flight,
                    max_in_flight=self.max_in_flight,
                    max_queue=self.max_queue)
            else:
                self.admitted += 1
                self._queued += 1
                if self._queued > self.peak_queued:
                    self.peak_queued = self._queued
                self._drained.clear()
                if request.query_id is None:
                    request.query_id = "q%d" % next(self._query_ids)
        if rejection is not None:
            # Raised outside the admission lock so the telemetry fan-out
            # (counter + structured log line) never extends the lock's
            # critical section.
            if tm is not None:
                tm.record_rejection(request, rejection)
            raise rejection
        trace = None
        if tm is not None:
            trace = tm.new_trace(request)
            trace.add_phase("admission_wait", admit_ns, trace.submit_ns)
        # The deadline clock starts now — queue wait counts against the
        # caller's budget, so a query stuck behind a full pool times out
        # instead of running long after the client gave up.
        timeout_ms = request.options.get("timeout_ms")
        deadline = (_time.perf_counter() + timeout_ms / 1000.0
                    if timeout_ms is not None else None)
        return self._executor.submit(self._execute, request, entry,
                                     deadline, timeout_ms, trace)

    def query(self, database, algorithm, **kwargs):
        """Blocking convenience: submit and wait for the RunResult.

        Keyword arguments are :class:`QueryRequest` fields
        (``params``, ``options``, ``faults``, ``fault_seed``,
        ``query_id``).
        """
        return self.submit(QueryRequest(database, algorithm,
                                        **kwargs)).result()

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------
    def update(self, database, batch, compact_threshold=None):
        """Apply an :class:`~repro.dynamic.UpdateBatch` to a served
        database while queries keep running.

        MVCC makes this safe without stopping the world: the batch
        commits a new topology version; queries already in flight keep
        their pinned snapshot, queries submitted afterwards see the new
        head.  Batches on one handle serialise on its writer lock;
        against *readers* the update only takes the gate in shared
        mode, so it excludes fault-injecting exclusive queries (which
        mutate process-global read state) but never ordinary ones.

        ``compact_threshold`` (bytes) folds the delta overlay once it
        exceeds the threshold, persisting the new base durably when the
        service opened the database from a ``prefix``.  Returns a
        JSON-ready dict describing the commit.
        """
        from repro.dynamic.batch import UpdateBatch
        from repro.dynamic.compact import maybe_compact

        entry = self._entry(database)
        if isinstance(batch, dict):
            batch = UpdateBatch.from_dict(batch)
        if not hasattr(entry.db, "apply"):
            raise ServiceError(
                "database %r is not dynamic; serve it through "
                "open_dynamic_database (prefix=) to accept updates"
                % database)
        with self._lock:
            if self._draining:
                self.rejected_shutdown += 1
                raise ShutdownError(
                    "service is draining; update to %r rejected"
                    % database)
        with entry.writer_lock:
            entry.gate.acquire_read()
            try:
                report = entry.db.apply(batch)
            finally:
                entry.gate.release_read()
            compaction = None
            if compact_threshold is not None:
                save_prefix = entry.prefix if entry.owns_db else None
                compaction = maybe_compact(
                    entry.db, threshold_bytes=compact_threshold,
                    save_prefix=save_prefix)
        with self._lock:
            entry.updates += 1
            self.updates_applied += 1
        out = {
            "database": database,
            "topology_version": report.topology_version,
            "edges_inserted": report.inserted_edges,
            "edges_deleted": report.deleted_edges,
            "vertices_added": report.added_vertices,
            "delta_bytes": entry.db.delta_bytes,
            "compacted": compaction is not None,
        }
        if compaction is not None:
            out["compaction"] = {
                "folded_bytes": compaction.folded_bytes,
                "folded_batches": compaction.folded_batches,
                "num_pages_after": compaction.num_pages_after,
                "retained_versions": compaction.retained_versions,
            }
        if hasattr(entry.db, "mvcc_stats"):
            out["mvcc"] = entry.db.mvcc_stats()
        return out

    def _validate(self, request, entry):
        spec = ALGORITHMS.get(request.algorithm)
        if spec is None:
            raise ServiceError(
                "unknown algorithm %r (valid: %s)"
                % (request.algorithm, ", ".join(sorted(ALGORITHMS))))
        if spec[1] and entry.db.config.weight_bytes == 0:
            raise ServiceError(
                "algorithm %r needs edge weights, but database %r was "
                "built without them" % (request.algorithm, entry.name))
        start = request.params.get("start")
        if start is not None and not (
                0 <= int(start) < entry.db.num_vertices):
            raise ServiceError(
                "start vertex %r outside database %r (%d vertices)"
                % (start, entry.name, entry.db.num_vertices))
        timeout_ms = request.options.get("timeout_ms")
        if timeout_ms is not None and not (
                isinstance(timeout_ms, (int, float))
                and timeout_ms > 0):
            raise ServiceError(
                "timeout_ms must be a positive number, got %r"
                % (timeout_ms,))

    def _build_engine(self, request, entry, db=None, tracing=False):
        options = dict(ENGINE_OPTIONS)
        options.update(request.options)
        machine = scaled_workstation(num_gpus=options["num_gpus"],
                                     num_ssds=options["num_ssds"])
        return GTSEngine(
            entry.db if db is None else db, machine,
            tracing=tracing,
            strategy=options["strategy"],
            num_streams=options["num_streams"],
            micro_technique=options["micro_technique"],
            enable_caching=options["enable_caching"],
            cache_policy=options["cache_policy"],
            execution=options["execution"],
            backend=options["backend"],
            backend_workers=options["backend_workers"],
            io_merge=options["io_merge"],
            faults=request.faults,
            fault_seed=request.fault_seed,
            plan_cache=entry.plan_cache,
            worker_pools=entry.worker_pools)

    def _execute(self, request, entry, deadline=None, timeout_ms=None,
                 trace=None):
        if trace is not None:
            # A worker picked the request up: everything since submit
            # was queueing.
            trace.add_phase("queue_wait", trace.submit_ns, trace.now())
        with self._lock:
            self._queued -= 1
            self._in_flight += 1
            if self._in_flight > self.peak_in_flight:
                self.peak_in_flight = self._in_flight
        exclusive = request.faults is not None
        failed = False
        timed_out = False
        wall_start = _time.perf_counter()
        snapshot = None
        try:
            if deadline is not None and _time.perf_counter() > deadline:
                # Queued past the whole budget; fail before doing work.
                timed_out = True
                elapsed = (_time.perf_counter()
                           - (deadline - timeout_ms / 1000.0))
                raise DeadlineError(
                    "query spent its whole %.0f ms budget queued "
                    "(%.1f ms elapsed)" % (timeout_ms, elapsed * 1000.0),
                    timeout_ms=timeout_ms, elapsed_seconds=elapsed,
                    rounds_completed=0)
            # Pin the topology version for the whole run: concurrent
            # update batches commit new versions without disturbing this
            # query's view, and the pin keeps the version's state (and
            # retired base, if compaction swapped one out mid-run) from
            # being reclaimed until the query releases it.
            if not exclusive and hasattr(entry.db, "pin"):
                if trace is not None:
                    pin_ns = trace.now()
                    snapshot = entry.db.pin()
                    trace.add_phase("snapshot_pin", pin_ns, trace.now())
                    trace.snapshot_version = getattr(
                        snapshot, "topology_version", None)
                else:
                    snapshot = entry.db.pin()
            view = snapshot if snapshot is not None else entry.db
            start = request.params.get("start")
            start = (int(start) if start is not None
                     else int(np.argmax(view.out_degrees)))
            kernel = ALGORITHMS[request.algorithm][0](request.params,
                                                      start)
            engine = self._build_engine(
                request, entry, db=view,
                tracing=trace.sampled if trace is not None else False)
            # Fault plans attach process-global state (a corrupting
            # injector) to the shared database; run those alone so the
            # injected budget can never leak into a neighbour's reads.
            gate_ns = trace.now() if trace is not None else None
            if exclusive:
                waited = entry.gate.acquire_write()
            else:
                waited = entry.gate.acquire_read()
            if trace is not None:
                trace.add_phase(
                    "gate_acquire", gate_ns, trace.now(),
                    mode="write" if exclusive else "read",
                    waited_seconds=round(waited, 9))
                engine_ns = trace.now()
            try:
                result = engine.run(
                    kernel, dataset_name=entry.name,
                    query_id=request.query_id,
                    deadline=deadline, timeout_ms=timeout_ms,
                    round_observer=(trace.observe_round
                                    if trace is not None else None))
            finally:
                if exclusive:
                    entry.gate.release_write()
                else:
                    entry.gate.release_read()
                if trace is not None:
                    trace.rounds = len(trace.round_marks)
                    trace.add_phase("engine", engine_ns, trace.now(),
                                    rounds=trace.rounds)
            if trace is not None:
                trace.set_status("ok")
                trace.rounds = result.num_rounds
                trace.simulated_seconds = result.elapsed_seconds
                if trace.sampled and result.trace is not None:
                    from repro.obs.exporters import chrome_trace
                    trace.chrome = chrome_trace(result.trace)
            return result
        except DeadlineError as error:
            failed = True
            timed_out = True
            if trace is not None:
                trace.set_status("deadline", error)
            raise
        except BaseException as error:
            failed = True
            if trace is not None:
                trace.set_status("error", error)
            raise
        finally:
            if snapshot is not None:
                snapshot.release()
            wall = _time.perf_counter() - wall_start
            with self._lock:
                self._in_flight -= 1
                entry.queries += 1
                if failed:
                    self.failed += 1
                if timed_out:
                    self.deadline_exceeded += 1
                if not failed:
                    self.completed += 1
                self._wall_latencies.append(wall)
                if not self._in_flight and not self._queued:
                    self._drained.set()
            # Completion (windows, log line, tail capture) stays out of
            # the admission lock.  The HTTP layer may have *deferred*
            # completion to append its serialize span first; complete()
            # is idempotent, so the benign race where both sides call it
            # resolves to whoever got there first.
            if trace is not None and not trace.deferred:
                self.telemetry.complete(trace)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def draining(self):
        """True once :meth:`drain` has been called."""
        with self._lock:
            return self._draining

    def drain(self, wait=True, timeout=None):
        """Begin graceful shutdown: stop admitting, finish the rest.

        With ``wait`` the call blocks until every admitted query has
        completed (or ``timeout`` seconds pass — returns False then).
        Safe to call more than once, and from signal handlers.
        """
        with self._lock:
            self._draining = True
        finished = self._drained.wait(timeout) if wait else True
        if wait and finished:
            self._executor.shutdown(wait=True)
            # Every query has completed; forked process-backend workers
            # have no further rounds to serve.
            with self._db_lock:
                entries = list(self._databases.values())
            for entry in entries:
                entry.worker_pools.shutdown()
        return finished

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _latency_quantiles(self):
        """Cumulative wall-latency quantiles, linearly interpolated.

        Always returns the full shape: an idle service reports
        ``{"count": 0, "p50": None, ...}`` (an explicit null block, not
        a crash or an empty dict), a 1-sample history reports that
        sample for every quantile, and a 2-sample history interpolates
        between the two (p50 is their midpoint) — matching
        :meth:`repro.obs.metrics.Histogram.snapshot` semantics instead
        of the old nearest-rank pick.
        """
        ordered = sorted(self._wall_latencies)
        out = {"count": len(ordered)}
        if not ordered:
            out.update({"p50": None, "p95": None, "p99": None})
            return out

        def q(fraction):
            position = fraction * (len(ordered) - 1)
            lo = int(position)
            hi = min(lo + 1, len(ordered) - 1)
            frac = position - lo
            return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

        out.update({"p50": q(0.50), "p95": q(0.95), "p99": q(0.99)})
        return out

    def stats(self):
        """JSON-ready service snapshot: admission state and counters,
        wall-clock latency percentiles, and per-database cache, lock
        and gate statistics."""
        with self._lock:
            snapshot = {
                "queue_depth": self._queued,
                "in_flight": self._in_flight,
                "max_in_flight": self.max_in_flight,
                "max_queue": self.max_queue,
                "draining": self._draining,
                "admitted": self.admitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected_admission": self.rejected_admission,
                "rejected_shutdown": self.rejected_shutdown,
                "deadline_exceeded": self.deadline_exceeded,
                "updates_applied": self.updates_applied,
                "peak_in_flight": self.peak_in_flight,
                "peak_queued": self.peak_queued,
                "latency_seconds": self._latency_quantiles(),
                "admission_lock": self._lock.stats(),
            }
        if self.telemetry is not None:
            snapshot["rolling"] = self.telemetry.window_snapshot()
            snapshot["telemetry"] = self.telemetry.stats()
        with self._db_lock:
            entries = list(self._databases.values())
        snapshot["databases"] = {entry.name: entry.stats()
                                 for entry in entries}
        return snapshot

    def metrics_text(self):
        """The Prometheus text exposition body (``GET /metrics``).

        Works with telemetry disabled too — then only the cumulative
        service/per-database series appear, without the rolling-window
        families.  Byte-deterministic given an unchanged stats
        snapshot.
        """
        from repro.obs.telemetry import render_service_metrics
        return render_service_metrics(self.stats())
