"""Exception hierarchy for the GTS reproduction.

Every error raised by this package derives from :class:`GTSError` so that
callers can catch reproduction-specific failures without masking bugs.
"""


class GTSError(Exception):
    """Base class for all errors raised by this package."""


class FormatError(GTSError):
    """A slotted-page format constraint was violated.

    Raised, for example, when a record is too large for the configured page
    size, when a vertex or page identifier exceeds the addressing width, or
    when a serialized page fails to decode.
    """


class CapacityError(GTSError):
    """A simulated hardware capacity was exceeded.

    This mirrors the paper's ``O.O.M.`` outcomes: an engine that cannot fit
    its working set in the configured (simulated) memory raises this error
    instead of producing a result.
    """

    def __init__(self, message, required_bytes=None, available_bytes=None):
        super().__init__(message)
        self.required_bytes = required_bytes
        self.available_bytes = available_bytes


class OutOfMemoryError(CapacityError):
    """The working set of an engine exceeded the configured memory budget."""


class ConfigurationError(GTSError):
    """An engine or hardware component was configured inconsistently."""


class UpdateError(GTSError):
    """A dynamic-graph mutation was invalid.

    Raised when an :class:`~repro.dynamic.batch.UpdateBatch` references a
    vertex outside the database, deletes an edge that does not exist, or
    mixes operations a consumer cannot honour (e.g. asking for incremental
    recomputation over a batch containing deletions).
    """


class WALError(GTSError):
    """The write-ahead log is corrupt beyond a torn tail.

    A truncated final record (a crash mid-append) is *recoverable* and is
    not an error; a checksum mismatch or impossible length anywhere else
    means the log cannot be trusted and replay raises this.
    """


class SimulationError(GTSError):
    """The discrete-event simulation reached an inconsistent state."""


class FaultError(GTSError):
    """An injected hardware fault could not be absorbed by recovery.

    Base class for every failure surfaced by the :mod:`repro.faults`
    subsystem.  Recoverable faults (transient read errors, simulated
    page corruption caught by checksums, copy-engine hiccups) never
    raise — they cost retries and simulated time instead.  This
    hierarchy exists for the faults that recovery *cannot* absorb, so
    the engine fails with a typed error rather than a wrong answer.
    """


class IntegrityError(GTSError):
    """A page's bytes failed their CRC32 checksum.

    Raised when a checksummed database reads back a page whose stored
    checksum does not match the bytes on disk (real bit-rot, a torn
    write, or an injected corruption that persisted across the verified
    re-fetch recovery path).  Carries the page so operators can map the
    failure back to a device region.
    """

    def __init__(self, message, page_id=None, expected_crc=None,
                 actual_crc=None):
        super().__init__(message)
        self.page_id = page_id
        self.expected_crc = expected_crc
        self.actual_crc = actual_crc


class RetryExhaustedError(FaultError):
    """A retried operation failed on every allowed attempt.

    ``site`` names the injection point (``"ssd_read"``, ``"h2d_copy"``,
    ``"host_read"``), ``attempts`` how many times the operation was
    tried before giving up.
    """

    def __init__(self, message, site=None, attempts=None, page_id=None):
        super().__init__(message)
        self.site = site
        self.attempts = attempts
        self.page_id = page_id


class ServiceError(GTSError):
    """A request to the multi-tenant query service was invalid.

    Raised by :mod:`repro.service` for malformed query requests: an
    unknown database name, an unknown algorithm, or parameters the
    target database cannot satisfy (e.g. a weighted algorithm on a
    weight-less topology).  Admission failures use the more specific
    :class:`AdmissionError` / :class:`ShutdownError` subclasses so
    transport layers can map them to distinct status codes.
    """


class AdmissionError(ServiceError):
    """The service's admission controller rejected a query.

    Raised when accepting the query would exceed the configured
    capacity (``max_in_flight`` running queries plus ``max_queue``
    waiting ones).  This is the typed back-pressure signal — the HTTP
    layer maps it to 429 — and carries the controller's state at
    rejection time so clients and logs can see *how* full the service
    was.
    """

    def __init__(self, message, queue_depth=None, in_flight=None,
                 max_in_flight=None, max_queue=None):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.in_flight = in_flight
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue


class ShutdownError(ServiceError):
    """The service is draining and no longer admits queries.

    Raised for queries submitted after shutdown began; queries already
    in flight (or queued) when the drain started still complete.  The
    HTTP layer maps this to 503.
    """


class DeadlineError(ServiceError):
    """A query exceeded its caller-supplied deadline (``timeout_ms``).

    Raised cooperatively: the engine checks the deadline between
    execution rounds (and the service checks it before a queued query
    even starts), so a timed-out query releases its snapshot pin and
    its gate slot instead of hanging onto them.  The HTTP layer maps
    this to 504 and the ``query`` CLI to exit code 4.  Carries the
    configured budget and the host wall-clock elapsed when the check
    fired.
    """

    def __init__(self, message, timeout_ms=None, elapsed_seconds=None,
                 rounds_completed=None):
        super().__init__(message)
        self.timeout_ms = timeout_ms
        self.elapsed_seconds = elapsed_seconds
        self.rounds_completed = rounds_completed


class DeviceLostError(FaultError):
    """A whole simulated device failed and its loss is unrecoverable.

    An SSD that dies takes its stripe of pages with it; a GPU that dies
    under Strategy-S takes its exclusive WA partition.  (A GPU lost
    under Strategy-P is *not* an error — WA is replicated, so the
    engine drains it and redistributes its page stream instead.)
    """

    def __init__(self, message, device=None, lost_at=None):
        super().__init__(message)
        self.device = device
        self.lost_at = lost_at
