"""Exception hierarchy for the GTS reproduction.

Every error raised by this package derives from :class:`GTSError` so that
callers can catch reproduction-specific failures without masking bugs.
"""


class GTSError(Exception):
    """Base class for all errors raised by this package."""


class FormatError(GTSError):
    """A slotted-page format constraint was violated.

    Raised, for example, when a record is too large for the configured page
    size, when a vertex or page identifier exceeds the addressing width, or
    when a serialized page fails to decode.
    """


class CapacityError(GTSError):
    """A simulated hardware capacity was exceeded.

    This mirrors the paper's ``O.O.M.`` outcomes: an engine that cannot fit
    its working set in the configured (simulated) memory raises this error
    instead of producing a result.
    """

    def __init__(self, message, required_bytes=None, available_bytes=None):
        super().__init__(message)
        self.required_bytes = required_bytes
        self.available_bytes = available_bytes


class OutOfMemoryError(CapacityError):
    """The working set of an engine exceeded the configured memory budget."""


class ConfigurationError(GTSError):
    """An engine or hardware component was configured inconsistently."""


class SimulationError(GTSError):
    """The discrete-event simulation reached an inconsistent state."""
