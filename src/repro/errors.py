"""Exception hierarchy for the GTS reproduction.

Every error raised by this package derives from :class:`GTSError` so that
callers can catch reproduction-specific failures without masking bugs.
"""


class GTSError(Exception):
    """Base class for all errors raised by this package."""


class FormatError(GTSError):
    """A slotted-page format constraint was violated.

    Raised, for example, when a record is too large for the configured page
    size, when a vertex or page identifier exceeds the addressing width, or
    when a serialized page fails to decode.
    """


class CapacityError(GTSError):
    """A simulated hardware capacity was exceeded.

    This mirrors the paper's ``O.O.M.`` outcomes: an engine that cannot fit
    its working set in the configured (simulated) memory raises this error
    instead of producing a result.
    """

    def __init__(self, message, required_bytes=None, available_bytes=None):
        super().__init__(message)
        self.required_bytes = required_bytes
        self.available_bytes = available_bytes


class OutOfMemoryError(CapacityError):
    """The working set of an engine exceeded the configured memory budget."""


class ConfigurationError(GTSError):
    """An engine or hardware component was configured inconsistently."""


class UpdateError(GTSError):
    """A dynamic-graph mutation was invalid.

    Raised when an :class:`~repro.dynamic.batch.UpdateBatch` references a
    vertex outside the database, deletes an edge that does not exist, or
    mixes operations a consumer cannot honour (e.g. asking for incremental
    recomputation over a batch containing deletions).
    """


class WALError(GTSError):
    """The write-ahead log is corrupt beyond a torn tail.

    A truncated final record (a crash mid-append) is *recoverable* and is
    not an error; a checksum mismatch or impossible length anywhere else
    means the log cannot be trusted and replay raises this.
    """


class SimulationError(GTSError):
    """The discrete-event simulation reached an inconsistent state."""
