"""Main-memory page buffer (MMBuf) with its buffered-page map.

Algorithm 1 keeps a main-memory buffer: when the whole graph fits
(``|G| < MMBuf``) it is loaded up front and no storage I/O happens during
the run; otherwise pages fetched from SSD are kept in the buffer
(``bufferPIDMap``), so re-streamed pages often avoid a second storage
read — this "page buffering mechanism" is the paper's explanation for
measured times beating the naive bandwidth arithmetic in Section 7.5.

Two replacement policies are provided:

* ``"pin"`` (default) — first-fetched pages stay resident; once full,
  later pages pass through unbuffered.  Full-scan algorithms stream pages
  in the same ascending order every iteration, which makes plain LRU
  evict each page moments before its next use (classic sequential
  flooding) and deliver zero hits at any buffer size below 100 %.
  Pinning a stable prefix yields the ``capacity / topology`` hit fraction
  per iteration that the paper's arithmetic implies.
* ``"lru"`` — least-recently-used, for workloads with temporal locality.
"""

from collections import OrderedDict

from repro.errors import ConfigurationError

_POLICIES = ("pin", "lru")


class MainMemoryBuffer:
    """Page buffer of a fixed byte capacity (see module docstring)."""

    def __init__(self, capacity_bytes, page_bytes, policy="pin",
                 recorder=None):
        if page_bytes <= 0:
            raise ConfigurationError("page size must be positive")
        if policy not in _POLICIES:
            raise ConfigurationError(
                "unknown buffer policy %r (expected one of %s)"
                % (policy, ", ".join(_POLICIES)))
        self.capacity_bytes = capacity_bytes
        self.page_bytes = page_bytes
        self.policy = policy
        self.capacity_pages = max(0, int(capacity_bytes // page_bytes))
        self._pages = OrderedDict()  # page_id -> None, LRU order
        #: Optional TraceRecorder; probes with a known simulated time
        #: become ``mm_buffer_hit`` / ``mm_buffer_miss`` instants.
        self.recorder = recorder
        self.hits = 0
        self.misses = 0

    def __contains__(self, page_id):
        return page_id in self._pages

    def __len__(self):
        return len(self._pages)

    def lookup(self, page_id, ts=None):
        """Check residency, update recency and hit/miss counters.

        ``ts`` is the simulated time of the probe; when tracing is on it
        timestamps the emitted hit/miss instant.
        """
        if page_id in self._pages:
            if self.policy == "lru":
                self._pages.move_to_end(page_id)
            self.hits += 1
            if self.recorder is not None and ts is not None:
                self.recorder.instant("mm_buffer_hit", "host", "mm buffer",
                                      ts, page=page_id)
            return True
        self.misses += 1
        if self.recorder is not None and ts is not None:
            self.recorder.instant("mm_buffer_miss", "host", "mm buffer",
                                  ts, page=page_id)
        return False

    def admit(self, page_id):
        """Insert a fetched page, subject to the replacement policy."""
        if self.capacity_pages == 0:
            return
        if page_id in self._pages:
            if self.policy == "lru":
                self._pages.move_to_end(page_id)
            return
        if len(self._pages) >= self.capacity_pages:
            if self.policy == "pin":
                return  # resident set is stable once full
            while len(self._pages) >= self.capacity_pages:
                self._pages.popitem(last=False)
        self._pages[page_id] = None

    def preload(self, page_ids):
        """Bulk-load pages (the ``|G| < MMBuf`` full-load path).

        Loads as many pages as fit; returns the number admitted.
        """
        admitted = 0
        for page_id in page_ids:
            if len(self._pages) >= self.capacity_pages:
                break
            if page_id not in self._pages:
                self._pages[page_id] = None
                admitted += 1
        return admitted

    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def resident_bytes(self):
        """Bytes currently buffered (a gauge for the metrics registry)."""
        return len(self._pages) * self.page_bytes

    def reset_counters(self):
        self.hits = 0
        self.misses = 0
