"""Secondary storage: SSD/HDD devices with hash-striped page placement.

Section 4.1: GTS stores page ``SP_j`` on device ``g(j)`` where ``g`` is a
hash of the page ID (the mod function by default), and fetches pages from
their device on demand.  Each device serializes its own reads; striping
across devices multiplies aggregate fetch bandwidth, which is why two SSDs
beat one in Figure 9.
"""

from repro.errors import CapacityError, SimulationError
from repro.hardware.clock import Resource


class StorageArray:
    """A set of storage devices with pages striped across them."""

    def __init__(self, specs, hash_function=None, recorder=None):
        if not specs:
            raise SimulationError("storage array needs at least one device")
        self.specs = list(specs)
        self.channels = [Resource("storage:%s" % spec.name) for spec in specs]
        self._hash = hash_function or (lambda pid: pid % len(self.specs))
        #: True when pages stripe with the default mod function, letting
        #: hot paths compute the device index inline.
        self.default_striping = hash_function is None
        #: Optional TraceRecorder; each fetch becomes an ``ssd_fetch``
        #: interval on the device's lane.
        self.recorder = recorder
        self.bytes_read = 0
        self.pages_fetched = 0

    @property
    def num_devices(self):
        return len(self.specs)

    def device_for_page(self, page_id):
        """The paper's ``g(j)``: which device holds page ``j``."""
        device = self._hash(page_id)
        if device < 0 or device >= len(self.specs):
            raise SimulationError("hash function returned bad device index")
        return device

    def total_capacity(self):
        return sum(spec.capacity for spec in self.specs)

    def check_fits(self, num_bytes):
        """Raise :class:`CapacityError` if a dataset exceeds the array."""
        capacity = self.total_capacity()
        if num_bytes > capacity:
            raise CapacityError(
                "dataset of %d bytes exceeds storage capacity %d"
                % (num_bytes, capacity),
                required_bytes=num_bytes, available_bytes=capacity)

    def fetch(self, page_id, num_bytes, earliest):
        """Book a page read; returns ``(start, end)`` simulated times."""
        device = self.device_for_page(page_id)
        duration = self.specs[device].read_time(num_bytes)
        start, end = self.channels[device].book(earliest, duration)
        self.bytes_read += num_bytes
        self.pages_fetched += 1
        if self.recorder is not None:
            self.recorder.interval(
                "ssd_fetch", "storage", self.specs[device].name,
                start, end, page=page_id, bytes=num_bytes)
        return start, end

    def aggregate_bandwidth(self):
        """Sum of sequential-read bandwidths — the Section 4.1 bottleneck."""
        return sum(spec.read_bandwidth for spec in self.specs)

    def reset(self):
        for channel in self.channels:
            channel.reset()
        self.bytes_read = 0
        self.pages_fetched = 0
