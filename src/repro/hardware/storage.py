"""Secondary storage: SSD/HDD devices with hash-striped page placement.

Section 4.1: GTS stores page ``SP_j`` on device ``g(j)`` where ``g`` is a
hash of the page ID (the mod function by default), and fetches pages from
their device on demand.  Each device serializes its own reads; striping
across devices multiplies aggregate fetch bandwidth, which is why two SSDs
beat one in Figure 9.

Fault model (:mod:`repro.faults`): when a run installs a
:class:`~repro.faults.FaultInjector` (``fault_injector`` attribute, set
per run by the engine), every fetch consults it.  A *transient* read
error costs the failed read plus an exponential backoff — both booked as
real time on the device channel, so recovery delays everything queued
behind it.  A *corrupt* read completes but fails checksum verification
and is re-fetched.  Either class exhausting the retry budget raises
:class:`~repro.errors.RetryExhaustedError`; a fetch addressed to a
device the plan has killed raises :class:`~repro.errors.DeviceLostError`
(a dead SSD takes its stripe of pages with it — unrecoverable).
"""

from repro.errors import (CapacityError, DeviceLostError,
                          RetryExhaustedError, SimulationError)
from repro.faults.inject import READ_CORRUPT, READ_OK
from repro.hardware.clock import Resource


class StorageArray:
    """A set of storage devices with pages striped across them."""

    def __init__(self, specs, hash_function=None, recorder=None):
        if not specs:
            raise SimulationError("storage array needs at least one device")
        self.specs = list(specs)
        self.channels = [Resource("storage:%s" % spec.name) for spec in specs]
        self._hash = hash_function or (lambda pid: pid % len(self.specs))
        #: True when pages stripe with the default mod function, letting
        #: hot paths compute the device index inline.
        self.default_striping = hash_function is None
        #: Optional TraceRecorder; each fetch becomes an ``ssd_fetch``
        #: interval on the device's lane.
        self.recorder = recorder
        #: Optional :class:`~repro.faults.FaultInjector`; installed per
        #: run by the engine, ``None`` keeps the fault-free fast path.
        self.fault_injector = None
        self.bytes_read = 0
        self.pages_fetched = 0
        #: Fetches whose page immediately follows the previous fetch on
        #: the same device — the adjacent-read opportunities a
        #: sequential/readahead store could coalesce.  Counted on the
        #: generic fetch path (traced, fault-injected or host-profiled
        #: runs); the engine's inlined bulk replay bypasses it.
        self.adjacent_fetches = 0
        #: Ranged (multi-page) reads booked by :meth:`fetch_range`.
        self.ranged_fetches = 0
        self._last_fetch_pid = [None] * len(self.specs)
        #: Per-device fault bookkeeping (parallel to ``specs``).
        self.fetch_retries = [0] * len(self.specs)
        self.faults_injected = [0] * len(self.specs)

    @property
    def num_devices(self):
        return len(self.specs)

    def device_for_page(self, page_id):
        """The paper's ``g(j)``: which device holds page ``j``."""
        device = self._hash(page_id)
        if device < 0 or device >= len(self.specs):
            raise SimulationError("hash function returned bad device index")
        return device

    def total_capacity(self):
        return sum(spec.capacity for spec in self.specs)

    def check_fits(self, num_bytes):
        """Raise :class:`CapacityError` if a dataset exceeds the array."""
        capacity = self.total_capacity()
        if num_bytes > capacity:
            raise CapacityError(
                "dataset of %d bytes exceeds storage capacity %d"
                % (num_bytes, capacity),
                required_bytes=num_bytes, available_bytes=capacity)

    def _note_fetch(self, device, page_id):
        """Adjacent-read accounting: a fetch whose page is the next one
        in the device's stripe order could have been coalesced into the
        previous read by a sequential/readahead store."""
        last = self._last_fetch_pid[device]
        stride = len(self.specs) if self.default_striping else 1
        if last is not None and page_id == last + stride:
            self.adjacent_fetches += 1
        self._last_fetch_pid[device] = page_id

    def fetch(self, page_id, num_bytes, earliest):
        """Book a page read; returns ``(start, end)`` simulated times."""
        if num_bytes < 0:
            raise SimulationError(
                "cannot fetch %d bytes for page %d (negative size)"
                % (num_bytes, page_id))
        device = self.device_for_page(page_id)
        if self.fault_injector is not None:
            return self._fetch_faulted(device, page_id, num_bytes,
                                       earliest)
        duration = self.specs[device].read_time(num_bytes)
        start, end = self.channels[device].book(earliest, duration)
        self.bytes_read += num_bytes
        self.pages_fetched += 1
        self._note_fetch(device, page_id)
        if self.recorder is not None:
            self.recorder.interval(
                "ssd_fetch", "storage", self.specs[device].name,
                start, end, page=page_id, bytes=num_bytes)
        return start, end

    def fetch_range(self, page_ids, num_bytes, earliest):
        """Book reads for ``page_ids``, merging adjacent pages per device.

        Pages are grouped by their device in arrival order; maximal runs
        of stride-consecutive page IDs (stride = the striping interval,
        so consecutive *global* page IDs land in one run under default
        striping) are booked as a single ranged read of
        ``num_bytes * len(run)`` on the device channel.  Every page in a
        run becomes ready at the run's end time — the model FlashGraph
        uses for merged I/O requests: one command, the whole range pays
        one transfer.  Each run past its first page counts one
        ``adjacent_fetches`` (the same opportunities :meth:`fetch`
        merely *observes*), and each booked run counts one
        ``ranged_fetches``.

        Returns ``{page_id: (start, end)}``.  With a fault injector
        installed, falls back to per-page :meth:`fetch` so injection
        and retry semantics stay per-read.
        """
        if self.fault_injector is not None:
            return {pid: self.fetch(pid, num_bytes, earliest)
                    for pid in page_ids}
        times = {}
        per_device = {}
        for pid in page_ids:
            per_device.setdefault(self.device_for_page(pid), []).append(pid)
        stride = len(self.specs) if self.default_striping else 1
        for device, pids in per_device.items():
            spec = self.specs[device]
            channel = self.channels[device]
            start_idx = 0
            while start_idx < len(pids):
                stop_idx = start_idx + 1
                while (stop_idx < len(pids)
                       and pids[stop_idx] == pids[stop_idx - 1] + stride):
                    stop_idx += 1
                run = pids[start_idx:stop_idx]
                start_idx = stop_idx
                duration = spec.read_time(num_bytes * len(run))
                start, end = channel.book(earliest, duration)
                self.bytes_read += num_bytes * len(run)
                self.pages_fetched += len(run)
                last = self._last_fetch_pid[device]
                if last is not None and run[0] == last + stride:
                    self.adjacent_fetches += 1
                self.adjacent_fetches += len(run) - 1
                self._last_fetch_pid[device] = run[-1]
                self.ranged_fetches += 1
                if self.recorder is not None:
                    self.recorder.interval(
                        "ssd_fetch", "storage", spec.name, start, end,
                        page=run[0], pages=len(run),
                        bytes=num_bytes * len(run))
                for pid in run:
                    times[pid] = (start, end)
        return times

    def _fetch_faulted(self, device, page_id, num_bytes, earliest):
        """The fetch path under an installed fault injector.

        Each attempt books the read on the device channel (failed and
        corrupt attempts cost the same channel time as good ones — the
        device did the work); a failed attempt additionally books its
        retry backoff there, so the delay is real simulated time that
        every later read on the device queues behind.
        """
        injector = self.fault_injector
        spec = self.specs[device]
        name = spec.name
        lost_at = injector.ssd_lost(device, earliest)
        if lost_at is not None:
            if self.recorder is not None:
                self.recorder.instant(
                    "device_lost", "storage", name, earliest,
                    page=page_id, lost_at=lost_at)
            raise DeviceLostError(
                "storage device %s (holding page %d) was lost at "
                "simulated time %.6f; its stripe of pages is gone"
                % (name, page_id, lost_at),
                device=name, lost_at=lost_at)
        channel = self.channels[device]
        duration = spec.read_time(num_bytes)
        retry = injector.retry
        for attempt in range(retry.max_attempts):
            start, end = channel.book(earliest, duration)
            outcome = injector.ssd_read_outcome(page_id, attempt)
            self.faults_injected[device] += outcome is not READ_OK
            if outcome is READ_OK:
                self.bytes_read += num_bytes
                self.pages_fetched += 1
                self._note_fetch(device, page_id)
                if self.recorder is not None:
                    self.recorder.interval(
                        "ssd_fetch", "storage", name, start, end,
                        page=page_id, bytes=num_bytes, attempt=attempt)
                return start, end
            # The device still moved the bytes on a corrupt read; a
            # transient error aborted partway.  Either way the channel
            # time above is spent, and the backoff is charged on top.
            if attempt + 1 >= retry.max_attempts:
                break
            backoff = retry.backoff(attempt)
            _, earliest = channel.book(end, backoff)
            self.fetch_retries[device] += 1
            injector.note_retry(backoff)
            if self.recorder is not None:
                self.recorder.interval(
                    "fault", "storage", name, start, end,
                    page=page_id, kind=outcome, attempt=attempt)
                self.recorder.interval(
                    "retry", "storage", name, end, earliest,
                    page=page_id, backoff=backoff)
        raise RetryExhaustedError(
            "page %d read on %s failed %d attempt(s) (last outcome: %s)"
            % (page_id, name, retry.max_attempts,
               READ_CORRUPT if outcome is READ_CORRUPT else "read error"),
            site="ssd_read", attempts=retry.max_attempts, page_id=page_id)

    def aggregate_bandwidth(self):
        """Sum of sequential-read bandwidths — the Section 4.1 bottleneck."""
        return sum(spec.read_bandwidth for spec in self.specs)

    def reset(self):
        for channel in self.channels:
            channel.reset()
        self.bytes_read = 0
        self.pages_fetched = 0
        self.adjacent_fetches = 0
        self.ranged_fetches = 0
        self._last_fetch_pid = [None] * len(self.specs)
        self.fetch_retries = [0] * len(self.specs)
        self.faults_injected = [0] * len(self.specs)
