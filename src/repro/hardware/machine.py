"""MachineRuntime: per-run resource timelines built from a MachineSpec.

Spec objects are immutable and reusable; a :class:`MachineRuntime` carries
the mutable simulation state for one engine run — copy-engine and stream
timelines per GPU, storage channels, the main-memory buffer — plus the
counters the result object reports.
"""

from repro.errors import ConfigurationError
from repro.hardware.clock import Resource, SlotPool
from repro.hardware.memory import MainMemoryBuffer
from repro.hardware.storage import StorageArray


class GPURuntime:
    """Mutable per-run state of one GPU.

    ``recorder`` (a :class:`~repro.obs.events.TraceRecorder`) receives a
    structured ``kernel`` event for every invocation booked here; it is
    ``None`` on untraced runs, so the hot path pays one identity check.
    """

    def __init__(self, index, spec, num_streams, tracing=False,
                 recorder=None):
        self.index = index
        self.spec = spec
        self.recorder = recorder
        self.lane = "gpu%d" % index
        effective_streams = min(num_streams, spec.max_concurrent_streams)
        #: Host-to-device copies serialize on the copy engine (Section 3.2:
        #: transfer operations cannot overlap each other, only kernels).
        self.copy_engine = Resource("gpu%d:copy" % index, tracing=tracing)
        #: Each stream serializes its own (copy, kernel) sequence; kernels
        #: in different streams overlap.
        self.streams = SlotPool("gpu%d:stream" % index, effective_streams,
                                tracing=tracing)
        #: Aggregate compute capacity: however many kernels overlap, total
        #: device throughput cannot exceed ``effective_hz``.
        self.compute = Resource("gpu%d:compute" % index)
        self.kernel_invocations = 0
        self.kernel_busy_time = 0.0
        self.kernel_stream_time = 0.0
        self.bytes_received = 0
        self.allocated_bytes = 0

    @property
    def num_streams(self):
        return self.streams.num_slots

    def allocate(self, num_bytes, what):
        """Account a device-memory allocation; raises on exhaustion."""
        from repro.errors import OutOfMemoryError
        if self.allocated_bytes + num_bytes > self.spec.device_memory:
            raise OutOfMemoryError(
                "GPU %d cannot allocate %d bytes for %s "
                "(%d of %d bytes already allocated)"
                % (self.index, num_bytes, what, self.allocated_bytes,
                   self.spec.device_memory),
                required_bytes=self.allocated_bytes + num_bytes,
                available_bytes=self.spec.device_memory)
        self.allocated_bytes += num_bytes

    def free_device_memory(self):
        return self.spec.device_memory - self.allocated_bytes

    def book_kernel(self, slot, earliest, lane_steps, cycles_per_lane_step):
        """Book one kernel invocation; returns its completion time.

        The kernel is constrained twice: by its *stream* (serial within a
        stream, at the single-stream underutilised rate) and by the GPU's
        *aggregate compute capacity* (concurrent kernels cannot exceed the
        device's total throughput).  The completion time is the later of
        the two, and both timelines advance to it.
        """
        stream_duration = self.spec.kernel_stream_time(
            lane_steps, cycles_per_lane_step)
        device_duration = self.spec.kernel_device_time(
            lane_steps, cycles_per_lane_step)
        _, capacity_end = self.compute.book(earliest, device_duration)
        stream_start, stream_end = slot.book(earliest, stream_duration)
        end = max(capacity_end, stream_end)
        slot.available_at = end
        self.kernel_invocations += 1
        self.kernel_busy_time += device_duration
        self.kernel_stream_time += stream_duration
        if self.recorder is not None:
            # The emitted interval mirrors the stream-slot booking
            # exactly, so the ASCII renderer (which reads slot.events)
            # and the Chrome trace agree on busy fractions.
            self.recorder.interval(
                "kernel", self.lane, slot.name.split(":")[-1],
                stream_start, stream_end, lane_steps=lane_steps)
        return end

    def done_at(self):
        """Time when this GPU's queued work has fully drained."""
        return max(self.copy_engine.available_at, self.streams.all_done_at())

    def advance_to(self, time):
        """Move all of this GPU's timelines forward to a barrier time."""
        self.copy_engine.available_at = max(
            self.copy_engine.available_at, time)
        self.compute.available_at = max(self.compute.available_at, time)
        for slot in self.streams.slots:
            slot.available_at = max(slot.available_at, time)


class MachineRuntime:
    """All mutable simulation state for one engine run."""

    def __init__(self, spec, num_streams=16, page_bytes=None,
                 mm_buffer_bytes=None, tracing=False, recorder=None):
        if num_streams < 1:
            raise ConfigurationError("need at least one stream")
        self.spec = spec
        self.pcie = spec.pcie
        self.tracing = tracing
        #: Structured-event sink shared by every component of this run
        #: (None unless the engine was built with tracing on).
        self.recorder = recorder
        self.gpus = [GPURuntime(i, gpu_spec, num_streams, tracing=tracing,
                                recorder=recorder)
                     for i, gpu_spec in enumerate(spec.gpus)]
        self.storage = (StorageArray(spec.storages, recorder=recorder)
                        if spec.storages else None)
        page_bytes = page_bytes or 1
        buffer_bytes = (mm_buffer_bytes if mm_buffer_bytes is not None
                        else spec.main_memory)
        buffer_bytes = min(buffer_bytes, spec.main_memory)
        self.mm_buffer = MainMemoryBuffer(buffer_bytes, page_bytes,
                                          recorder=recorder)
        #: Serialized host-side staging: copies of WA back to main memory.
        self.host_bus = Resource("host:bus")
        self.now = 0.0

    @property
    def num_gpus(self):
        return len(self.gpus)

    def barrier(self):
        """Global synchronisation: advance ``now`` past all queued work."""
        done = max(gpu.done_at() for gpu in self.gpus)
        if self.storage is not None:
            done = max(done, max(
                ch.available_at for ch in self.storage.channels))
        done = max(done, self.host_bus.available_at)
        self.now = max(self.now, done)
        for gpu in self.gpus:
            gpu.advance_to(self.now)
        return self.now
