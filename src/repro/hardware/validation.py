"""Simulation self-checks: audit a finished run for DES invariants.

A discrete-event model is only as trustworthy as its invariants.  This
module inspects a traced :class:`~repro.hardware.machine.MachineRuntime`
after a run and verifies the properties every correct schedule must
satisfy:

* **No overlap** — a serialized resource never runs two activities at
  once (intervals on each copy engine / stream slot / SSD channel are
  disjoint and ordered).
* **Accounting** — a resource's ``busy_time`` equals the sum of its
  recorded intervals.
* **Causality** — no interval starts before time zero or ends after the
  runtime's clock.
* **Concurrency caps** — at no instant do more kernels run on a GPU
  than it has stream slots.

The engine exposes this through ``GTSEngine(validate_simulation=True)``,
which enables tracing, runs the audit after every run, and raises
:class:`~repro.errors.SimulationError` on any violation — the test
suite's property tests lean on it.
"""

from repro.errors import SimulationError

#: Slack for floating-point comparison of simulated times.
_EPSILON = 1e-9


def check_resource(resource, horizon=None):
    """Validate one traced resource; returns the interval count."""
    if resource.events is None:
        raise SimulationError(
            "resource %s was not traced; enable tracing to validate"
            % resource.name)
    previous_end = 0.0
    busy = 0.0
    for index, (start, end) in enumerate(resource.events):
        if start < -_EPSILON:
            raise SimulationError(
                "%s: interval %d starts before time zero (%g)"
                % (resource.name, index, start))
        if end < start - _EPSILON:
            raise SimulationError(
                "%s: interval %d ends before it starts (%g > %g)"
                % (resource.name, index, start, end))
        if start < previous_end - _EPSILON:
            raise SimulationError(
                "%s: interval %d overlaps its predecessor "
                "(starts %g, predecessor ends %g)"
                % (resource.name, index, start, previous_end))
        if horizon is not None and end > horizon + _EPSILON:
            raise SimulationError(
                "%s: interval %d ends at %g, after the clock's %g"
                % (resource.name, index, end, horizon))
        previous_end = max(previous_end, end)
        busy += end - start
    if abs(busy - resource.busy_time) > max(_EPSILON,
                                            1e-6 * max(busy, 1e-12)):
        raise SimulationError(
            "%s: busy_time %g does not match interval sum %g"
            % (resource.name, resource.busy_time, busy))
    return len(resource.events)


def check_gpu(gpu, horizon=None):
    """Validate a GPU's copy engine and stream slots; returns counts."""
    intervals = check_resource(gpu.copy_engine, horizon)
    kernel_intervals = 0
    events = []
    for slot in gpu.streams.slots:
        kernel_intervals += check_resource(slot, horizon)
        events.extend(slot.events)
    # Concurrency cap: sweep the combined kernel intervals.
    boundary = sorted(
        [(start, 1) for start, _ in events]
        + [(end, -1) for _, end in events])
    running = 0
    peak = 0
    for _, delta in boundary:
        running += delta
        peak = max(peak, running)
    if peak > gpu.num_streams:
        raise SimulationError(
            "GPU %d ran %d concurrent kernels with only %d streams"
            % (gpu.index, peak, gpu.num_streams))
    return intervals + kernel_intervals


def check_runtime(runtime):
    """Validate every traced resource of a runtime; returns the total
    number of intervals audited."""
    if not runtime.tracing:
        raise SimulationError(
            "runtime was created without tracing; nothing to validate")
    horizon = runtime.now if runtime.now > 0 else None
    total = 0
    for gpu in runtime.gpus:
        total += check_gpu(gpu, horizon)
    return total
