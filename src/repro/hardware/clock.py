"""Timeline resources for the discrete-event hardware model.

The simulation style here is *resource-timeline scheduling* rather than a
callback event queue: every serialized device is a :class:`Resource` whose
``available_at`` time advances as activities are booked onto it.  An
activity's start time is the maximum of the resource's availability and the
activity's data dependencies, exactly like job-shop scheduling.  This keeps
the model deterministic and easy to reason about, and it composes naturally
with the engine's page-dispatch loop.
"""

from repro.errors import SimulationError


class Resource:
    """An exclusive serialized device (copy engine, SSD channel, ...).

    Activities booked on the resource run one after another; an activity
    asked to start at ``earliest`` begins at
    ``max(earliest, available_at)``.

    With ``tracing`` enabled every booked activity is recorded as a
    ``(start, end)`` interval in :attr:`events`, which is what the
    Figure 4-style timeline renderer consumes.
    """

    def __init__(self, name, tracing=False):
        self.name = name
        self.available_at = 0.0
        self.busy_time = 0.0
        self.num_activities = 0
        self.tracing = tracing
        self.events = [] if tracing else None

    def book(self, earliest, duration):
        """Book an activity; returns ``(start, end)`` simulated times."""
        if duration < 0:
            raise SimulationError(
                "negative duration %r on %s" % (duration, self.name))
        if earliest < 0:
            raise SimulationError(
                "negative earliest time %r on %s" % (earliest, self.name))
        start = max(earliest, self.available_at)
        end = start + duration
        self.available_at = end
        self.busy_time += duration
        self.num_activities += 1
        if self.tracing:
            self.events.append((start, end))
        return start, end

    def utilisation(self, horizon):
        """Fraction of ``[0, horizon]`` this resource spent busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    def reset(self):
        self.available_at = 0.0
        self.busy_time = 0.0
        self.num_activities = 0
        if self.tracing:
            self.events = []

    def __repr__(self):
        return "Resource(%s, available_at=%.6f)" % (self.name, self.available_at)


class SlotPool:
    """A pool of ``k`` identical parallel slots (e.g. GPU streams).

    ``book`` places the activity on the slot that frees up soonest, which
    models a round of independent streams each serializing its own work.
    ``book_on`` pins an activity to a specific slot, used when the engine
    assigns pages to streams round-robin as in Figure 3.
    """

    def __init__(self, name, num_slots, tracing=False):
        if num_slots < 1:
            raise SimulationError("slot pool needs at least one slot")
        self.name = name
        self.slots = [Resource("%s[%d]" % (name, i), tracing=tracing)
                      for i in range(num_slots)]

    @property
    def num_slots(self):
        return len(self.slots)

    def book(self, earliest, duration):
        """Book on the earliest-free slot; returns ``(slot, start, end)``."""
        slot = min(range(len(self.slots)),
                   key=lambda i: self.slots[i].available_at)
        start, end = self.slots[slot].book(earliest, duration)
        return slot, start, end

    def book_on(self, slot, earliest, duration):
        """Book on a specific slot; returns ``(start, end)``."""
        return self.slots[slot].book(earliest, duration)

    def all_done_at(self):
        """Time when every slot has drained (a synchronisation barrier)."""
        return max(slot.available_at for slot in self.slots)

    def busy_time(self):
        return sum(slot.busy_time for slot in self.slots)

    def reset(self):
        for slot in self.slots:
            slot.reset()
