"""Simulated hardware: the machine GTS runs on, as a discrete-event model.

The paper's testbed — Xeon CPUs, NVIDIA TITAN X GPUs with CUDA streams,
Fusion-io PCI-E SSDs — is modelled here as a set of *timeline resources*:

* :class:`~repro.hardware.clock.Resource` — an exclusive serialized device
  (a GPU's host-to-device copy engine, one SSD's channel).
* :class:`~repro.hardware.clock.SlotPool` — a pool of ``k`` parallel slots
  (the ≤32 concurrent GPU streams).
* Spec dataclasses in :mod:`~repro.hardware.specs` describing capacities
  and rates (``c1`` chunk-copy and ``c2`` streaming-copy PCI-E rates, SSD
  and HDD bandwidths, GPU device-memory sizes).
* :class:`~repro.hardware.machine.MachineRuntime` — a fresh set of resource
  timelines instantiated per engine run.

Kernels *execute for real* in NumPy; this subpackage only answers "when
would each transfer and kernel have finished on the paper's hardware",
which is what the paper's elapsed-time figures measure.
"""

from repro.hardware.clock import Resource, SlotPool
from repro.hardware.specs import (
    GPUSpec,
    PCIeSpec,
    StorageSpec,
    MachineSpec,
    paper_workstation,
    scaled_workstation,
    SSD_SPEC,
    HDD_SPEC,
)
from repro.hardware.storage import StorageArray
from repro.hardware.memory import MainMemoryBuffer
from repro.hardware.machine import MachineRuntime, GPURuntime

__all__ = [
    "Resource",
    "SlotPool",
    "GPUSpec",
    "PCIeSpec",
    "StorageSpec",
    "MachineSpec",
    "paper_workstation",
    "scaled_workstation",
    "SSD_SPEC",
    "HDD_SPEC",
    "StorageArray",
    "MainMemoryBuffer",
    "MachineRuntime",
    "GPURuntime",
]
