"""ASCII timeline rendering: the reproduction of Figure 4.

The paper profiles its streams and shows, per GPU stream, short transfer
bars and long kernel bars ("the timeline for PageRank is denser than
that for BFS since PageRank is computationally intensive").  With
tracing enabled on a :class:`~repro.hardware.machine.MachineRuntime`,
every copy-engine and stream-slot booking is recorded; this module
renders those interval lists as a character Gantt chart:

* ``=`` — kernel execution on a stream,
* ``#`` — a host-to-device copy on the copy engine,
* ``.`` — idle.
"""

import math

from repro.errors import ConfigurationError
from repro.units import format_seconds


def render_lane(events, t0, t1, width, mark="="):
    """Render one resource's ``(start, end)`` intervals as a lane.

    Zero-length intervals paint nothing: a cell is marked only when the
    interval genuinely covers part of it, so an instantaneous booking no
    longer shows up as a full-width-cell bar.
    """
    if t1 <= t0:
        return "." * width
    cells = ["."] * width
    scale = width / (t1 - t0)
    for start, end in events:
        if end <= start:
            continue
        lo = int(max(0.0, (start - t0)) * scale)
        hi = min(width - 1,
                 max(lo, int(math.ceil(max(0.0, (end - t0)) * scale)) - 1))
        for i in range(lo, hi + 1):
            if i < width:
                cells[i] = mark
    return "".join(cells)


def busy_fraction(events, t0, t1):
    """Fraction of the window covered by intervals (no overlap assumed)."""
    if t1 <= t0:
        return 0.0
    covered = sum(min(end, t1) - max(start, t0)
                  for start, end in events
                  if end > t0 and start < t1)
    return max(0.0, covered) / (t1 - t0)


def render_gpu_timeline(gpu, t0, t1, width=72, max_streams=16):
    """Figure 4-style view of one GPU's copy engine and streams."""
    if gpu.copy_engine.events is None:
        raise ConfigurationError(
            "tracing was not enabled on this runtime "
            "(pass tracing=True to MachineRuntime / the engine)")
    lines = []
    lines.append("GPU %d timeline over %s  ('#'=copy, '='=kernel)"
                 % (gpu.index, format_seconds(t1 - t0)))
    copy_lane = render_lane(gpu.copy_engine.events, t0, t1, width,
                            mark="#")
    lines.append("  copy engine  |%s| %4.0f%%"
                 % (copy_lane,
                    100 * busy_fraction(gpu.copy_engine.events, t0, t1)))
    for slot in gpu.streams.slots[:max_streams]:
        lane = render_lane(slot.events, t0, t1, width)
        lines.append("  %-12s |%s| %4.0f%%"
                     % (slot.name.split(":")[-1], lane,
                        100 * busy_fraction(slot.events, t0, t1)))
    return "\n".join(lines)


def timeline_density(gpu, t0, t1):
    """Mean stream busy-fraction — the paper's "denser" quantification."""
    fractions = [busy_fraction(slot.events, t0, t1)
                 for slot in gpu.streams.slots]
    return sum(fractions) / len(fractions) if fractions else 0.0
