"""Hardware specifications: capacities and rates of the simulated machine.

Two families of specs are provided:

* :func:`paper_workstation` — the paper's testbed at face value: two
  NVIDIA GTX TITAN X GPUs (12 GB device memory each), 128 GB main memory,
  two Fusion-io PCI-E SSDs, PCI-E 3.0 x16 (chunk-copy rate ``c1`` ≈
  16 GB/s, streaming rate ``c2`` ≈ 6 GB/s — Section 5.1's numbers).
* :func:`scaled_workstation` — the same machine with every *capacity*
  divided by a scale factor (default 8192 = 2¹³), matching the uniform
  2¹³× down-scaling of the datasets (see DESIGN.md §6).  *Rates* are kept
  as-is, so simulated elapsed times shrink by the same factor and every
  ratio the paper plots is preserved.

GPU kernel timing uses an *effective* execution rate: graph kernels on real
GPUs are memory-bound, so instead of multiplying core counts by clock rates
we model a device-wide rate of "lane-cycles" per second
(``effective_hz``).  A kernel's time is::

    launch_overhead + lane_steps * cycles_per_lane_step / effective_hz

where ``lane_steps`` comes from the micro-level parallelisation model
(:mod:`repro.core.micro`) and ``cycles_per_lane_step`` is an algorithm
property (PageRank's atomic scattered adds cost far more per edge than
BFS's level checks — this is what makes Table 1's ratios differ between
the two algorithms).
"""

import dataclasses
from typing import Tuple

from repro.errors import ConfigurationError
from repro.units import GB, MB, TB


@dataclasses.dataclass(frozen=True)
class PCIeSpec:
    """PCI-E interconnect rates (Section 5.1).

    ``chunk_bandwidth`` is ``c1``: the rate of large pinned chunk copies
    (WA transfers).  ``stream_bandwidth`` is ``c2``: the per-transfer rate
    achieved in streaming copy mode.  ``p2p_bandwidth`` is the GPU
    peer-to-peer rate used by Strategy-P's WA merge (Section 4.1).
    """

    chunk_bandwidth: float = 16 * GB
    stream_bandwidth: float = 6 * GB
    p2p_bandwidth: float = 20 * GB
    latency: float = 5e-6

    def chunk_copy_time(self, num_bytes):
        return self.latency + num_bytes / self.chunk_bandwidth

    def stream_copy_time(self, num_bytes):
        return self.latency + num_bytes / self.stream_bandwidth

    def p2p_copy_time(self, num_bytes):
        return self.latency + num_bytes / self.p2p_bandwidth


@dataclasses.dataclass(frozen=True)
class GPUSpec:
    """One GPU: device-memory capacity and effective execution rate."""

    name: str = "GTX TITAN X"
    device_memory: int = 12 * GB
    #: CUDA allows at most 32 streams to execute kernels concurrently
    #: (Section 3.2), independent of how many the user creates.
    max_concurrent_streams: int = 32
    #: Device-wide effective lane-cycle rate (see module docstring).
    effective_hz: float = 24e9
    #: Fixed overhead per kernel invocation — the paper's ``t_call``.
    kernel_launch_overhead: float = 5e-6
    #: Fraction of the device's throughput one kernel achieves running
    #: alone.  A single page's kernel cannot fill every SM, so a lone
    #: stream underutilises the GPU; concurrent kernels from multiple
    #: streams recover full throughput.  This is the mechanism behind
    #: Figure 10's improvement all the way to 32 streams (Section 3.2:
    #: "the kernel execution becomes faster when SP_j and RA_j are
    #: prepared in the queues of GPU in advance").
    single_stream_fraction: float = 1.0 / 16.0

    def kernel_stream_time(self, lane_steps, cycles_per_lane_step):
        """Time one kernel takes on its own stream (underutilised rate)."""
        rate = self.effective_hz * self.single_stream_fraction
        return (self.kernel_launch_overhead
                + lane_steps * cycles_per_lane_step / rate)

    def kernel_device_time(self, lane_steps, cycles_per_lane_step):
        """Device-capacity time of one kernel (full aggregate rate)."""
        return lane_steps * cycles_per_lane_step / self.effective_hz


@dataclasses.dataclass(frozen=True)
class StorageSpec:
    """A secondary-storage device: SSD or HDD."""

    name: str
    read_bandwidth: float
    access_latency: float
    capacity: int

    def read_time(self, num_bytes):
        return self.access_latency + num_bytes / self.read_bandwidth


#: One Fusion-io style PCI-E SSD.  The paper quotes ~5 GB/s for the pair,
#: so 2.5 GB/s each; flash access latency ~50 us.
SSD_SPEC = StorageSpec(name="PCI-E SSD", read_bandwidth=2.5 * GB,
                       access_latency=50e-6, capacity=1 * TB)

#: A 7200 rpm HDD.  The paper measures ~0.33 GB/s for two striped drives;
#: seek-dominated random access.
HDD_SPEC = StorageSpec(name="HDD", read_bandwidth=0.165 * GB,
                       access_latency=8e-3, capacity=3 * TB)


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """The full single-machine testbed the GTS engine runs on."""

    gpus: Tuple[GPUSpec, ...]
    storages: Tuple[StorageSpec, ...]
    main_memory: int
    pcie: PCIeSpec = PCIeSpec()
    name: str = "workstation"
    #: Fraction of a graph's size granted to the main-memory page buffer
    #: when the graph does not fit in main memory (Section 7.2 sets the
    #: buffer to 20 % of the graph size for RMAT31/32).
    buffer_fraction: float = 0.2

    def __post_init__(self):
        if not self.gpus:
            raise ConfigurationError("a machine needs at least one GPU")
        if self.main_memory <= 0:
            raise ConfigurationError("main memory must be positive")

    @property
    def num_gpus(self):
        return len(self.gpus)

    @property
    def num_storages(self):
        return len(self.storages)

    def scaled(self, factor):
        """Return a copy with all capacities divided by ``factor``.

        Rates (bandwidths, latencies, effective_hz) are left unchanged —
        see the module docstring for why this preserves the paper's
        ratios.  Kernel launch overhead *is* scaled: at paper scale a 64 MB
        page's kernel dwarfs the ~5 us launch cost, and keeping the launch
        cost fixed while kernels shrink 8192x would let it dominate.
        """
        gpus = tuple(dataclasses.replace(
            g,
            device_memory=max(1, int(g.device_memory / factor)),
            kernel_launch_overhead=g.kernel_launch_overhead / factor,
        ) for g in self.gpus)
        storages = tuple(dataclasses.replace(
            s,
            capacity=max(1, int(s.capacity / factor)),
            access_latency=s.access_latency / factor,
        ) for s in self.storages)
        pcie = dataclasses.replace(
            self.pcie, latency=self.pcie.latency / factor)
        return dataclasses.replace(
            self, gpus=gpus, storages=storages, pcie=pcie,
            main_memory=max(1, int(self.main_memory / factor)),
            name="%s (1/%d scale)" % (self.name, factor))


def paper_workstation(num_gpus=2, num_ssds=2, storage_spec=SSD_SPEC,
                      main_memory=128 * GB):
    """The paper's Section 7.1 workstation, parameterised.

    ``num_gpus`` / ``num_ssds`` support the scalability experiments;
    ``storage_spec`` switches SSDs for HDDs (Figure 9).
    """
    return MachineSpec(
        gpus=tuple(GPUSpec() for _ in range(num_gpus)),
        storages=tuple(
            dataclasses.replace(storage_spec, name="%s %d" % (storage_spec.name, i))
            for i in range(num_ssds)),
        main_memory=main_memory,
        name="paper workstation",
    )


#: Uniform capacity scale used by the experiment registry (2^13, matching
#: the dataset down-scaling from RMAT-k to RMAT-(k-13)).
DEFAULT_SCALE_FACTOR = 8192


def scaled_workstation(num_gpus=2, num_ssds=2, storage_spec=SSD_SPEC,
                       main_memory=128 * GB, factor=DEFAULT_SCALE_FACTOR):
    """The paper workstation with capacities scaled down by ``factor``."""
    return paper_workstation(
        num_gpus=num_gpus, num_ssds=num_ssds, storage_spec=storage_spec,
        main_memory=main_memory).scaled(factor)
