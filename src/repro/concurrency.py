"""Instrumented locking primitives shared by the concurrent layers.

PRs 1-6 built a strictly single-threaded system: every cache in the
stack (the :class:`~repro.core.plan.RoundPlanCache`, the database-level
scatter-index cache, the :class:`~repro.format.io.FileBackedDatabase`
page pool) relied on one thread mutating it at a time.  The service
layer (:mod:`repro.service`) runs many queries concurrently against one
shared database, so those caches now guard their mutable state with the
locks defined here.

:class:`InstrumentedLock` is a plain mutex with two extra behaviours the
service's observability wants:

* a **contended-acquisition counter** — every acquire first tries the
  non-blocking fast path; only when another thread already holds the
  lock does the counter tick and the caller fall back to a blocking
  acquire.  Uncontended (single-threaded) use therefore costs one extra
  integer comparison, and ``contended`` directly measures how often
  threads actually queued on the shared structure.
* a **total-acquisition counter**, so a contention *rate* can be
  reported (``contended / acquisitions``), and a cumulative
  ``wait_seconds`` clocked only on the contended path — the fast path
  never reads the host clock.

Both counters are updated while the lock is held, so they are exact.

:class:`ReadWriteGate` serialises the rare queries that must run alone
(e.g. fault plans that attach a corrupting injector to a shared
database) against the common fully-concurrent readers: readers share the
gate, writers exclude everyone.  The gate is **writer-preferring**: once
a writer is waiting, new readers queue behind it, so a steady reader
stream can delay a writer by at most the readers already inside the
gate when it arrived (no starvation).  ``writers_waiting`` and the
cumulative ``writer_wait_seconds`` / ``reader_wait_seconds`` counters
make both sides' waits observable, and both acquire methods return the
seconds the caller actually blocked so the service can attribute gate
time to an individual request's ``gate_acquire`` span.
"""

import threading
import time


class InstrumentedLock:
    """A mutex that counts total and contended acquisitions.

    Usable as a context manager exactly like :class:`threading.Lock`::

        lock = InstrumentedLock()
        with lock:
            ...mutate shared state...
        lock.contended      # times a thread had to wait
        lock.acquisitions   # total acquires
    """

    __slots__ = ("_lock", "contended", "acquisitions", "wait_seconds")

    def __init__(self):
        self._lock = threading.Lock()
        self.contended = 0
        self.acquisitions = 0
        #: Total host seconds spent blocked on contended acquires.
        self.wait_seconds = 0.0

    def acquire(self):
        """Acquire, counting whether the fast (uncontended) path won.

        Returns the seconds spent blocked (0.0 on the fast path, which
        performs no clock read at all — pay-for-use, like the gate's
        reader path).
        """
        waited = None
        if not self._lock.acquire(False):
            start = time.perf_counter()
            self._lock.acquire()
            waited = time.perf_counter() - start
        # Counters are mutated under the lock, so they are exact.
        self.acquisitions += 1
        if waited is not None:
            self.contended += 1
            self.wait_seconds += waited
        return waited or 0.0

    def release(self):
        self._lock.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def contention_rate(self):
        """Fraction of acquisitions that had to wait (0.0 when idle)."""
        if not self.acquisitions:
            return 0.0
        return self.contended / self.acquisitions

    def stats(self):
        """JSON-ready counter snapshot."""
        return {"acquisitions": self.acquisitions,
                "contended": self.contended,
                "contention_rate": self.contention_rate(),
                "wait_seconds": self.wait_seconds}


class ReadWriteGate:
    """Many concurrent readers, or one exclusive writer.

    The service uses this per database handle: ordinary queries enter as
    readers and run fully concurrently; a query whose fault plan must
    attach process-global state to the shared database (host-read
    corruption budgets) enters as a writer and runs alone, so its
    injected faults can never leak into a neighbour's reads.

    Writer preference: :meth:`acquire_read` blocks not only while a
    writer holds the gate but also while one *waits* for it.  Readers
    already inside keep running (the writer waits them out), but no new
    reader overtakes a queued writer — under a continuous reader stream
    the writer acquires as soon as the current readers drain.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        #: Exclusive acquisitions served (how often the slow path ran).
        self.exclusive_acquisitions = 0
        #: Total host seconds writers spent waiting to acquire.
        self.writer_wait_seconds = 0.0
        #: Reader acquisitions that found the gate blocked.
        self.reader_waits = 0
        #: Total host seconds those blocked readers spent waiting.
        self.reader_wait_seconds = 0.0

    @property
    def writers_waiting(self):
        """Writers currently queued for exclusive access."""
        return self._writers_waiting

    def acquire_read(self):
        """Enter as a reader; returns the seconds spent waiting.

        The uncontended path (no writer holding or queued) performs no
        clock read — wait accounting is pay-for-use, paid only by
        readers that actually block behind a writer.
        """
        with self._cond:
            if not (self._writer or self._writers_waiting):
                self._readers += 1
                return 0.0
            start = time.perf_counter()
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            waited = time.perf_counter() - start
            self.reader_waits += 1
            self.reader_wait_seconds += waited
            return waited

    def release_read(self):
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self):
        """Enter exclusively; returns the seconds spent waiting."""
        start = time.perf_counter()
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer:
                    self._cond.wait()
                self._writer = True
                while self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self.exclusive_acquisitions += 1
            waited = time.perf_counter() - start
            self.writer_wait_seconds += waited
            return waited

    def release_write(self):
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    def stats(self):
        """JSON-ready gate counters for the service stats endpoint."""
        with self._cond:
            return {
                "readers_active": self._readers,
                "writers_waiting": self._writers_waiting,
                "exclusive_acquisitions": self.exclusive_acquisitions,
                "writer_wait_seconds": self.writer_wait_seconds,
                "reader_waits": self.reader_waits,
                "reader_wait_seconds": self.reader_wait_seconds,
            }
