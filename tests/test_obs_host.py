"""Host-runtime profiling layer (:mod:`repro.obs.host`).

Covers the profiler's span algebra (nesting, conservation, dangling
spans), the engine integration (phase tree, coverage, bit-identical
simulated results, I/O counters), the pay-for-use guarantee of the
disabled path (structurally zero profiler work — the wall-clock <1%
gate lives in ``benchmarks/bench_host_profile.py`` where repeats make
it stable), byte-determinism of the exporters, gating host profiles
under the default tolerance rules, and the no-baseline behaviour of the
history loader.
"""

import json
import os
import sys
import tracemalloc

import numpy as np
import pytest

import repro.obs.host as host_module
from repro.core import BFSKernel, GTSEngine, PageRankKernel
from repro.errors import ConfigurationError
from repro.format.io import load_database, save_database
from repro.obs import compare_metrics, validate_chrome_trace
from repro.obs.host import (
    HostPhase,
    HostProfile,
    HostProfiler,
    host_chrome_trace,
    load_host_profile,
    merge_host_lanes,
    write_flamegraph,
    write_host_profile,
)


def _assert_conservation(profile):
    """Every parent's inclusive time covers the sum of its children."""
    by_path = {p.path: p for p in profile.phases}
    child_sums = {}
    for p in profile.phases:
        if "/" in p.path:
            parent = p.path.rsplit("/", 1)[0]
            child_sums[parent] = child_sums.get(parent, 0.0) + p.seconds
    for parent, total in child_sums.items():
        assert parent in by_path, "orphan phase under %r" % parent
        # Tiny float slack: seconds are ns-accurate but summed floats.
        assert total <= by_path[parent].seconds + 1e-9, (
            "children of %r (%fs) exceed parent (%fs)"
            % (parent, total, by_path[parent].seconds))


class TestHostProfiler:
    def test_nested_paths_and_counts(self):
        hp = HostProfiler(track_memory=False)
        with hp.phase("a"):
            with hp.phase("b"):
                pass
            with hp.phase("b"):
                pass
        profile = hp.finish()
        paths = [p.path for p in profile.phases]
        assert paths == ["a", "a/b"]
        assert profile.phase("a").count == 1
        assert profile.phase("a/b").count == 2
        assert profile.phase("a/b").name == "b"
        assert profile.phase("a").depth == 1
        assert profile.phase("a/b").depth == 2

    def test_conservation_child_within_parent(self):
        hp = HostProfiler(track_memory=False)
        with hp.phase("outer"):
            for _ in range(5):
                with hp.phase("inner"):
                    sum(range(200))
        _assert_conservation(hp.finish())

    def test_self_seconds_subtract_children(self):
        hp = HostProfiler(track_memory=False)
        with hp.phase("outer"):
            with hp.phase("inner"):
                pass
        profile = hp.finish()
        outer = profile.phase("outer")
        inner = profile.phase("outer/inner")
        assert outer.self_seconds == pytest.approx(
            outer.seconds - inner.seconds, abs=1e-12)
        assert outer.self_seconds >= 0.0

    def test_finish_closes_dangling_spans(self):
        hp = HostProfiler(track_memory=False)
        hp.push("a")
        hp.push("b")
        assert hp.depth == 2
        profile = hp.finish()
        assert hp.depth == 0
        assert [p.path for p in profile.phases] == ["a", "a/b"]

    def test_counters_accumulate(self):
        hp = HostProfiler(track_memory=False)
        hp.add_counter("io.bytes", 10)
        hp.add_counter("io.bytes", 5)
        assert hp.finish().counters == {"io.bytes": 15}

    def test_event_cap_counts_drops(self):
        hp = HostProfiler(track_memory=False, max_events=2)
        for _ in range(5):
            with hp.phase("x"):
                pass
        profile = hp.finish()
        assert len(profile.events) == 2
        assert profile.dropped_events == 3
        assert profile.phase("x").count == 5  # stats are never dropped

    def test_sample_cap_keeps_totals(self):
        hp = HostProfiler(track_memory=False, max_samples_per_phase=2)
        for _ in range(4):
            with hp.phase("x"):
                pass
        phase = hp.finish().phase("x")
        assert phase.count == 4
        assert phase.p50_seconds is not None

    def test_memory_tracking_off_reports_none(self):
        hp = HostProfiler(track_memory=False)
        with hp.phase("a"):
            pass
        profile = hp.finish()
        assert profile.tracemalloc_peak_bytes is None
        assert profile.phase("a").net_alloc_bytes is None

    def test_memory_tracking_on_reports_peak(self):
        hp = HostProfiler()
        with hp.phase("alloc"):
            blob = np.zeros(1 << 16, dtype=np.uint8)  # noqa: F841
        profile = hp.finish()
        assert profile.tracemalloc_peak_bytes is not None
        assert profile.tracemalloc_peak_bytes > 0
        assert profile.phase("alloc").net_alloc_bytes is not None

    def test_does_not_stop_foreign_tracemalloc(self):
        already = tracemalloc.is_tracing()
        tracemalloc.start()
        try:
            HostProfiler().finish()
            assert tracemalloc.is_tracing()
        finally:
            if not already:
                tracemalloc.stop()

    def test_profile_snapshot_is_non_destructive(self):
        hp = HostProfiler(track_memory=False)
        with hp.phase("first"):
            pass
        snap = hp.profile()
        assert snap.phase("first") is not None
        with hp.phase("second"):
            pass
        final = hp.finish()
        assert [p.path for p in final.phases] == ["first", "second"]

    def test_coverage_of_top_level_phases(self):
        hp = HostProfiler(track_memory=False)
        with hp.phase("everything"):
            sum(range(50_000))
        profile = hp.finish()
        assert 0.9 <= profile.coverage() <= 1.0


class TestEngineIntegration:
    def test_disabled_by_default(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine).run(BFSKernel(0))
        assert result.host_profile is None

    def test_profiled_run_has_phase_tree(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine, host_profile=True).run(
            PageRankKernel(iterations=3))
        profile = result.host_profile
        assert profile is not None
        paths = {p.path for p in profile.phases}
        assert {"run", "run/setup", "run/round", "run/round/kernel",
                "run/round/dispatch", "run/finalize"} <= paths
        assert profile.phase("run").count == 1
        assert profile.phase("run/round").count == result.num_rounds
        _assert_conservation(profile)

    def test_coverage_meets_bar(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine, host_profile=True).run(
            PageRankKernel(iterations=3))
        assert result.host_profile.coverage() >= 0.8

    @pytest.mark.parametrize("execution", ["paged", "batched"])
    def test_profiling_does_not_change_simulation(self, rmat_db, machine,
                                                  execution):
        plain = GTSEngine(rmat_db, machine, execution=execution).run(
            PageRankKernel(iterations=3))
        profiled = GTSEngine(rmat_db, machine, execution=execution,
                             host_profile=True).run(
            PageRankKernel(iterations=3))
        assert plain.elapsed_seconds == profiled.elapsed_seconds
        assert np.array_equal(plain.values["rank"],
                              profiled.values["rank"])

    def test_external_profiler_spans_load_and_run(self, rmat_db, machine):
        hp = HostProfiler(track_memory=False)
        with hp.phase("load"):
            pass
        result = GTSEngine(rmat_db, machine, host_profile=hp).run(
            BFSKernel(0))
        profile = result.host_profile
        assert profile.phase("load") is not None
        assert profile.phase("run") is not None
        # Snapshot is non-destructive: the owner keeps measuring.
        with hp.phase("after"):
            pass
        assert hp.finish().phase("after") is not None

    def test_profiler_detached_after_run(self, rmat_db, machine):
        GTSEngine(rmat_db, machine, host_profile=True).run(BFSKernel(0))
        assert rmat_db.host_profiler is None

    def test_sim_io_counters(self, rmat_db, machine):
        result = GTSEngine(
            rmat_db, machine, host_profile=True,
            mm_buffer_bytes=2 * rmat_db.config.page_size,
        ).run(PageRankKernel(iterations=2))
        counters = result.host_profile.counters
        assert counters["io.sim_pages_fetched"] > 0
        assert counters["io.sim_bytes_read"] == result.storage_bytes_read
        assert counters["io.sim_adjacent_fetches"] >= 0

    def test_file_backed_io_counters(self, rmat_db, machine, tmp_path):
        from repro.format.io import FileBackedDatabase
        prefix = str(tmp_path / "g")
        save_database(rmat_db, prefix)
        db = FileBackedDatabase(prefix)
        result = GTSEngine(db, machine, host_profile=True).run(
            BFSKernel(0))
        counters = result.host_profile.counters
        assert counters["io.file_reads"] > 0
        assert counters["io.file_bytes_read"] >= (
            counters["io.file_reads"] * db.config.page_size)
        paths = {p.path for p in result.host_profile.phases}
        assert any(p.endswith("page_parse") for p in paths)

    def test_load_database_spans(self, rmat_db, tmp_path):
        prefix = str(tmp_path / "g")
        save_database(rmat_db, prefix)
        hp = HostProfiler(track_memory=False)
        load_database(prefix, host_profiler=hp)
        profile = hp.finish()
        paths = {p.path for p in profile.phases}
        assert {"load", "load/load_meta", "load/load_pages"} <= paths
        _assert_conservation(profile)


class TestDisabledPathIsFree:
    """The structural overhead guard: a disabled run must never import
    the profiler module, construct a profiler, or read the host clock.
    (The <1% wall-clock gate runs in ``bench_host_profile.py`` where
    warm repeats keep it stable.)"""

    def test_disabled_run_never_imports_host_module(self, rmat_db,
                                                    machine):
        saved = sys.modules.pop("repro.obs.host", None)
        try:
            result = GTSEngine(rmat_db, machine).run(BFSKernel(0))
            assert "repro.obs.host" not in sys.modules
            assert result.host_profile is None
        finally:
            if saved is not None:
                sys.modules["repro.obs.host"] = saved

    def test_disabled_run_survives_broken_profiler(self, rmat_db,
                                                   machine, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("disabled run constructed a profiler")

        monkeypatch.setattr(host_module, "HostProfiler", boom)
        result = GTSEngine(rmat_db, machine).run(BFSKernel(0))
        assert result.host_profile is None

    def test_host_clock_reads(self, rmat_db, machine, monkeypatch):
        calls = [0]
        real = host_module.perf_counter_ns

        def counting():
            calls[0] += 1
            return real()

        monkeypatch.setattr(host_module, "perf_counter_ns", counting)
        GTSEngine(rmat_db, machine).run(BFSKernel(0))
        assert calls[0] == 0, "disabled run read the host clock"
        GTSEngine(rmat_db, machine, host_profile=True).run(BFSKernel(0))
        assert calls[0] > 0


def _frozen_profile():
    """A deterministic hand-built profile for exporter tests."""
    return HostProfile(
        wall_seconds=2.0,
        phases=[
            HostPhase("run", 1, 1.5, 0.5, 1, 1.5, 1.5, 1024),
            HostPhase("run/kernel", 2, 1.0, 1.0, 4, 0.25, 0.4, -16),
            HostPhase("load", 1, 0.4, 0.4, 1, 0.4, 0.4, 2048),
        ],
        counters={"io.file_reads": 7, "io.file_bytes_read": 14336},
        tracemalloc_peak_bytes=1 << 20,
        events=[("run", 0, 1_500_000_000),
                ("run/kernel", 100, 250_000_000)],
        dropped_events=0)


class TestExporters:
    def test_flamegraph_is_byte_deterministic(self):
        a, b = _frozen_profile(), _frozen_profile()
        assert a.flamegraph() == b.flamegraph()
        lines = a.flamegraph().splitlines()
        assert "run;kernel 1000000" in lines
        assert "load 400000" in lines
        assert a.flamegraph().endswith("\n")

    def test_flamegraph_sorted_by_path(self):
        lines = _frozen_profile().flamegraph().splitlines()
        stacks = [line.rsplit(" ", 1)[0] for line in lines]
        assert stacks == sorted(stacks)

    def test_to_dict_roundtrip(self):
        original = _frozen_profile()
        payload = original.to_dict(include_events=True)
        restored = HostProfile.from_dict(payload)
        assert restored.to_dict(include_events=True) == payload

    def test_to_dict_carries_flat_metrics(self):
        payload = _frozen_profile().to_dict()
        assert payload["metrics"]["host.wall_seconds"] == 2.0
        assert payload["metrics"]["host.phase.run/kernel.seconds"] == 1.0
        assert payload["metrics"]["host.io.file_reads"] == 7.0

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(ConfigurationError):
            HostProfile.from_dict({"kind": "something-else"})

    def test_from_dict_rejects_newer_schema(self):
        payload = _frozen_profile().to_dict()
        payload["schema"] = 999
        with pytest.raises(ConfigurationError):
            HostProfile.from_dict(payload)

    def test_written_artifacts_are_byte_identical(self, tmp_path):
        profile = _frozen_profile()
        flame_a = tmp_path / "a.txt"
        flame_b = tmp_path / "b.txt"
        write_flamegraph(profile, str(flame_a))
        write_flamegraph(profile, str(flame_b))
        assert flame_a.read_bytes() == flame_b.read_bytes()
        json_a = tmp_path / "a.json"
        json_b = tmp_path / "b.json"
        write_host_profile(profile, str(json_a))
        write_host_profile(profile, str(json_b))
        assert json_a.read_bytes() == json_b.read_bytes()

    def test_load_host_profile_roundtrip(self, tmp_path):
        path = str(tmp_path / "p.json")
        write_host_profile(_frozen_profile(), path)
        assert (load_host_profile(path).to_dict()
                == _frozen_profile().to_dict())

    def test_chrome_trace_is_deterministic_and_valid(self):
        profile = _frozen_profile()
        trace_a = host_chrome_trace(profile)
        trace_b = host_chrome_trace(profile)
        assert (json.dumps(trace_a, sort_keys=True)
                == json.dumps(trace_b, sort_keys=True))
        validate_chrome_trace(trace_a)
        names = {event.get("args", {}).get("name")
                 for event in trace_a["traceEvents"]
                 if event.get("name") == "process_name"}
        assert "host/profile" in names

    def test_merge_leaves_recorder_untouched(self, rmat_db, machine):
        result = GTSEngine(rmat_db, machine, tracing=True,
                           host_profile=True).run(BFSKernel(0))
        before = len(list(result.trace))
        merged = merge_host_lanes(result.trace, result.host_profile)
        assert len(list(result.trace)) == before
        merged_events = list(merged)
        assert len(merged_events) > before
        assert any(event.process == "host/profile"
                   for event in merged_events)
        validate_chrome_trace(host_chrome_trace(
            result.host_profile, recorder=result.trace))


class TestGating:
    def test_identical_profiles_are_unchanged(self):
        report = compare_metrics(_frozen_profile().to_dict(),
                                 _frozen_profile().to_dict())
        assert report.verdict == "unchanged"

    def test_doubled_phase_time_regresses(self):
        before = _frozen_profile()
        after = HostProfile(
            wall_seconds=4.0,
            phases=[
                HostPhase("run", 1, 3.5, 2.5, 1, 3.5, 3.5, 1024),
                HostPhase("run/kernel", 2, 1.0, 1.0, 4, 0.25, 0.4, -16),
                HostPhase("load", 1, 0.4, 0.4, 1, 0.4, 0.4, 2048),
            ],
            counters=dict(before.counters),
            tracemalloc_peak_bytes=1 << 20)
        report = compare_metrics(before.to_dict(), after.to_dict())
        assert report.verdict == "regressed"
        regressed = {delta.name for delta in report.regressions()}
        assert "host.wall_seconds" in regressed
        assert "host.phase.run.seconds" in regressed

    def test_memory_spike_regresses(self):
        before = _frozen_profile()
        after_payload = before.to_dict()
        after_payload["metrics"] = dict(after_payload["metrics"])
        after_payload["metrics"]["host.tracemalloc_peak_bytes"] = float(
            8 << 20)
        report = compare_metrics(before.to_dict(), after_payload)
        assert "host.tracemalloc_peak_bytes" in {
            delta.name for delta in report.regressions()}

    def test_collect_run_metrics_includes_host(self, rmat_db, machine):
        from repro.obs import collect_run_metrics
        result = GTSEngine(rmat_db, machine, host_profile=True).run(
            BFSKernel(0))
        registry = collect_run_metrics(result)
        assert "host.wall_seconds" in registry
        assert "host.coverage" in registry
        assert "host.phase.run.seconds" in registry


class TestHistoryNoBaseline:
    def test_load_history_missing_file_is_empty(self, tmp_path):
        from repro.obs.history import load_history
        assert load_history(str(tmp_path / "nope.jsonl")) == []

    def test_compare_to_baseline_missing_file(self, tmp_path):
        from repro.obs.history import compare_to_baseline
        report, baseline = compare_to_baseline(
            str(tmp_path / "nope.jsonl"), "bench", {"metrics": {"x": 1}})
        assert report is None and baseline is None

    def test_empty_file_is_empty_history(self, tmp_path):
        from repro.obs.history import load_history
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert load_history(str(path)) == []

    def test_cli_history_missing_file_exits_zero(self, tmp_path, capsys):
        from repro.cli import main
        code = main(["obs", "history", "--path",
                     str(tmp_path / "nope.jsonl")])
        assert code == 0
        assert "no history records" in capsys.readouterr().out

    def test_cli_compare_missing_history_exits_zero(self, tmp_path,
                                                    capsys):
        from repro.cli import main
        artifact = tmp_path / "current.json"
        artifact.write_text(json.dumps({"metrics": {"x": 1.0}}))
        code = main(["obs", "compare", "--history",
                     str(tmp_path / "nope.jsonl"),
                     "--benchmark", "bench", str(artifact)])
        assert code == 0
        assert "no matching" in capsys.readouterr().out


class TestCLIHostProfile:
    @pytest.fixture()
    def edges_file(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("".join("%d %d\n" % (i, i + 1)
                                for i in range(64)))
        return str(path)

    def test_run_writes_host_artifacts(self, edges_file, tmp_path,
                                       capsys):
        from repro.cli import main
        flame = tmp_path / "flame.txt"
        profile_json = tmp_path / "host.json"
        trace = tmp_path / "trace.json"
        code = main(["run", "--edges", edges_file, "--algorithm", "bfs",
                     "--host-profile", "--flamegraph", str(flame),
                     "--host-profile-out", str(profile_json),
                     "--trace-out", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "host profile:" in out
        text = flame.read_text()
        assert text.splitlines() and text.endswith("\n")
        assert any(line.startswith("load ")
                   for line in text.splitlines())
        profile = load_host_profile(str(profile_json))
        assert profile.phase("load") is not None
        assert profile.phase("run") is not None
        payload = json.loads(trace.read_text())
        validate_chrome_trace(payload)
        names = {event.get("args", {}).get("name")
                 for event in payload["traceEvents"]
                 if event.get("name") == "process_name"}
        assert "host/profile" in names

    def test_flag_implies_profiling(self, edges_file, tmp_path):
        from repro.cli import main
        profile_json = tmp_path / "host.json"
        code = main(["run", "--edges", edges_file, "--algorithm", "bfs",
                     "--host-profile-out", str(profile_json)])
        assert code == 0
        assert os.path.exists(str(profile_json))

    def test_profile_command_prints_host_summary(self, edges_file,
                                                 capsys):
        from repro.cli import main
        code = main(["profile", "--edges", edges_file,
                     "--algorithm", "bfs", "--host-profile"])
        assert code == 0
        assert "host profile:" in capsys.readouterr().out
