"""Tests for the timeline resources (Resource, SlotPool)."""

import pytest

from repro.errors import SimulationError
from repro.hardware.clock import Resource, SlotPool


class TestResource:
    def test_serializes_activities(self):
        resource = Resource("r")
        start1, end1 = resource.book(0.0, 2.0)
        start2, end2 = resource.book(0.0, 3.0)
        assert (start1, end1) == (0.0, 2.0)
        assert (start2, end2) == (2.0, 5.0)

    def test_respects_earliest(self):
        resource = Resource("r")
        start, end = resource.book(10.0, 1.0)
        assert (start, end) == (10.0, 11.0)

    def test_idle_gap_not_counted_busy(self):
        resource = Resource("r")
        resource.book(5.0, 1.0)
        assert resource.busy_time == 1.0
        assert resource.utilisation(10.0) == pytest.approx(0.1)

    def test_zero_duration_allowed(self):
        resource = Resource("r")
        start, end = resource.book(1.0, 0.0)
        assert start == end == 1.0

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            Resource("r").book(0.0, -1.0)

    def test_negative_earliest_rejected(self):
        with pytest.raises(SimulationError):
            Resource("r").book(-0.5, 1.0)

    def test_reset(self):
        resource = Resource("r")
        resource.book(0.0, 5.0)
        resource.reset()
        assert resource.available_at == 0.0
        assert resource.busy_time == 0.0
        assert resource.num_activities == 0

    def test_activity_count(self):
        resource = Resource("r")
        for _ in range(4):
            resource.book(0.0, 1.0)
        assert resource.num_activities == 4

    def test_utilisation_capped_at_one(self):
        resource = Resource("r")
        resource.book(0.0, 10.0)
        assert resource.utilisation(5.0) == 1.0

    def test_utilisation_of_empty_horizon(self):
        assert Resource("r").utilisation(0.0) == 0.0


class TestSlotPool:
    def test_parallel_slots_overlap(self):
        pool = SlotPool("p", 2)
        _, start1, _ = pool.book(0.0, 5.0)
        _, start2, _ = pool.book(0.0, 5.0)
        assert start1 == 0.0
        assert start2 == 0.0

    def test_third_booking_waits(self):
        pool = SlotPool("p", 2)
        pool.book(0.0, 5.0)
        pool.book(0.0, 3.0)
        slot, start, _ = pool.book(0.0, 1.0)
        assert start == 3.0  # lands on the slot that freed first

    def test_book_on_specific_slot(self):
        pool = SlotPool("p", 3)
        start, end = pool.book_on(1, 0.0, 2.0)
        start2, _ = pool.book_on(1, 0.0, 2.0)
        assert start == 0.0
        assert start2 == 2.0

    def test_all_done_at_is_max(self):
        pool = SlotPool("p", 2)
        pool.book_on(0, 0.0, 1.0)
        pool.book_on(1, 0.0, 7.0)
        assert pool.all_done_at() == 7.0

    def test_busy_time_sums_slots(self):
        pool = SlotPool("p", 2)
        pool.book(0.0, 1.0)
        pool.book(0.0, 2.0)
        assert pool.busy_time() == 3.0

    def test_single_slot_serializes(self):
        pool = SlotPool("p", 1)
        pool.book(0.0, 2.0)
        _, start, _ = pool.book(0.0, 2.0)
        assert start == 2.0

    def test_reset(self):
        pool = SlotPool("p", 2)
        pool.book(0.0, 3.0)
        pool.reset()
        assert pool.all_done_at() == 0.0

    def test_needs_at_least_one_slot(self):
        with pytest.raises(SimulationError):
            SlotPool("p", 0)
