"""Tests for the multiprocess host backend.

The process backend is a host-side optimisation: sharding a round's
segment reduction across forked workers must leave run results —
values, simulated time, every compared counter — bit-identical to the
serial path.  These tests cover the shard-boundary maths
(:func:`shard_bounds`), the pool mechanics (rounds, errors, shutdown),
the registry's reuse/eviction policy, and the end-to-end engine
equivalence.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import GTSEngine, PageRankKernel, WCCKernel
from repro.core.parallel import (
    WorkerPool,
    WorkerPoolRegistry,
    default_workers,
    shard_bounds,
)
from repro.errors import ConfigurationError
from repro.format import PageFormatConfig, build_database
from repro.format.io import FileBackedDatabase, save_database
from repro.graphgen import Graph
from repro.hardware.specs import scaled_workstation
from repro.units import KB


# ----------------------------------------------------------------------
# shard_bounds
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_shard_bounds_partition_and_reduce_identically(data):
    """Bounds are monotone, cover [0, num_segments), and a per-shard
    ``reduceat`` stitched back together is bit-identical to the
    full-batch ``reduceat`` — the property the backend's determinism
    rests on."""
    num_segments = data.draw(st.integers(1, 60))
    # Segments are non-empty by construction in the round batches (a
    # segment is one page's slice of scattered edges).
    seg_lengths = data.draw(st.lists(
        st.integers(1, 12), min_size=num_segments,
        max_size=num_segments))
    seg_starts = np.zeros(num_segments, dtype=np.int64)
    np.cumsum(seg_lengths[:-1], out=seg_starts[1:])
    num_edges = int(seg_starts[-1]) + seg_lengths[-1]
    workers = data.draw(st.integers(1, 9))
    bounds = shard_bounds(seg_starts, num_segments, num_edges, workers)
    assert bounds[0] == 0 and bounds[-1] == num_segments
    assert np.all(np.diff(bounds) >= 0)
    rng = np.random.default_rng(data.draw(st.integers(0, 10 ** 6)))
    contrib = rng.random(num_edges)
    full = np.add.reduceat(contrib, seg_starts)
    stitched = np.empty(num_segments, dtype=np.float64)
    for w in range(len(bounds) - 1):
        s0, s1 = int(bounds[w]), int(bounds[w + 1])
        if s0 >= s1:
            continue
        lo = int(seg_starts[s0])
        hi = int(seg_starts[s1]) if s1 < num_segments else num_edges
        stitched[s0:s1] = np.add.reduceat(contrib[lo:hi],
                                          seg_starts[s0:s1] - lo)
    np.testing.assert_array_equal(stitched, full)


def test_shard_bounds_single_worker_is_trivial():
    seg_starts = np.asarray([0, 3, 7], dtype=np.int64)
    np.testing.assert_array_equal(
        shard_bounds(seg_starts, 3, 10, 1), [0, 3])
    np.testing.assert_array_equal(
        shard_bounds(seg_starts, 1, 10, 4), [0, 1])


def test_default_workers_leaves_a_core_for_the_parent():
    assert 1 <= default_workers() <= 8


# ----------------------------------------------------------------------
# WorkerPool
# ----------------------------------------------------------------------
def _square_shard(vector, s0, s1):
    return vector[s0:s1] ** 2


def test_worker_pool_rounds_reuse_and_shutdown():
    template = np.zeros(6, dtype=np.float64)
    pool = WorkerPool(_square_shard, [0, 3, 6], template, np.float64, 6)
    try:
        for i in range(3):
            vector = np.arange(6, dtype=np.float64) + i
            got = pool.start_round(vector).collect()
            np.testing.assert_array_equal(got, vector ** 2)
        assert pool.rounds_dispatched == 3
        # The returned array is a copy: it survives the next round.
        first = pool.start_round(np.ones(6)).collect()
        pool.start_round(np.full(6, 2.0)).collect()
        np.testing.assert_array_equal(first, np.ones(6))
    finally:
        pool.shutdown()
    pool.shutdown()  # idempotent
    with pytest.raises(ConfigurationError):
        pool.start_round(template)


def test_worker_pool_rejects_collect_without_round():
    pool = WorkerPool(_square_shard, [0, 2], np.zeros(2), np.float64, 2)
    try:
        with pytest.raises(ConfigurationError):
            pool.collect()  # nothing in flight
        np.testing.assert_array_equal(
            pool.start_round(np.ones(2)).collect(), np.ones(2))
    finally:
        pool.shutdown()


def _failing_shard(vector, s0, s1):
    raise ValueError("boom in shard [%d, %d)" % (s0, s1))


def test_worker_pool_surfaces_worker_errors():
    pool = WorkerPool(_failing_shard, [0, 2], np.zeros(2), np.float64, 2)
    try:
        with pytest.raises(RuntimeError, match="worker 0 failed"):
            pool.start_round(np.ones(2)).collect()
        # The pool stays usable for the error path's callers to shut
        # it down cleanly.
        assert not pool.closed
    finally:
        pool.shutdown()


# ----------------------------------------------------------------------
# WorkerPoolRegistry
# ----------------------------------------------------------------------
class _FakeBatch:
    num_segments = 4
    num_edges = 12
    seg_starts = np.asarray([0, 3, 6, 9], dtype=np.int64)


class _FakeKernel:
    name = "fake"
    shard_dtype = np.float64

    def shard_params(self, state):
        return ()

    def round_vector(self, state):
        return np.zeros(12, dtype=np.float64)

    def make_shard_fn(self, batch, state):
        return _square_shard


class _FakeDB:
    def __init__(self, version=0):
        self.topology_version = version


def test_registry_reuses_and_evicts_by_topology_version():
    registry = WorkerPoolRegistry()
    db = _FakeDB(version=1)
    kernel = _FakeKernel()
    try:
        first = registry.get(db, kernel, None, _FakeBatch(), workers=2)
        again = registry.get(db, kernel, None, _FakeBatch(), workers=2)
        assert first is again
        assert registry.created == 1 and registry.reused == 1
        stats = registry.stats()
        assert stats["pools"] == 1
        assert stats["workers"] == {"fake/1": 2}
        db.topology_version = 2  # a dynamic update landed
        fresh = registry.get(db, kernel, None, _FakeBatch(), workers=2)
        assert fresh is not first
        assert first.closed  # stale pool was shut down on the way
        assert registry.evicted == 1
    finally:
        registry.shutdown()
    assert registry.stats()["pools"] == 0


# ----------------------------------------------------------------------
# Engine equivalence
# ----------------------------------------------------------------------
def _random_db(seed, num_vertices=80, num_edges=360, symmetrise=False):
    rng = np.random.default_rng(seed)
    graph = Graph.from_edges(
        num_vertices,
        rng.integers(0, num_vertices, size=num_edges),
        rng.integers(0, num_vertices, size=num_edges))
    if symmetrise:
        graph = graph.symmetrised()
    return build_database(graph, PageFormatConfig(2, 2, 1 * KB))


def _assert_runs_identical(serial, process):
    assert serial.backend == "serial"
    assert process.backend == "process"
    assert process.elapsed_seconds == serial.elapsed_seconds
    assert process.num_rounds == serial.num_rounds
    for key in serial.values:
        np.testing.assert_array_equal(process.values[key],
                                      serial.values[key])
    serial_dict, process_dict = serial.to_dict(), process.to_dict()
    for key in ("cache_hits", "cache_misses", "storage_bytes_read",
                "pages_streamed", "bytes_to_gpu", "transfer_busy_seconds",
                "kernel_busy_seconds", "edges_traversed"):
        assert process_dict.get(key) == serial_dict.get(key), key
    for round_serial, round_process in zip(serial.rounds, process.rounds):
        assert (dataclasses.asdict(round_process)
                == dataclasses.asdict(round_serial))


@pytest.mark.parametrize("kernel_factory,symmetrise", [
    (lambda: PageRankKernel(iterations=4), False),
    (lambda: WCCKernel(), True),
], ids=["pagerank", "wcc"])
def test_process_backend_matches_serial(kernel_factory, symmetrise):
    db = _random_db(11, symmetrise=symmetrise)
    machine = scaled_workstation(num_gpus=2, num_ssds=2)
    serial = GTSEngine(db, machine, execution="batched").run(
        kernel_factory())
    engine = GTSEngine(db, machine, execution="batched",
                       backend="process", backend_workers=2)
    try:
        process = engine.run(kernel_factory())
    finally:
        engine.close()
    _assert_runs_identical(serial, process)


def test_process_backend_reuses_pools_across_runs():
    """Repeated runs through one engine hit the same forked pool."""
    db = _random_db(23)
    machine = scaled_workstation(num_gpus=2, num_ssds=1)
    engine = GTSEngine(db, machine, execution="batched",
                       backend="process", backend_workers=2)
    try:
        first = engine.run(PageRankKernel(iterations=3))
        second = engine.run(PageRankKernel(iterations=3))
        registry = engine._pool_registry()
        assert registry.created >= 1
        assert registry.reused >= 1
    finally:
        engine.close()
    assert registry.stats()["pools"] == 0
    np.testing.assert_array_equal(first.values["rank"],
                                  second.values["rank"])


def test_process_backend_on_mmap_store(tmp_path):
    """The full stack: forked workers attached to the parent's mapped
    pages file, still bit-identical to the serial copy-mode run."""
    db = _random_db(37)
    prefix = str(tmp_path / "db")
    save_database(db, prefix)
    machine = scaled_workstation(num_gpus=2, num_ssds=2)
    serial = GTSEngine(FileBackedDatabase(prefix, pool_pages=16),
                       machine, execution="batched").run(
        PageRankKernel(iterations=4))
    mapped = FileBackedDatabase(prefix, pool_pages=16, mode="mmap")
    engine = GTSEngine(mapped, machine, execution="batched",
                       backend="process", backend_workers=2)
    try:
        process = engine.run(PageRankKernel(iterations=4))
    finally:
        engine.close()
        mapped.close()
    _assert_runs_identical(serial, process)


def test_process_backend_falls_back_without_shard_support():
    """Kernels without a shard factoring (BFS) run serially even under
    backend='process' — same results, no pools built."""
    from repro.core import BFSKernel
    db = _random_db(41)
    machine = scaled_workstation(num_gpus=2, num_ssds=1)
    serial = GTSEngine(db, machine).run(BFSKernel(start_vertex=0))
    engine = GTSEngine(db, machine, backend="process")
    try:
        process = engine.run(BFSKernel(start_vertex=0))
        assert engine._worker_pools is None or \
            engine._worker_pools.stats()["pools"] == 0
    finally:
        engine.close()
    assert process.elapsed_seconds == serial.elapsed_seconds
    np.testing.assert_array_equal(process.values["level"],
                                  serial.values["level"])


def test_engine_rejects_unknown_backend():
    db = _random_db(5, num_vertices=10, num_edges=20)
    machine = scaled_workstation(num_gpus=1, num_ssds=1)
    with pytest.raises(ConfigurationError):
        GTSEngine(db, machine, backend="threads")
