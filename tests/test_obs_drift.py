"""Cost-model drift: the DES must stay near the Section 5 equations.

The drift report re-evaluates Eq. 1 / Eq. 2 with each run's measured
workload and compares against the simulated elapsed time.  These tests
pin the regime where the equations describe the pipeline directly —
cache off, streams at the concurrency knee — and bound the drift below
20 % on the smallest registry datasets for a full-scan kernel
(PageRank, Eq. 1) and a traversal kernel (BFS, Eq. 2).  A scheduler
change that serializes copies against kernels, or double-books a
resource, breaks this bound long before it breaks a correctness test.
"""

import pytest

from repro.bench.datasets import (
    dataset_database,
    dataset_graph,
    default_start_vertex,
)
from repro.core import BFSKernel, GTSEngine, PageRankKernel
from repro.core.result import RunResult
from repro.errors import ConfigurationError
from repro.hardware.specs import scaled_workstation
from repro.obs import MetricsRegistry, cost_model_drift, record_drift

DATASET = "rmat26"
DRIFT_BOUND = 0.20


@pytest.fixture(scope="module")
def db():
    return dataset_database(DATASET)


@pytest.fixture(scope="module")
def drift_machine():
    return scaled_workstation(num_gpus=2, num_ssds=2)


def _run_and_drift(db, machine, kernel):
    engine = GTSEngine(db, machine, num_streams=32,
                       enable_caching=False)
    result = engine.run(kernel, dataset_name=DATASET)
    return cost_model_drift(result, db, machine, kernel)


class TestDriftBound:
    def test_pagerank_drift_below_bound(self, db, drift_machine):
        kernel = PageRankKernel(iterations=3)
        report = _run_and_drift(db, drift_machine, kernel)
        assert report.model == "eq1"
        assert report.abs_drift < DRIFT_BOUND, report.summary()

    def test_bfs_drift_below_bound(self, db, drift_machine):
        graph = dataset_graph(DATASET)
        kernel = BFSKernel(default_start_vertex(graph))
        report = _run_and_drift(db, drift_machine, kernel)
        assert report.model == "eq2"
        assert report.abs_drift < DRIFT_BOUND, report.summary()


class TestReportShape:
    def test_components_compose_the_prediction(self, db, drift_machine):
        report = _run_and_drift(db, drift_machine,
                                PageRankKernel(iterations=3))
        parts = report.components
        assert report.predicted_seconds == pytest.approx(
            parts["wa_broadcast"] + parts["pipeline"] + parts["sync"])
        assert parts["pipeline"] >= max(parts["transfer"],
                                        parts["kernel"]) - 1e-12

    def test_summary_mentions_the_model(self, db, drift_machine):
        report = _run_and_drift(db, drift_machine,
                                PageRankKernel(iterations=3))
        assert "eq1" in report.summary()
        assert "drift" in report.summary()

    def test_signed_drift(self):
        report = _make_report(simulated=1.2, predicted=1.0)
        assert report.drift == pytest.approx(0.2)
        assert report.abs_drift == pytest.approx(0.2)
        slower_model = _make_report(simulated=0.8, predicted=1.0)
        assert slower_model.drift == pytest.approx(-0.2)

    def test_empty_run_rejected(self, db, drift_machine):
        empty = RunResult(algorithm="BFS", dataset=DATASET, values={},
                          elapsed_seconds=0.0, wall_seconds=0.0,
                          num_rounds=0, rounds=[])
        with pytest.raises(ConfigurationError):
            cost_model_drift(empty, db, drift_machine, BFSKernel(0))


def _make_report(simulated, predicted):
    from repro.obs import CostModelDrift
    return CostModelDrift(algorithm="BFS", dataset=DATASET, model="eq2",
                          simulated_seconds=simulated,
                          predicted_seconds=predicted, components={})


class TestRecordDrift:
    def test_gauges_emitted(self, db, drift_machine):
        report = _run_and_drift(db, drift_machine,
                                PageRankKernel(iterations=3))
        registry = record_drift(report, MetricsRegistry())
        payload = registry.as_dict()["metrics"]
        assert payload["cost_model.drift"]["value"] \
            == pytest.approx(report.drift)
        assert payload["cost_model.abs_drift"]["value"] \
            == pytest.approx(report.abs_drift)
        assert payload["cost_model.predicted_seconds"]["value"] \
            == pytest.approx(report.predicted_seconds)
        assert registry.meta["cost_model"] == "eq1"
