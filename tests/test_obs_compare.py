"""Tests for run comparison and benchmark history
(:mod:`repro.obs.compare`, :mod:`repro.obs.history`)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.compare import (
    IMPROVED,
    REGRESSED,
    UNCHANGED,
    ToleranceRule,
    compare_metrics,
    flatten_metrics,
    load_rules,
)
from repro.obs.history import (
    append_history,
    compare_to_baseline,
    describe_history,
    latest_baseline,
    load_history,
    make_record,
)


class TestToleranceRule:
    def test_verdicts_lower_is_better(self):
        rule = ToleranceRule("t", "lower", abs_tol=0.1)
        assert rule.verdict(1.0, 1.05) == UNCHANGED
        assert rule.verdict(1.0, 0.5) == IMPROVED
        assert rule.verdict(1.0, 1.5) == REGRESSED

    def test_verdicts_higher_is_better(self):
        rule = ToleranceRule("t", "higher", rel_tol=0.1)
        assert rule.verdict(10.0, 10.5) == UNCHANGED
        assert rule.verdict(10.0, 12.0) == IMPROVED
        assert rule.verdict(10.0, 8.0) == REGRESSED

    def test_tolerance_is_max_of_abs_and_rel(self):
        rule = ToleranceRule("t", rel_tol=0.1, abs_tol=2.0)
        assert rule.tolerance(5.0) == 2.0
        assert rule.tolerance(100.0) == pytest.approx(10.0)

    def test_glob_matching(self):
        rule = ToleranceRule("kernels.*.speedup_best")
        assert rule.matches("kernels.pagerank.speedup_best")
        assert not rule.matches("kernels.pagerank.cold_seconds")

    def test_bad_direction_rejected(self):
        with pytest.raises(ConfigurationError):
            ToleranceRule("t", "sideways")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            ToleranceRule("t", rel_tol=-1.0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            ToleranceRule.from_dict({"pattern": "t", "typo": 1})


class TestFlatten:
    def test_nested_dicts_dot_join(self):
        flat = flatten_metrics(
            {"a": {"b": 1, "c": {"d": 2.5}}, "e": 3})
        assert flat == {"a.b": 1.0, "a.c.d": 2.5, "e": 3.0}

    def test_skips_identity_and_non_numeric(self):
        flat = flatten_metrics({
            "generated": "2026-08-06", "host": {"python": "3.12"},
            "meta": {"scale": 13}, "gate_passed": True,
            "notes": "text", "warm": [1, 2], "value": 7})
        assert flat == {"value": 7.0}

    def test_registry_snapshot_shape(self):
        flat = flatten_metrics({
            "meta": {"algorithm": "BFS"},
            "metrics": {
                "run.elapsed_seconds": {"kind": "gauge", "value": 0.5},
                "round.latency_seconds": {
                    "kind": "histogram",
                    "value": {"count": 3, "p50": 0.1}},
            }})
        assert flat["run.elapsed_seconds"] == 0.5
        assert flat["round.latency_seconds.count"] == 3.0

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigurationError):
            flatten_metrics([1, 2])


class TestCompare:
    RULES = [ToleranceRule("run.elapsed_seconds", "lower", rel_tol=0.01),
             ToleranceRule("run.mteps", "higher", rel_tol=0.01)]

    def test_unchanged_within_tolerance(self):
        report = compare_metrics(
            {"run": {"elapsed_seconds": 1.0, "mteps": 100.0}},
            {"run": {"elapsed_seconds": 1.001, "mteps": 100.1}},
            rules=self.RULES)
        assert report.verdict == UNCHANGED
        assert report.exit_code == 0

    def test_injected_regression_trips_the_gate(self):
        """The PR 5 acceptance check: a synthetic slowdown must come
        back as ``regressed`` with a non-zero exit code."""
        report = compare_metrics(
            {"run": {"elapsed_seconds": 1.0, "mteps": 100.0}},
            {"run": {"elapsed_seconds": 1.5, "mteps": 66.0}},
            rules=self.RULES)
        assert report.verdict == REGRESSED
        assert report.exit_code == 1
        assert {d.name for d in report.regressions()} \
            == {"run.elapsed_seconds", "run.mteps"}

    def test_improvement(self):
        report = compare_metrics(
            {"run": {"elapsed_seconds": 1.0}},
            {"run": {"elapsed_seconds": 0.5}},
            rules=self.RULES)
        assert report.verdict == IMPROVED
        assert report.exit_code == 0

    def test_regression_outranks_improvement(self):
        report = compare_metrics(
            {"run": {"elapsed_seconds": 1.0, "mteps": 100.0}},
            {"run": {"elapsed_seconds": 0.5, "mteps": 50.0}},
            rules=self.RULES)
        assert report.verdict == REGRESSED

    def test_untracked_metrics_ignored(self):
        report = compare_metrics(
            {"run": {"elapsed_seconds": 1.0}, "noise": 1.0},
            {"run": {"elapsed_seconds": 1.0}, "noise": 99.0},
            rules=self.RULES)
        assert report.verdict == UNCHANGED
        assert len(report.deltas) == 1

    def test_added_and_removed_surfaced(self):
        report = compare_metrics(
            {"run": {"elapsed_seconds": 1.0, "mteps": 10.0}},
            {"run": {"elapsed_seconds": 1.0}},
            rules=self.RULES)
        assert report.removed == ["run.mteps"]
        report = compare_metrics(
            {"run": {"elapsed_seconds": 1.0}},
            {"run": {"elapsed_seconds": 1.0, "mteps": 10.0}},
            rules=self.RULES)
        assert report.added == ["run.mteps"]

    def test_first_matching_rule_wins(self):
        rules = [ToleranceRule("run.*", "lower", rel_tol=1.0),
                 ToleranceRule("run.elapsed_seconds", "lower")]
        report = compare_metrics(
            {"run": {"elapsed_seconds": 1.0}},
            {"run": {"elapsed_seconds": 1.5}}, rules=rules)
        # The wide run.* band matched first: within tolerance.
        assert report.verdict == UNCHANGED

    def test_report_serializes(self):
        report = compare_metrics(
            {"run": {"elapsed_seconds": 1.0}},
            {"run": {"elapsed_seconds": 2.0}}, rules=self.RULES)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["verdict"] == REGRESSED
        assert payload["deltas"][0]["rel_change"] == 1.0
        assert "REGRESSED" in report.summary()

    def test_load_rules_roundtrip(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"pattern": "x", "direction": "higher", "abs_tol": 0.5}]}))
        rules = load_rules(str(path))
        assert rules == [ToleranceRule("x", "higher", abs_tol=0.5)]

    def test_load_rules_rejects_empty(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("[]")
        with pytest.raises(ConfigurationError):
            load_rules(str(path))

    def test_checked_in_regression_rules_parse(self):
        import os
        root = os.path.dirname(os.path.dirname(os.path.abspath(
            __file__)))
        rules = load_rules(os.path.join(root, "benchmarks",
                                        "regression_rules.json"))
        assert any(r.matches("kernels.pagerank.simulated_elapsed_seconds")
                   for r in rules)
        assert any(r.matches("dormant_overhead") for r in rules)


class TestHistory:
    def _append(self, path, elapsed, quick=True, generated="t0"):
        return append_history(
            str(path), "bench",
            {"run": {"elapsed_seconds": elapsed}},
            meta={"quick": quick, "scale": 13}, generated=generated)

    def test_records_roundtrip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        self._append(path, 1.0, generated="t0")
        self._append(path, 2.0, generated="t1")
        records = load_history(str(path))
        assert [r["generated"] for r in records] == ["t0", "t1"]
        assert records[0]["metrics"] == {"run.elapsed_seconds": 1.0}
        assert records[0]["schema"] == 1
        assert records[0]["kind"] == "gts-bench-history"

    def test_benchmark_filter(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        self._append(path, 1.0)
        append_history(str(path), "other", {"x": 1})
        assert len(load_history(str(path))) == 2
        assert len(load_history(str(path), benchmark="bench")) == 1

    def test_latest_baseline_matches_meta(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        self._append(path, 1.0, quick=True, generated="t0")
        self._append(path, 2.0, quick=False, generated="t1")
        records = load_history(str(path))
        assert latest_baseline(
            records, {"quick": True})["generated"] == "t0"
        assert latest_baseline(
            records, {"quick": False})["generated"] == "t1"
        assert latest_baseline(records, {"scale": 99}) is None
        # No filter: newest wins.
        assert latest_baseline(records)["generated"] == "t1"

    def test_compare_to_baseline_regression(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        self._append(path, 1.0)
        report, baseline = compare_to_baseline(
            str(path), "bench", {"run": {"elapsed_seconds": 1.5}},
            rules=[ToleranceRule("run.elapsed_seconds", "lower",
                                 rel_tol=0.01)],
            match_meta={"quick": True})
        assert baseline["generated"] == "t0"
        assert report.verdict == REGRESSED
        assert report.exit_code == 1

    def test_compare_to_baseline_no_match(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        self._append(path, 1.0, quick=True)
        report, baseline = compare_to_baseline(
            str(path), "bench", {"run": {"elapsed_seconds": 1.0}},
            match_meta={"quick": False})
        assert report is None and baseline is None

    def test_mangled_line_fails_loudly(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        self._append(path, 1.0)
        with open(path, "a") as handle:
            handle.write("{not json\n")
        with pytest.raises(ConfigurationError):
            load_history(str(path))

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(ConfigurationError):
            load_history(str(path))

    def test_newer_schema_rejected(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        record = make_record("bench", {"x": 1})
        record["schema"] = 999
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ConfigurationError):
            load_history(str(path))

    def test_unnamed_record_rejected(self):
        with pytest.raises(ConfigurationError):
            make_record("", {"x": 1})

    def test_describe(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        self._append(path, 1.0, generated="t0")
        self._append(path, 2.0, generated="t1")
        text = describe_history(load_history(str(path)), limit=1)
        assert "t1" in text and "t0" not in text
        assert "1 older record(s)" in text
        assert describe_history([]) == "no history records"
