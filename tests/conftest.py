"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.format import PageFormatConfig, build_database
from repro.graphgen import Graph, generate_rmat
from repro.hardware.specs import scaled_workstation
from repro.units import KB


@pytest.fixture(scope="session")
def small_config():
    """A (2,2) config with tiny pages, forcing multi-page layouts."""
    return PageFormatConfig(page_id_bytes=2, slot_bytes=2, page_size=2 * KB)


@pytest.fixture(scope="session")
def weighted_config():
    return PageFormatConfig(page_id_bytes=2, slot_bytes=2, page_size=2 * KB,
                            weight_bytes=4)


@pytest.fixture(scope="session")
def rmat_graph():
    """A medium R-MAT graph: skewed degrees, some large-page vertices."""
    return generate_rmat(11, edge_factor=16, seed=42)


@pytest.fixture(scope="session")
def rmat_db(rmat_graph, small_config):
    db = build_database(rmat_graph, small_config, name="rmat11-test")
    db.validate()
    return db


@pytest.fixture(scope="session")
def weighted_graph(rmat_graph):
    return rmat_graph.with_random_weights(seed=7)


@pytest.fixture(scope="session")
def weighted_db(weighted_graph, weighted_config):
    db = build_database(weighted_graph, weighted_config,
                        name="rmat11-weighted")
    db.validate()
    return db


@pytest.fixture(scope="session")
def machine():
    """The scaled two-GPU, two-SSD workstation."""
    return scaled_workstation(num_gpus=2, num_ssds=2)


@pytest.fixture(scope="session")
def single_gpu_machine():
    return scaled_workstation(num_gpus=1, num_ssds=1)


@pytest.fixture
def line_graph():
    """A 6-vertex path: 0 -> 1 -> ... -> 5 (deterministic traversals)."""
    sources = np.asarray([0, 1, 2, 3, 4])
    targets = np.asarray([1, 2, 3, 4, 5])
    return Graph.from_edges(6, sources, targets)


@pytest.fixture
def diamond_graph():
    """0 -> {1, 2} -> 3: two equal shortest paths (exercises BC/sigma)."""
    sources = np.asarray([0, 0, 1, 2])
    targets = np.asarray([1, 2, 3, 3])
    return Graph.from_edges(4, sources, targets)
