"""Tests for the CPU (Figure 7) and GPU (Figure 8) baseline engines."""

import numpy as np
import pytest

from repro.baselines import reference
from repro.baselines.cpu import (
    CPUHostSpec,
    GaloisEngine,
    LigraEngine,
    LigraPlusEngine,
    MTGLEngine,
    paper_cpu_host,
    scaled_cpu_host,
)
from repro.baselines.gpu import (
    CuShaEngine,
    MapGraphEngine,
    TOTEM_PARTITION_TABLE,
    TotemEngine,
)
from repro.errors import OutOfMemoryError
from repro.graphgen import generate_rmat
from repro.hardware.specs import GPUSpec
from repro.units import GB, MB

CPU_ENGINES = [MTGLEngine, GaloisEngine, LigraEngine, LigraPlusEngine]


@pytest.fixture(scope="module")
def graph():
    return generate_rmat(9, edge_factor=8, seed=44)


class TestCPUHost:
    def test_paper_shape(self):
        host = paper_cpu_host()
        assert host.num_threads == 16
        assert host.main_memory == 128 * GB

    def test_scaled(self):
        host = scaled_cpu_host(1024)
        assert host.main_memory == 128 * GB // 1024
        assert host.num_threads == 16


class TestCPUEngines:
    @pytest.mark.parametrize("engine_cls", CPU_ENGINES)
    def test_bfs_values_exact(self, engine_cls, graph):
        result = engine_cls().run_bfs(graph, 0)
        assert np.array_equal(result.values["level"],
                              reference.bfs_levels(graph, 0))

    @pytest.mark.parametrize("engine_cls", CPU_ENGINES)
    def test_pagerank_values_exact(self, engine_cls, graph):
        result = engine_cls().run_pagerank(graph, iterations=3)
        assert np.allclose(result.values["rank"],
                           reference.pagerank(graph, iterations=3))

    def test_mtgl_is_slowest(self, graph):
        times = {cls.name: cls().run_pagerank(graph, 5).elapsed_seconds
                 for cls in CPU_ENGINES}
        assert times["MTGL"] == max(times.values())

    def test_ligra_beats_galois(self, graph):
        start = int(np.argmax(graph.out_degrees()))
        assert (LigraEngine().run_bfs(graph, start).elapsed_seconds
                < GaloisEngine().run_bfs(graph, start).elapsed_seconds)

    def test_ligra_plus_needs_less_memory(self, graph):
        assert (LigraPlusEngine().memory_footprint(graph)
                < LigraEngine().memory_footprint(graph))

    def test_oom_on_tiny_host(self, graph):
        host = CPUHostSpec(main_memory=1024)
        with pytest.raises(OutOfMemoryError):
            LigraEngine(host).run_bfs(graph, 0)

    def test_cc_and_sssp_supported(self, graph):
        weighted = graph.with_random_weights(seed=2)
        engine = GaloisEngine()
        cc = engine.run_cc(graph)
        sssp = engine.run_sssp(weighted, 0)
        assert np.array_equal(
            cc.values["component"],
            reference.weakly_connected_components(graph))
        assert np.allclose(sssp.values["distance"],
                           reference.sssp_distances(weighted, 0),
                           rtol=1e-5, equal_nan=True)


class TestTotem:
    def test_values_exact(self, graph):
        result = TotemEngine().run_bfs(graph, 0)
        assert np.array_equal(result.values["level"],
                              reference.bfs_levels(graph, 0))

    def test_partition_from_table(self, graph):
        engine = TotemEngine()
        fraction = engine.resolve_partition(graph, "BFS",
                                            dataset_name="twitter")
        assert fraction == TOTEM_PARTITION_TABLE[("twitter", "BFS", 2)]

    def test_partition_auto_derived_from_memory(self, graph):
        # Device holds well under the graph's 8 B/edge GPU slice.
        tiny = TotemEngine(
            gpus=[GPUSpec(device_memory=graph.num_edges * 4)])
        fraction = tiny.resolve_partition(graph, "BFS")
        assert 0 < fraction < 0.95

    def test_explicit_partition_wins(self, graph):
        engine = TotemEngine(partition_ratio=0.42)
        assert engine.resolve_partition(graph, "BFS", "twitter") == 0.42

    def test_single_gpu_partition_differs(self, graph):
        one = TotemEngine(gpus=[GPUSpec()])
        assert one.resolve_partition(graph, "BFS", "twitter") \
            == TOTEM_PARTITION_TABLE[("twitter", "BFS", 1)]

    def test_needs_contiguous_main_memory(self, graph):
        host = CPUHostSpec(main_memory=1024)
        with pytest.raises(OutOfMemoryError):
            TotemEngine(host=host).run_bfs(graph, 0)

    def test_bigger_gpu_fraction_is_faster_for_pagerank(self, graph):
        slow = TotemEngine(partition_ratio=0.1).run_pagerank(graph, 5)
        fast = TotemEngine(partition_ratio=0.9).run_pagerank(graph, 5)
        assert fast.elapsed_seconds < slow.elapsed_seconds


class TestDeviceMemoryOnlyEngines:
    def test_cusha_values_exact(self, graph):
        result = CuShaEngine().run_bfs(graph, 0)
        assert np.array_equal(result.values["level"],
                              reference.bfs_levels(graph, 0))

    def test_cusha_pagerank_needs_more_memory_than_bfs(self, graph):
        engine = CuShaEngine()
        assert (engine.footprint(graph, "PageRank")
                > engine.footprint(graph, "BFS"))

    def test_cusha_oom_when_graph_exceeds_device(self, graph):
        engine = CuShaEngine(gpus=[GPUSpec(device_memory=1024)])
        with pytest.raises(OutOfMemoryError):
            engine.run_bfs(graph, 0)

    def test_mapgraph_less_space_efficient_than_cusha(self, graph):
        assert (MapGraphEngine().footprint(graph, "BFS")
                > CuShaEngine().footprint(graph, "BFS"))

    def test_two_gpus_double_capacity(self, graph):
        one = CuShaEngine(gpus=[GPUSpec()])
        two = CuShaEngine(gpus=[GPUSpec(), GPUSpec()])
        assert two.total_gpu_memory() == 2 * one.total_gpu_memory()
